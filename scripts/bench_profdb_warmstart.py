#!/usr/bin/env python
"""Cold vs warm-start latency against a shared daemon (PR-8 headline).

One ``jrpm serve --profdb`` process hosts a shared profile DB.  For
each workload the bench issues the same run request three times,
sequentially:

1. **cold** — no consensus yet: the daemon pays compile, baseline,
   TEST profiling and the TLS run, then records the profile;
2. **warm** — the recorded consensus is confident, so the pipeline
   skips the baseline and TEST executions and replays the stored
   measurements into the live selector;
3. **warm again** — steady state (warm runs never perturb the
   consensus, so run 3 behaves exactly like run 2).

Reports produced with a profile DB attached bypass the daemon's
artifact store, so every request genuinely executes — the speedup
measured here is the warm-start fast path, not response caching.  The
bench asserts plan equivalence (warm TLS cycles == cold TLS cycles) on
every workload, writes per-workload latencies to
``benchmarks/results/profdb_warmstart.txt`` and exits non-zero if the
mean cold/warm latency ratio is below 2x.
"""

import argparse
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

import telemetry  # noqa: E402
from repro.service import JrpmClient  # noqa: E402


class Daemon:
    """A ``jrpm serve`` subprocess bound to a throwaway socket, with a
    shared profile DB at a throwaway path."""

    def __init__(self, jobs):
        scratch = tempfile.mkdtemp()
        self.socket_path = os.path.join(scratch, "jrpm.sock")
        self.profdb_path = os.path.join(scratch, "profdb.json")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", self.socket_path, "--jobs", str(jobs),
             "--profdb", self.profdb_path],
            env=env, cwd=REPO_ROOT, stderr=subprocess.DEVNULL)
        deadline = time.perf_counter() + 15.0
        while not os.path.exists(self.socket_path):
            if time.perf_counter() > deadline:
                raise RuntimeError("daemon never bound its socket")
            time.sleep(0.05)

    def shutdown(self, client=None):
        try:
            closer = client or JrpmClient.connect(
                socket_path=self.socket_path)
            closer.drain()
            closer.close()
        except Exception:
            self.process.terminate()
        self.process.wait(timeout=15)


def timed_run(client, workload, size):
    """(client-side latency seconds, provenance, tls cycles)."""
    start = time.perf_counter()
    report = client.run(workload=workload, size=size)
    latency = time.perf_counter() - start
    return latency, report.profile_provenance, report.tls.cycles


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--workloads", default="decJpeg,encJpeg",
        help="comma list; defaults to the profiling-dominated "
             "workloads, where re-profiling costs the most and the "
             "warm start pays off hardest")
    parser.add_argument("--size", default="small")
    parser.add_argument("--jobs", type=int, default=2)
    parser.add_argument("--out", default=os.path.join(
        REPO_ROOT, "benchmarks", "results", "profdb_warmstart.txt"))
    args = parser.parse_args()
    workloads = [name.strip() for name in args.workloads.split(",")
                 if name.strip()]

    lines = []
    out = lines.append
    out("profdb warm start: cold vs warm daemon latency "
        "(size=%s, %d worker(s), shared profile DB)"
        % (args.size, args.jobs))
    out("")
    out("workload        cold ms   warm ms  warm2 ms   speedup")

    daemon = Daemon(jobs=args.jobs)
    client = JrpmClient.connect(socket_path=daemon.socket_path)
    ratios = []
    try:
        for workload in workloads:
            cold, prov_cold, cycles_cold = timed_run(
                client, workload, args.size)
            warm, prov_warm, cycles_warm = timed_run(
                client, workload, args.size)
            warm2, prov_warm2, cycles_warm2 = timed_run(
                client, workload, args.size)
            if prov_cold != "cold":
                raise SystemExit("%s: first run was %r, expected cold"
                                 % (workload, prov_cold))
            if prov_warm != "warm" or prov_warm2 != "warm":
                raise SystemExit("%s: re-run did not warm-start (%r/%r)"
                                 % (workload, prov_warm, prov_warm2))
            if cycles_warm != cycles_cold or cycles_warm2 != cycles_cold:
                raise SystemExit("%s: warm TLS cycles diverged from "
                                 "cold" % workload)
            ratio = cold / min(warm, warm2)
            ratios.append(ratio)
            out("%-14s %8.0f  %8.0f  %8.0f     %4.1fx"
                % (workload, 1e3 * cold, 1e3 * warm, 1e3 * warm2,
                   ratio))
        stats = client.profdb()["profdb"]
        out("")
        out("profile DB   : %d program(s), %d input(s), %d loop "
            "profile(s); %d cold run(s) merged, %d warm start(s)"
            % (stats["programs"], stats["inputs"], stats["loops"],
               stats["runs"], stats["warm_runs"]))
    finally:
        daemon.shutdown(client)

    mean_ratio = sum(ratios) / len(ratios)
    out("")
    out("speedup      : %.1fx mean warm-start latency improvement "
        "(acceptance: >= 2x)" % mean_ratio)
    text = "\n".join(lines) + "\n"
    sys.stdout.write(text)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        fh.write(text)
    telemetry.emit(
        "profdb_warmstart",
        {"mean_warm_speedup": mean_ratio,
         "workloads": len(workloads)},
        config={"workloads": workloads, "size": args.size,
                "jobs": args.jobs},
        regression={"mean_warm_speedup": "higher_is_better"},
        results_dir=os.path.dirname(args.out))
    print("wrote %s" % os.path.relpath(args.out, REPO_ROOT))
    return 0 if mean_ratio >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
