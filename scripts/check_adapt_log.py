#!/usr/bin/env python
"""Validate an adaptation log JSON produced by ``jrpm adapt --json``.

Usage::

    python scripts/check_adapt_log.py adapt.json [more.json ...]
    jrpm adapt BitOps --json | python scripts/check_adapt_log.py -

Checks each file (or stdin, for ``-``) against the
:func:`repro.adapt.validate_log_dict` schema and the extra invariants
the CLI promises on top of the raw log: ``outputs_match`` must be true
and ``tls_speedup`` positive.  Exits non-zero and prints every problem
on stderr if anything is off.  Used by ``scripts/smoke.sh``.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.adapt import validate_log_dict  # noqa: E402


def check(path):
    try:
        if path == "-":
            data = json.load(sys.stdin)
        else:
            with open(path) as fh:
                data = json.load(fh)
    except (OSError, ValueError) as error:
        return ["unreadable JSON: %s" % error]
    problems = list(validate_log_dict(data))
    # CLI envelope invariants (only when the keys are present; the raw
    # AdaptationLog.to_dict() payload is also accepted)
    if "outputs_match" in data and data["outputs_match"] is not True:
        problems.append("outputs_match is %r, expected true"
                        % (data["outputs_match"],))
    if "tls_speedup" in data:
        speedup = data["tls_speedup"]
        if not isinstance(speedup, (int, float)) or speedup <= 0:
            problems.append("tls_speedup %r is not a positive number"
                            % (speedup,))
    if not problems:
        epochs = data.get("epochs", [])
        decisions = sum(1 for decision in data.get("decisions", [])
                        if decision.get("applied", True))
        print("%s: OK (%d epoch%s, %d applied decision%s, policy %s)"
              % (path, len(epochs), "" if len(epochs) == 1 else "s",
                 decisions, "" if decisions == 1 else "s",
                 data.get("policy", "?")))
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        for problem in check(path):
            print("%s: %s" % (path, problem), file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
