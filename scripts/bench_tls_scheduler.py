#!/usr/bin/env python
"""TLS scheduler throughput: event-driven vs stepwise vs legacy.

Measures step 5 (the speculative TLS run) on the shared throughput
kernel with profiling/selection staged out, under three executions:

* ``event``    — the default event-driven scheduler (batched local
  runs between memory/sync/commit events),
* ``stepwise`` — the reference smallest-clock scan (the differential
  oracle; one instruction per scheduler iteration),
* ``legacy``   — stepwise scheduling over the pre-engine ``if/elif``
  dispatch (``--no-fastpath``), the original baseline.

All three must produce identical simulated cycle and instruction
counts (asserted).  Rates are best-of-N wall-clock; the *same-run
ratios* are the stable signal — absolute rates move with host load.
Results go to ``benchmarks/results/throughput_tls.txt`` (the same file
``benchmarks/bench_simulator_throughput.py`` refreshes under pytest).

Usage: PYTHONPATH=src python scripts/bench_tls_scheduler.py [reps]
"""

import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "..", "benchmarks"))

from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source

from bench_simulator_throughput import KERNEL
from harness import write_result


def stage(scheduler, fastpath=True):
    """Compile/profile/select/recompile once; timing covers only the
    speculative execution."""
    jrpm = Jrpm(config=HydraConfig(scheduler=scheduler,
                                   fastpath=fastpath))
    program = compile_source(KERNEL)
    baseline = jrpm.compile_baseline(program)
    profile = jrpm.profile(program)
    plans = jrpm.select(profile)
    recompiled = jrpm.recompile(program, plans)
    assert plans and recompiled is not None, \
        "throughput kernel no longer selects an STL"
    return jrpm, recompiled, plans, baseline


def measure(scheduler, fastpath=True, reps=3):
    jrpm, recompiled, plans, baseline = stage(scheduler, fastpath)
    best = float("inf")
    artifact = None
    for __ in range(reps):
        start = time.perf_counter()
        artifact = jrpm.execute_tls(recompiled, plans,
                                    fallback=baseline.measurement)
        best = min(best, time.perf_counter() - start)
    measurement = artifact.measurement
    return (measurement.instructions / best, measurement.instructions,
            measurement.cycles)


def main(argv):
    reps = int(argv[1]) if len(argv) > 1 else 3
    event_rate, instructions, cycles = measure("event", reps=reps)
    stepwise_rate, step_insns, step_cycles = measure("stepwise",
                                                     reps=reps)
    legacy_rate, leg_insns, leg_cycles = measure("stepwise",
                                                 fastpath=False,
                                                 reps=reps)
    # observational exactness across all three executions
    assert (instructions, cycles) == (step_insns, step_cycles) \
        == (leg_insns, leg_cycles), "scheduler runs diverged"

    write_result("throughput_tls", [
        "TLS-mode simulator throughput (step-5 speculative run)",
        "  %d simulated instructions / run" % instructions,
        "  %d simulated cycles / run (identical across all three"
        " executions)" % cycles,
        "  event scheduler (default):  ~%.0f simulated instructions"
        " / wall second" % event_rate,
        "  stepwise scheduler:         ~%.0f simulated instructions"
        " / wall second" % stepwise_rate,
        "  legacy (--no-fastpath):     ~%.0f simulated instructions"
        " / wall second" % legacy_rate,
        "  event / stepwise: %.2fx    event / legacy: %.2fx"
        % (event_rate / stepwise_rate, event_rate / legacy_rate),
        "  (same-run ratio pairs are the stable signal; absolute"
        " rates move with host load)",
    ], metrics={"instructions": instructions,
                "cycles": cycles,
                "event_insn_per_sec": event_rate,
                "stepwise_insn_per_sec": stepwise_rate,
                "legacy_insn_per_sec": legacy_rate,
                "event_vs_stepwise": event_rate / stepwise_rate},
       config={"kernel": "throughput", "mode": "tls", "reps": reps},
       regression={"cycles": "lower_is_better"})
    # the event scheduler must stay comfortably ahead of the scan
    assert event_rate > 1.5 * stepwise_rate
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
