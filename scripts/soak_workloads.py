"""Developer soak: run the full Jrpm pipeline over every workload."""
import sys
import time

from repro import Jrpm
from repro.bytecode import run_program
from repro.minijava import compile_source
from repro.workloads import all_workloads

size = sys.argv[1] if len(sys.argv) > 1 else "small"
only = set(sys.argv[2:])

failures = 0
for w in all_workloads():
    if only and w.name not in only:
        continue
    start = time.time()
    try:
        prog = compile_source(w.source(size))
        oracle = run_program(prog)
        rep = Jrpm().run(prog, name=w.name)
        ok = (rep.sequential.output == oracle.output) and rep.outputs_match()
        took = time.time() - start
        b = rep.breakdown
        print(f"{'OK ' if ok else 'FAIL'} {w.name:14s} {took:5.1f}s "
              f"seq={rep.sequential.cycles:8.0f} stls={len(rep.plans)} "
              f"pred={rep.predicted_speedup:4.2f} act={rep.tls_speedup:4.2f} "
              f"prof={rep.profiling_slowdown:4.2f} viol={b.violations:4d} "
              f"ovf={b.overflow_stalls:3d} serial%={rep.serial_fraction:.2f}",
              flush=True)
        if not ok:
            failures += 1
            print("   oracle:", oracle.output)
            print("   seq:   ", rep.sequential.output)
            print("   tls:   ", rep.tls.output)
    except Exception as exc:
        failures += 1
        took = time.time() - start
        print(f"ERR  {w.name:14s} {took:5.1f}s {type(exc).__name__}: {exc}",
              flush=True)

print("failures:", failures)
sys.exit(1 if failures else 0)
