#!/usr/bin/env python
"""Validate a profile-DB payload produced by ``jrpm profdb export``.

Usage::

    python scripts/check_profdb.py profiles.json [more.json ...]
    jrpm profdb export | python scripts/check_profdb.py -
    python scripts/check_profdb.py --db benchmarks/.cache/profdb.json

Checks each payload (or stdin, for ``-``) against the
:func:`repro.profdb.validate_profdb_dict` schema gate; ``--db`` exports
a live database file first, which also exercises the corrupt-tolerant
reader.  Exits non-zero and prints every problem on stderr if anything
is off.  Used by ``scripts/smoke.sh`` and CI.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.profdb import ProfileDb, validate_profdb_dict  # noqa: E402


def check(path, live=False):
    try:
        if live:
            data = ProfileDb(path).export()
        elif path == "-":
            data = json.load(sys.stdin)
        else:
            with open(path) as fh:
                data = json.load(fh)
    except (OSError, ValueError) as error:
        return ["unreadable JSON: %s" % error]
    problems = validate_profdb_dict(data)
    if not problems:
        programs = data.get("programs", {})
        inputs = sum(len(entry.get("inputs", {}))
                     for entry in programs.values())
        runs = sum(entry.get("runs", 0) for entry in programs.values())
        print("%s: OK (schema %s, %d program%s, %d input%s, %d run%s)"
              % (path, data.get("schema"),
                 len(programs), "" if len(programs) == 1 else "s",
                 inputs, "" if inputs == 1 else "s",
                 runs, "" if runs == 1 else "s"))
    return problems


def main(argv):
    live = False
    if argv and argv[0] == "--db":
        live = True
        argv = argv[1:]
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        for problem in check(path, live=live):
            print("%s: %s" % (path, problem), file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
