#!/usr/bin/env bash
# Fast-tier smoke check for the Jrpm reproduction.
#
# 1. runs three representative workloads (one per paper category)
#    through the parallel suite runner — cold cache, 4 workers;
# 2. re-runs the same suite warm to prove the persistent report cache
#    serves it near-instantly (expect a 100% hit rate in the metrics
#    summary printed on stderr);
# 3. runs one traced workload and validates the exported Chrome trace
#    against the repro.trace schema (Perfetto-loadable);
# 4. runs one workload under the adaptive recompilation controller and
#    validates the emitted decision log against the repro.adapt schema;
# 5. runs the static dependence analyzer cross-checked against a
#    TEST profile (`jrpm analyze --json`) and validates the emitted
#    payload against the repro.analysis schema — including the
#    soundness invariant that no loop is both statically pruned and
#    dynamically selected (see docs/analysis.md);
# 6. runs one workload under both execution engines — the predecoded
#    fastpath (the default) and the legacy if/elif dispatch
#    (--no-fastpath) — and diffs the serialized JSON reports: the two
#    engines must be cycle-exact (see docs/performance.md); then does
#    the same A/B across the two TLS schedulers — event-driven (the
#    default) and the stepwise oracle (--scheduler stepwise) — which
#    must be observationally identical, byte for byte;
# 7. starts the persistent daemon (`jrpm serve`) on a unix socket,
#    pushes a pipelined client burst through it (second identical
#    request must be a store hit), drains it gracefully, and checks
#    the daemon exits 0 — the serve → client → drain path of
#    docs/service.md;
# 8. runs one workload twice against a shared profile DB: the first
#    run records a consensus profile, the second must warm-start from
#    it (skipping the baseline and TEST executions) with an identical
#    plan and TLS cycle count, and the exported DB must pass the
#    repro.profdb schema gate (see docs/profdb.md);
# 9. re-runs the fast overhead benchmark so it emits fresh
#    machine-readable telemetry (BENCH_*.json), validates every
#    telemetry document against the schema, and diffs the
#    direction-flagged metrics against the committed baseline
#    (see docs/metrics.md);
# 10. runs the fast test tier (everything not marked `slow`), which
#    includes the docs link lint (tests/test_docs_links.py).  The
#    exhaustive engine-differential sweep in
#    tests/test_engine_differential.py is `slow`-marked and runs in
#    the full tier only.
#
# Usage: scripts/smoke.sh [extra pytest args]
set -euo pipefail
cd "$(dirname "$0")/.."

export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

# one integer, one floating-point, one multimedia workload
WORKLOADS="BitOps,euler,decJpeg"
CACHE_DIR="$(mktemp -d)"
trap 'rm -rf "$CACHE_DIR"' EXIT

echo "== smoke: cold cache, --jobs 4 =="
time python -m repro suite --size small --only "$WORKLOADS" \
    --jobs 4 --cache-dir "$CACHE_DIR"

echo
echo "== smoke: warm cache =="
time python -m repro suite --size small --only "$WORKLOADS" \
    --jobs 4 --cache-dir "$CACHE_DIR"

echo
echo "== smoke: traced run + Chrome-trace schema check =="
python -m repro trace BitOps --size small --out "$CACHE_DIR/trace.json" \
    > /dev/null
python scripts/check_trace_schema.py "$CACHE_DIR/trace.json"

echo
echo "== smoke: adaptive recompilation + decision-log schema check =="
python -m repro adapt BitOps --size small --epochs 3 --json \
    > "$CACHE_DIR/adapt.json"
python scripts/check_adapt_log.py "$CACHE_DIR/adapt.json"

echo
echo "== smoke: static analysis cross-check + schema check =="
python -m repro analyze BitOps --size small --json \
    > "$CACHE_DIR/analysis.json"
python scripts/check_analysis_report.py "$CACHE_DIR/analysis.json"

echo
echo "== smoke: fastpath vs --no-fastpath (cycle-exact A/B) =="
for engine in fastpath legacy; do
    python - "$engine" "$CACHE_DIR/report-$engine.json" <<'PYEOF'
import json, sys
from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source
from repro.workloads import lookup

engine, out_path = sys.argv[1], sys.argv[2]
source = lookup("BitOps").source("small")
config = HydraConfig(fastpath=(engine == "fastpath"))
report = Jrpm(config=config).run(compile_source(source), name="BitOps")
payload = report.to_dict()
payload.pop("config", None)   # differs by the fastpath flag itself
with open(out_path, "w") as fh:
    json.dump(payload, fh, indent=1, sort_keys=True, default=str)
PYEOF
done
diff "$CACHE_DIR/report-fastpath.json" "$CACHE_DIR/report-legacy.json" \
    && echo "engines agree: reports byte-identical"

echo
echo "== smoke: event vs stepwise TLS scheduler (cycle-exact A/B) =="
for sched in event stepwise; do
    python - "$sched" "$CACHE_DIR/report-$sched.json" <<'PYEOF'
import json, sys
from repro.core.pipeline import Jrpm
from repro.hydra.config import HydraConfig
from repro.minijava import compile_source
from repro.workloads import lookup

sched, out_path = sys.argv[1], sys.argv[2]
source = lookup("BitOps").source("small")
config = HydraConfig(scheduler=sched)
report = Jrpm(config=config).run(compile_source(source), name="BitOps")
payload = report.to_dict()
payload.pop("config", None)   # differs by the scheduler field itself
with open(out_path, "w") as fh:
    json.dump(payload, fh, indent=1, sort_keys=True, default=str)
PYEOF
done
diff "$CACHE_DIR/report-event.json" "$CACHE_DIR/report-stepwise.json" \
    && echo "schedulers agree: reports byte-identical"

echo
echo "== smoke: serve -> client -> drain =="
SOCKET="$CACHE_DIR/jrpm.sock"
python -m repro serve --socket "$SOCKET" --jobs 2 \
    --cache-dir "$CACHE_DIR" &
SERVE_PID=$!
for _ in $(seq 100); do [ -S "$SOCKET" ] && break; sleep 0.1; done
python - "$SOCKET" <<'PYEOF'
import sys
from repro.service import JrpmClient

client = JrpmClient.connect(socket_path=sys.argv[1])
assert client.ping()["pong"] is True
payload = client.job_payload(workload="BitOps", size="small")
(first, _, _), = client.request_many([("run", payload)])
(second, cached_second, _), = client.request_many([("run", payload)])
assert first["report"] == second["report"]
assert cached_second, "second identical request must hit the store"
stats = client.stats()
print("serve:  %d request(s), store hit rate %.0f%%, queue depth %d"
      % (stats["requests"],
         100.0 * stats["store"]["cache_hit_rate"],
         stats["scheduler"]["queue_depth"]))
drained = client.drain()
assert drained["drained"] is True and drained["failed"] == 0
client.close()
PYEOF
wait "$SERVE_PID" && echo "serve:  drained cleanly (exit 0)"

echo
echo "== smoke: profile DB warm start + schema check =="
python - "$CACHE_DIR/profdb.json" <<'PYEOF'
import sys
from repro import Jrpm, compile_source
from repro.workloads import lookup

db_path = sys.argv[1]
source = lookup("BitOps").source("small")
cold = Jrpm(profdb=db_path).run(compile_source(source), name="BitOps")
warm = Jrpm(profdb=db_path).run(compile_source(source), name="BitOps")
assert cold.profile_provenance == "cold"
assert warm.profile_provenance == "warm", "second run must warm-start"
assert sorted(warm.plans) == sorted(cold.plans)
assert warm.tls.cycles == cold.tls.cycles
print("profdb: warm start plan-equivalent (tls %d cycles, %d plan(s))"
      % (warm.tls.cycles, len(warm.plans)))
PYEOF
python -m repro profdb export --path "$CACHE_DIR/profdb.json" \
    | python scripts/check_profdb.py -

echo
echo "== smoke: benchmark telemetry schema + regression gate =="
python -m pytest -q benchmarks/bench_trace_overhead.py
python scripts/check_bench_schema.py benchmarks/results \
    benchmarks/baseline
python scripts/check_bench_regression.py

echo
echo "== smoke: fast test tier (pytest -m 'not slow') =="
python -m pytest -q -m "not slow" "$@"
