#!/usr/bin/env python
"""Validate a static-analysis JSON produced by ``jrpm analyze --json``.

Usage::

    python scripts/check_analysis_report.py analysis.json [more.json ...]
    jrpm analyze BitOps --json | python scripts/check_analysis_report.py -

Accepts either a bare ``AnalysisReport.to_dict()`` payload or any
envelope carrying one under an ``analysis`` key — the ``jrpm analyze
--json`` output and a full ``JrpmReport`` dict from a
``Jrpm(analysis=True)`` run both qualify.  Checks the payload against
the :func:`repro.analysis.validate_analysis_dict` schema plus the
soundness invariant the CLI promises on top: no loop may be both
statically pruned and dynamically selected.  Exits non-zero and prints
every problem on stderr if anything is off.  Used by
``scripts/smoke.sh``.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.analysis import validate_analysis_dict  # noqa: E402


def check(path):
    try:
        if path == "-":
            data = json.load(sys.stdin)
        else:
            with open(path) as fh:
                data = json.load(fh)
    except (OSError, ValueError) as error:
        return ["unreadable JSON: %s" % error]
    if not isinstance(data, dict):
        return ["top-level JSON is not an object"]
    analysis = data.get("analysis", data)
    if analysis is None:
        return ["analysis key is null (was the run analyzed?)"]
    problems = list(validate_analysis_dict(analysis))
    # envelope invariant (only when the CLI's per-loop agreement list is
    # present): static pruning must never remove a selector-committed loop
    unsound = [loop for loop in data.get("loops", [])
               if isinstance(loop, dict)
               and loop.get("pruned") and loop.get("selected")]
    for loop in unsound:
        problems.append(
            "loop %s#%s is both statically pruned and dynamically "
            "selected — analyzer soundness violation"
            % (loop.get("method"), loop.get("ordinal")))
    if not problems:
        counts = analysis.get("counts", {})
        loops = analysis.get("loops", [])
        pruned = sum(1 for loop in loops if loop.get("pruned"))
        print("%s: OK (%d loop%s; absent %d / may %d / must %d; "
              "%d pruned)"
              % (path, len(loops), "" if len(loops) == 1 else "s",
                 counts.get("absent", 0), counts.get("may", 0),
                 counts.get("must", 0), pruned))
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        for problem in check(path):
            print("%s: %s" % (path, problem), file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
