#!/usr/bin/env python
"""Diff fresh benchmark telemetry against the committed baseline.

Usage::

    python scripts/check_bench_regression.py \
        [--results benchmarks/results] \
        [--baseline benchmarks/baseline] \
        [--tolerance 10]

For every ``BENCH_*.json`` present in *both* directories, each metric
the baseline flags in its ``regression`` map is compared:

* ``higher_is_better`` — fresh value must not fall more than
  ``--tolerance`` percent below the baseline;
* ``lower_is_better``  — fresh value must not rise more than
  ``--tolerance`` percent above the baseline.

Improvements never fail; a baseline value of exactly 0 is compared for
degradation by sign only.  Baseline documents with no fresh
counterpart are reported (the benchmark silently disappearing is
itself a regression signal) but only metric regressions fail the run.

Refreshing the baseline after an accepted perf change is one copy:
``cp benchmarks/results/BENCH_<name>.json benchmarks/baseline/``.
"""

import argparse
import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def load_documents(directory):
    documents = {}
    for path in sorted(glob.glob(os.path.join(directory,
                                              "BENCH_*.json"))):
        with open(path) as fh:
            document = json.load(fh)
        documents[document["name"]] = document
    return documents


def compare(baseline, fresh, tolerance):
    """Regression strings for one (baseline, fresh) document pair."""
    regressions = []
    for metric, direction in sorted(baseline.get("regression",
                                                 {}).items()):
        if metric not in fresh.get("metrics", {}):
            regressions.append(
                "%s: metric %r vanished from fresh telemetry"
                % (baseline["name"], metric))
            continue
        base = float(baseline["metrics"][metric])
        new = float(fresh["metrics"][metric])
        if base == 0.0:
            bad = new < 0.0 if direction == "higher_is_better" \
                else new > 0.0
            delta_pct = float("inf") if bad else 0.0
        elif direction == "higher_is_better":
            delta_pct = 100.0 * (base - new) / abs(base)
            bad = delta_pct > tolerance
        else:
            delta_pct = 100.0 * (new - base) / abs(base)
            bad = delta_pct > tolerance
        if bad:
            regressions.append(
                "%s: %s %s %.4g -> %.4g (%.1f%% worse, tolerance %.0f%%)"
                % (baseline["name"], metric, direction, base, new,
                   delta_pct, tolerance))
    return regressions


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--results", default=os.path.join(
        REPO_ROOT, "benchmarks", "results"))
    parser.add_argument("--baseline", default=os.path.join(
        REPO_ROOT, "benchmarks", "baseline"))
    parser.add_argument("--tolerance", type=float, default=10.0,
                        help="percent degradation allowed per metric")
    args = parser.parse_args(argv[1:])

    baselines = load_documents(args.baseline)
    fresh = load_documents(args.results)
    if not baselines:
        print("REGRESSION no baseline documents in %s" % args.baseline)
        return 1

    regressions = []
    compared = 0
    for name, baseline in sorted(baselines.items()):
        if name not in fresh:
            print("note: baseline %s has no fresh telemetry "
                  "(benchmark not run?)" % name)
            continue
        compared += 1
        regressions.extend(compare(baseline, fresh[name],
                                   args.tolerance))
    for regression in regressions:
        print("REGRESSION %s" % regression)
    print("compared %d benchmark(s) against baseline: %s"
          % (compared, "FAIL (%d regression(s))" % len(regressions)
             if regressions else "ok"))
    if not compared:
        return 1
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
