#!/usr/bin/env python
"""Daemon vs one-shot CLI throughput (PR-6 acceptance benchmark).

Measures a 10-request burst of identical pipeline runs two ways:

1. **one-shot CLI** — ``python -m repro bench <workload>`` launched
   once per request, sequentially: every invocation pays interpreter
   start-up, compile and profile from scratch (cache disabled — the
   point is the cold path the daemon amortizes);
2. **daemon** — one ``jrpm serve`` process, one pipelining client: the
   whole burst lands in the scheduler at once, gets batched and
   coalesced, and all but the first identical request are served from
   the shared artifact store.

Also runs a **mixed burst** (distinct workloads) to show sharding
across workers without any coalescing assist.

Writes req/s and p50/p95 per-request latency to
``benchmarks/results/service_throughput.txt`` and exits non-zero if
the identical-burst daemon throughput is below 2x one-shot.
"""

import argparse
import os
import subprocess
import sys
import tempfile
import time

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

import telemetry  # noqa: E402
from repro.service import JrpmClient  # noqa: E402


def percentile(samples, fraction):
    ordered = sorted(samples)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


def run_one_shot(workload, size, burst):
    """Sequential cold CLI invocations; returns (wall, latencies)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    latencies = []
    start = time.perf_counter()
    for _ in range(burst):
        began = time.perf_counter()
        subprocess.run(
            [sys.executable, "-m", "repro", "bench", workload,
             "--size", size],
            env=env, cwd=REPO_ROOT, check=True,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        latencies.append(time.perf_counter() - began)
    return time.perf_counter() - start, latencies


class Daemon:
    def __init__(self, jobs):
        self.socket_path = os.path.join(tempfile.mkdtemp(), "jrpm.sock")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        self.process = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve",
             "--socket", self.socket_path, "--jobs", str(jobs),
             "--no-cache"],
            env=env, cwd=REPO_ROOT, stderr=subprocess.DEVNULL)
        deadline = time.perf_counter() + 15.0
        while not os.path.exists(self.socket_path):
            if time.perf_counter() > deadline:
                raise RuntimeError("daemon never bound its socket")
            time.sleep(0.05)

    def shutdown(self, client=None):
        try:
            closer = client or JrpmClient.connect(
                socket_path=self.socket_path)
            closer.drain()
            closer.close()
        except Exception:
            self.process.terminate()
        self.process.wait(timeout=15)


def run_daemon_burst(client, payloads):
    """Pipelined burst; returns (wall, per-request client latencies)."""
    start = time.perf_counter()
    began = {index: time.perf_counter()
             for index in range(len(payloads))}
    settled = client.request_many([("run", payload)
                                   for payload in payloads])
    wall = time.perf_counter() - start
    for result, _, _ in settled:
        if isinstance(result, Exception):
            raise result
    # pipelined: every request was in flight the whole time, so the
    # per-request latency the caller experiences is read-completion
    # time; the daemon-side `elapsed` field is reported separately
    latencies = [wall - (began[index] - start)
                 for index in range(len(payloads))]
    daemon_side = [elapsed for _, _, elapsed in settled]
    return wall, latencies, daemon_side


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="BitOps")
    parser.add_argument("--size", default="small")
    parser.add_argument("--burst", type=int, default=10)
    parser.add_argument("--jobs", type=int, default=4)
    parser.add_argument("--mixed", default="BitOps,euler,decJpeg,"
                                           "IDEA,MipsSimulator,Huffman")
    parser.add_argument("--out", default=os.path.join(
        REPO_ROOT, "benchmarks", "results",
        "service_throughput.txt"))
    args = parser.parse_args()

    lines = []
    out = lines.append
    out("service throughput: daemon vs one-shot CLI "
        "(burst=%d, workload=%s/%s, %d workers)"
        % (args.burst, args.workload, args.size, args.jobs))
    out("")

    one_shot_wall, one_shot_lat = run_one_shot(
        args.workload, args.size, args.burst)
    one_shot_rate = args.burst / one_shot_wall
    out("one-shot CLI : %6.2f req/s  (wall %.2fs, p50 %.0f ms, "
        "p95 %.0f ms)"
        % (one_shot_rate, one_shot_wall,
           1e3 * percentile(one_shot_lat, 0.50),
           1e3 * percentile(one_shot_lat, 0.95)))

    daemon = Daemon(jobs=args.jobs)
    client = JrpmClient.connect(socket_path=daemon.socket_path)
    try:
        payload = client.job_payload(workload=args.workload,
                                     size=args.size)
        daemon_wall, daemon_lat, daemon_side = run_daemon_burst(
            client, [payload] * args.burst)
        daemon_rate = args.burst / daemon_wall
        out("daemon burst : %6.2f req/s  (wall %.2fs, p50 %.0f ms, "
            "p95 %.0f ms; daemon-side p95 %.0f ms)"
            % (daemon_rate, daemon_wall,
               1e3 * percentile(daemon_lat, 0.50),
               1e3 * percentile(daemon_lat, 0.95),
               1e3 * percentile(daemon_side, 0.95)))

        mixed = [name.strip() for name in args.mixed.split(",")
                 if name.strip()]
        mixed_payloads = [client.job_payload(workload=name,
                                             size=args.size)
                          for name in mixed]
        mixed_wall, mixed_lat, _ = run_daemon_burst(
            client, mixed_payloads)
        out("mixed burst  : %6.2f req/s  (%d distinct workloads, wall "
            "%.2fs, p50 %.0f ms, p95 %.0f ms)"
            % (len(mixed) / mixed_wall, len(mixed), mixed_wall,
               1e3 * percentile(mixed_lat, 0.50),
               1e3 * percentile(mixed_lat, 0.95)))

        stats = client.stats()
        out("")
        out("daemon stats : store hit rate %.0f%%, %d batch(es), "
            "%d coalesced, queue peak-depth limit %d"
            % (100.0 * stats["store"]["cache_hit_rate"],
               stats["scheduler"]["batches"],
               stats["scheduler"]["coalesced"],
               stats["scheduler"]["queue_limit"]))
    finally:
        daemon.shutdown(client)

    ratio = daemon_rate / one_shot_rate
    out("")
    out("speedup      : %.1fx daemon over one-shot (acceptance: >= 2x)"
        % ratio)
    text = "\n".join(lines) + "\n"
    sys.stdout.write(text)
    os.makedirs(os.path.dirname(args.out), exist_ok=True)
    with open(args.out, "w") as fh:
        fh.write(text)
    telemetry.emit(
        "service_throughput",
        {"one_shot_req_per_sec": one_shot_rate,
         "daemon_req_per_sec": daemon_rate,
         "daemon_speedup": ratio,
         "mixed_req_per_sec": len(mixed) / mixed_wall},
        config={"workload": args.workload, "size": args.size,
                "burst": args.burst, "jobs": args.jobs},
        regression={"daemon_speedup": "higher_is_better"},
        results_dir=os.path.dirname(args.out))
    print("wrote %s" % os.path.relpath(args.out, REPO_ROOT))
    return 0 if ratio >= 2.0 else 1


if __name__ == "__main__":
    sys.exit(main())
