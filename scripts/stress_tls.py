"""Developer stress script: differential-check TLS on tricky patterns."""
import sys
import time

from repro import Jrpm
from repro.bytecode import run_program
from repro.minijava import compile_source

CASES = {}


def case(name):
    def wrap(fn):
        CASES[name] = fn
        return fn
    return wrap


def check(name, src):
    prog = compile_source(src)
    oracle = run_program(prog)
    start = time.time()
    rep = Jrpm().run(prog, name=name)
    took = time.time() - start
    ok_seq = rep.sequential.output == oracle.output
    match = rep.outputs_match()
    status = "OK " if (ok_seq and match) else "FAIL"
    print(f"{status} {name}: {took:.1f}s plans={len(rep.plans)} "
          f"speedup={rep.tls_speedup:.2f} viol={rep.breakdown.violations} "
          f"commits={rep.breakdown.commits} "
          f"sync={any(p.sync for p in rep.plans.values())}")
    if not (ok_seq and match):
        print("  oracle:", oracle.output[:8])
        print("  seq:   ", rep.sequential.output[:8])
        print("  tls:   ", rep.tls.output[:8])
    return ok_seq and match


SRC = {}

SRC["serial-chain"] = """
class Main {
    static int main() {
        int[] b = new int[1200];
        b[0] = 1;
        for (int i = 1; i < 1200; i++) { b[i] = b[i-1] * 3 + 1; }
        Sys.printInt(b[1199]);
        return 0;
    }
}
"""

SRC["carried-local"] = """
class Main {
    static int step(int x) { return (x * 5 + 7) % 2048; }
    static int main() {
        int[] a = new int[1500];
        int last = 0;
        for (int i = 0; i < 1500; i++) {
            a[i] = step(i);
            if (a[i] > 2000) { last = a[i]; }
        }
        Sys.printInt(last);
        return last;
    }
}
"""

SRC["float-reduce"] = """
class Main {
    static int main() {
        float[] x = new float[1000];
        for (int i = 0; i < 1000; i++) { x[i] = (float)i * 0.001; }
        float s = 0.0;
        for (int i = 0; i < 1000; i++) { s = s + x[i] * x[i]; }
        Sys.printFloat(s);
        return (int)s;
    }
}
"""

SRC["nested"] = """
class Main {
    static int main() {
        int n = 40;
        int[][] m = new int[n][n];
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) {
                m[i][j] = i * j + (i ^ j);
            }
        }
        int t = 0;
        for (int i = 0; i < n; i++) {
            for (int j = 0; j < n; j++) { t += m[i][j]; }
        }
        Sys.printInt(t);
        return t;
    }
}
"""

SRC["alloc-loop"] = """
class Box { int v; Box(int x) { v = x; } }
class Main {
    static int main() {
        int s = 0;
        for (int i = 0; i < 600; i++) {
            Box b = new Box(i * 2);
            s += b.v;
        }
        Sys.printInt(s);
        return s;
    }
}
"""

SRC["sync-method"] = """
class Counter {
    int v;
    synchronized void add(int x) { v = v + x; }
    synchronized int get() { return v; }
}
class Main {
    static int main() {
        Counter c = new Counter();
        int s = 0;
        for (int i = 0; i < 800; i++) {
            c.add(i % 13);
        }
        s = c.get();
        Sys.printInt(s);
        return s;
    }
}
"""

SRC["break-exit"] = """
class Main {
    static int main() {
        int[] a = new int[2000];
        for (int i = 0; i < 2000; i++) { a[i] = (i * 37) % 4096; }
        int found = -1;
        for (int i = 0; i < 2000; i++) {
            if (a[i] == 3885) { found = i; break; }
        }
        Sys.printInt(found);
        return found;
    }
}
"""

SRC["lcg-carried"] = """
class Main {
    static int main() {
        // short carried dependency (seed) + longer body: sync-lock case
        int seed = 12345;
        int hits = 0;
        for (int i = 0; i < 1200; i++) {
            seed = (seed * 1103515245 + 12345) & 0x7FFFFFFF;
            int x = seed % 1000;
            int y = (x * x + 17) % 997;
            int z = (y * 31 + x) % 4096;
            if (z < 2048) { hits++; }
        }
        Sys.printInt(hits);
        Sys.printInt(seed);
        return hits;
    }
}
"""

SRC["resetable"] = """
class Main {
    static int main() {
        int[] bits = new int[4000];
        int pos = 0;
        int acc = 0;
        for (int i = 0; i < 4000; i++) {
            bits[pos] = bits[pos] ^ 1;
            acc += bits[pos];
            pos = pos + 1;
            if (pos >= 3997) { pos = i % 13; }
        }
        Sys.printInt(acc);
        Sys.printInt(pos);
        return acc;
    }
}
"""

SRC["exception-in-loop"] = """
class Main {
    static int main() {
        int[] a = new int[100];
        int s = 0;
        int n = 300;
        for (int i = 0; i < n; i++) {
            s += a[i % 100] + i;
        }
        Sys.printInt(s);
        return s;
    }
}
"""


def main():
    names = sys.argv[1:] or list(SRC)
    failures = 0
    for name in names:
        if not check(name, SRC[name]):
            failures += 1
    print("failures:", failures)
    return failures


if __name__ == "__main__":
    sys.exit(main())
