#!/usr/bin/env python
"""Validate a Chrome trace-event JSON produced by ``jrpm trace``.

Usage::

    python scripts/check_trace_schema.py trace.json [more.json ...]

Exits non-zero (and prints every problem) if any file is not a valid
Perfetto/chrome://tracing-loadable trace as ``repro.trace`` defines it.
Used by ``scripts/smoke.sh``.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"))

from repro.trace import validate_chrome_trace  # noqa: E402


def check(path):
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, ValueError) as error:
        return ["unreadable JSON: %s" % error]
    problems = validate_chrome_trace(data)
    if not problems:
        events = data.get("traceEvents", [])
        spans = sum(1 for event in events if event.get("ph") == "X")
        print("%s: OK (%d events, %d spans)"
              % (path, len(events), spans))
    return problems


def main(argv):
    if not argv:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    failed = False
    for path in argv:
        for problem in check(path):
            print("%s: %s" % (path, problem), file=sys.stderr)
            failed = True
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
