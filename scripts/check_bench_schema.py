#!/usr/bin/env python
"""Validate every ``benchmarks/results/BENCH_*.json`` telemetry
document against the schema in :mod:`benchmarks.telemetry`.

Usage: python scripts/check_bench_schema.py [dir ...]

With no arguments, checks ``benchmarks/results/``.  Exits non-zero if
any document fails validation (or none exist at all), printing one
line per problem — the CI gate behind the machine-readable benchmark
trajectory.
"""

import glob
import json
import os
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO_ROOT, "benchmarks"))

import telemetry  # noqa: E402


def check_dir(directory):
    """Validate all BENCH_*.json under *directory*; returns (checked,
    list of problem strings)."""
    problems = []
    paths = sorted(glob.glob(os.path.join(directory, "BENCH_*.json")))
    for path in paths:
        rel = os.path.relpath(path, REPO_ROOT)
        try:
            with open(path) as fh:
                document = json.load(fh)
        except ValueError as error:
            problems.append("%s: unparseable JSON (%s)" % (rel, error))
            continue
        for problem in telemetry.validate_bench_dict(document):
            problems.append("%s: %s" % (rel, problem))
        expected = "BENCH_%s.json" % document.get("name")
        if (isinstance(document, dict)
                and os.path.basename(path) != expected):
            problems.append("%s: name %r does not match filename"
                            % (rel, document.get("name")))
    return len(paths), problems


def main(argv):
    directories = argv[1:] or [os.path.join(REPO_ROOT, "benchmarks",
                                            "results")]
    total = 0
    failures = []
    for directory in directories:
        checked, problems = check_dir(directory)
        total += checked
        failures.extend(problems)
    for problem in failures:
        print("SCHEMA %s" % problem)
    if not total:
        print("SCHEMA no BENCH_*.json documents found in %s"
              % ", ".join(directories))
        return 1
    print("checked %d telemetry document(s): %s"
          % (total, "FAIL (%d problem(s))" % len(failures)
             if failures else "all valid"))
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
