"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE [--verbose]``      — run the full pipeline on a MiniJava file
* ``bench NAME [--size S]``     — run one of the 26 paper benchmarks
* ``suite [--size S] [--jobs N]`` — run the whole suite in parallel,
  memoized in the report cache, and print the summary
* ``list``                      — list the available benchmarks
* ``profile FILE``              — show only the TEST profile + verdicts
* ``trace NAME|FILE --out T.json`` — run with the cycle-level event
  collector attached and export a Chrome/Perfetto trace (see
  docs/observability.md)
* ``adapt NAME|FILE [--epochs N] [--policy P] [--json]`` — run under
  the epoch-based adaptive recompilation controller and print the
  decision log (see docs/adaptation.md)
* ``analyze NAME|FILE [--json]`` — static dependence analysis: per-loop
  carried-dependence classification (must/may/absent), predicted
  violation arcs, and agreement with what the TEST profiler actually
  observed (see docs/analysis.md)
* ``serve --socket PATH | --port N`` — start the persistent execution
  daemon: a shared artifact store + batched scheduler behind a
  line-delimited JSON protocol (see docs/service.md); talk to it with
  ``repro.service.JrpmClient``
* ``profdb [stats|export|gc]`` — inspect or maintain the persistent
  profile DB that ``--profdb`` runs record into and warm-start from
  (see docs/profdb.md)
* ``metrics [--socket PATH | --port N] [--json]`` — dump a running
  daemon's metrics registry (OpenMetrics text by default; the same
  document ``GET /metrics`` serves — see docs/metrics.md)

Every subcommand builds one :class:`repro.service.RunOptions` from its
flags — the single options dataclass shared with the ``Session`` API
and the wire protocol.  The global ``--log-level`` flag (or the
``JRPM_LOG`` environment variable) turns on structured logging for
every ``repro.*`` logger.
"""

import argparse
import json
import os
import sys

from .core.pipeline import Jrpm
from .core.report import format_report, format_suite_summary
from .minijava import compile_source


def _add_profdb_flags(parser):
    parser.add_argument("--profdb", default=None, metavar="PATH",
                        help="persistent profile DB: record profiles "
                             "and warm-start from stored consensus "
                             "(see docs/profdb.md)")
    parser.add_argument("--warm-start", default="auto",
                        choices=["auto", "force", "off"],
                        help="how to use stored profiles: auto = when "
                             "confident (default), force = whenever "
                             "present, off = always profile (still "
                             "records)")


def _add_hw_flags(parser):
    parser.add_argument("--cpus", type=int, default=4,
                        help="number of simulated CPUs (default 4)")
    parser.add_argument("--old-handlers", action="store_true",
                        help="use the paper's 'Old' handler overheads")
    parser.add_argument("--no-fastpath", action="store_true",
                        help="disable the predecoded dispatch engine and "
                             "run the legacy if/elif interpreters "
                             "(cycle-identical, ~4x slower; for debugging "
                             "and A/B benchmarking — see docs/performance.md)")
    parser.add_argument("--scheduler", default="event",
                        choices=["event", "stepwise"],
                        help="TLS scheduler: event = event-driven batched "
                             "execution (default), stepwise = one "
                             "instruction per scheduler scan "
                             "(observationally identical, slower; the "
                             "differential oracle — see "
                             "docs/performance.md)")


def _options_from(args):
    """The :class:`repro.service.RunOptions` for one CLI invocation —
    every subcommand's flags map onto the same dataclass."""
    from .service.options import RunOptions
    return RunOptions(
        cpus=args.cpus,
        old_handlers=getattr(args, "old_handlers", False),
        fastpath=not getattr(args, "no_fastpath", False),
        scheduler=getattr(args, "scheduler", "event"),
        trace=bool(getattr(args, "trace", False)
                   or getattr(args, "trace_out", None)),
        adapt=bool(getattr(args, "adapt", False)),
        epochs=getattr(args, "adapt_epochs", None)
               or getattr(args, "epochs", None) or 4,
        policy=getattr(args, "policy", None) or "threshold",
        profile_db=getattr(args, "profdb", None),
        warm_start=getattr(args, "warm_start", "auto"))


def _config_from(args):
    """Deprecated shim retained for external scripts that imported it;
    the CLI itself now routes through :func:`_options_from`."""
    return _options_from(args).hydra_config()


def cmd_run(args):
    from .service import Session
    with open(args.file) as fh:
        source = fh.read()
    options = _options_from(args)
    options.verify = False       # mismatch is this command's exit code
    with Session.local(use_store=False) as session:
        report = session.run(source, name=args.file, options=options)
    print(format_report(report, verbose=args.verbose))
    return 0 if report.outputs_match() else 1


class _WorkloadError(Exception):
    """Unusable bench/trace target (e.g. no manual variant)."""


def _resolve_workload_source(args):
    """(source, name) for a bench/trace target: registry name, or a
    MiniJava file path (anything that exists on disk)."""
    if os.path.exists(args.name):
        with open(args.name) as fh:
            return fh.read(), args.name
    from .workloads import lookup
    workload = lookup(args.name)
    if getattr(args, "manual", False):
        source = workload.manual_source(args.size)
        if source is None:
            raise _WorkloadError("%s has no manual variant"
                                 % workload.name)
    else:
        source = workload.source(args.size)
    return source, workload.name


def cmd_bench(args):
    try:
        source, name = _resolve_workload_source(args)
    except _WorkloadError as error:
        print(error, file=sys.stderr)
        return 2
    options = _options_from(args)
    jrpm = Jrpm(options=options)
    if options.adapt:
        report = jrpm.run_adaptive(compile_source(source), name=name,
                                   epochs=options.epochs)
    else:
        report = jrpm.run(compile_source(source), name=name)
    print(format_report(report, verbose=args.verbose))
    if options.trace:
        _emit_trace(report, name, args.trace_out, timeline=False)
    return 0 if report.outputs_match() else 1


def _emit_trace(report, name, out, timeline=False):
    """Print trace aggregates (stderr) and optionally export the
    Chrome trace / per-loop timeline of a traced report."""
    from .trace import format_timeline, write_chrome_trace
    aggregates = report.trace_aggregates
    if aggregates is not None:
        for line in aggregates.summary_lines():
            print(line, file=sys.stderr)
    if out and report.trace is not None:
        write_chrome_trace(report.trace, out, name=name)
        print("trace:  wrote %s (%d events; open in "
              "https://ui.perfetto.dev or chrome://tracing)"
              % (out, aggregates.events_recorded if aggregates else 0),
              file=sys.stderr)
    if timeline and report.trace is not None:
        print(format_timeline(report.trace))


def cmd_trace(args):
    try:
        source, name = _resolve_workload_source(args)
    except _WorkloadError as error:
        print(error, file=sys.stderr)
        return 2
    from .trace import TraceOptions
    trace_options = TraceOptions(capacity=args.ring)
    report = Jrpm(options=_options_from(args),
                  trace=trace_options).run(
        compile_source(source), name=name)
    print(format_report(report, verbose=args.verbose))
    _emit_trace(report, name, args.out, timeline=args.timeline)
    return 0 if report.outputs_match() else 1


def cmd_adapt(args):
    """Adaptive recompilation: run epochs under the feedback
    controller, print (or emit as JSON) the decision log."""
    try:
        source, name = _resolve_workload_source(args)
    except _WorkloadError as error:
        print(error, file=sys.stderr)
        return 2
    from .adapt import make_policy
    options = _options_from(args)
    policy = make_policy(options.policy,
                         decommit_threshold=args.decommit_threshold,
                         violation_cutoff=args.violation_cutoff,
                         cooldown=args.cooldown)
    jrpm = Jrpm(options=options)
    report = jrpm.run_adaptive(compile_source(source), name=name,
                               args=(), policy=policy,
                               epochs=options.epochs, verify=True)
    log = report.adaptation
    if args.json:
        payload = log.to_dict()
        payload["outputs_match"] = report.outputs_match()
        payload["tls_speedup"] = report.tls_speedup
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(format_report(report, verbose=args.verbose))
    if args.trace and args.trace_out:
        _emit_trace(report, name, args.trace_out, timeline=False)
    return 0 if report.outputs_match() else 1


def cmd_analyze(args):
    """Static dependence analysis cross-checked against a TEST run
    (``analyze`` verb; docs/analysis.md)."""
    try:
        source, name = _resolve_workload_source(args)
    except _WorkloadError as error:
        print(error, file=sys.stderr)
        return 2
    from .analysis import AnalysisReport
    from .core.report import format_analysis
    from .service import Session
    with Session.local(use_store=False) as session:
        result = session.analyze(source, name=name,
                                 options=_options_from(args))
    if args.json:
        payload = {"name": name,
                   "analysis": result["analysis"],
                   "loops": result["loops"],
                   "selected": result["selected"]}
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    analysis = AnalysisReport.from_dict(result["analysis"])
    print(format_analysis(analysis, verbose=args.verbose))
    print()
    print("dynamic selector agreement:")
    for entry in result["loops"]:
        if entry["pruned"] and entry["selected"]:
            verdict = "DISAGREE: pruned statically but selected"
        elif entry["pruned"]:
            verdict = "agree: pruned statically, not selected"
        elif entry["selected"]:
            verdict = "selected"
        else:
            verdict = "not selected"
        print("  %-24s line %-5s %s"
              % ("%s#%d" % (entry["method"], entry["ordinal"]),
                 entry["line"], verdict))
    # a statically pruned loop the dynamic selector would have
    # committed is an analyzer soundness bug — make it the exit code
    return 1 if any(entry["pruned"] and entry["selected"]
                    for entry in result["loops"]) else 0


def cmd_suite(args):
    from .runner import SuiteRunError, SuiteRunner
    runner = SuiteRunner(jobs=args.jobs, cache_dir=args.cache_dir,
                         use_cache=not args.no_cache)
    workloads = None
    if args.only:
        workloads = [name.strip() for name in args.only.split(",")
                     if name.strip()]
    try:
        reports = runner.run_suite(
            size=args.size, workloads=workloads,
            options=_options_from(args),
            progress=lambda message: print(message, file=sys.stderr))
    except SuiteRunError as error:
        print(error, file=sys.stderr)
        print(runner.metrics.summary(), file=sys.stderr)
        return 1
    if args.json:
        print(json.dumps(_suite_json(reports, runner.metrics), indent=2,
                         sort_keys=True))
    else:
        print(format_suite_summary(reports))
    # metrics go to stderr so stdout stays byte-comparable across --jobs
    print(runner.metrics.summary(), file=sys.stderr)
    if runner.cache.root:
        runner.metrics.write_jsonl(
            os.path.join(runner.cache.root, "metrics.jsonl"))
    return 0


def _workload_json(report):
    entry = {
        "sequential_cycles": report.sequential.cycles,
        "tls_cycles": report.tls.cycles,
        "tls_speedup": report.tls_speedup,
        "predicted_speedup": report.predicted_speedup,
        "total_speedup": report.total_speedup,
        "profiling_slowdown": report.profiling_slowdown,
        "selected_stls": len(report.plans),
        "outputs_match": report.outputs_match(),
    }
    if report.adaptation is not None:
        log = report.adaptation
        entry["adapt"] = {
            "epochs": log.epochs_run,
            "decisions": len(log.applied_decisions()),
            "converged_epoch": log.converged_epoch,
            "initial_cycles": log.initial_cycles,
            "final_cycles": log.final_cycles,
            "steady_state_gain": log.steady_state_gain,
        }
    return entry


def _suite_json(reports, metrics):
    return {
        "workloads": {name: _workload_json(report)
                      for name, report in reports.items()},
        "metrics": {
            "runs": len(metrics.records),
            "cache_hits": metrics.hits,
            "cache_misses": metrics.misses,
            "cache_hit_rate": metrics.hit_rate,
            "wall_time": metrics.wall_time,
            "jobs": metrics.jobs,
            "records": [record.to_dict() for record in metrics.records],
        },
    }


def cmd_list(args):
    from .workloads import all_workloads
    for workload in all_workloads():
        star = " *" if workload.has_manual_variant else ""
        print("%-14s %-14s %s%s" % (workload.name, workload.category,
                                    workload.description, star))
    return 0


def cmd_profile(args):
    """TEST profile via the session API (``profile`` verb, steps 1-3)."""
    from .service import Session
    with open(args.file) as fh:
        source = fh.read()
    with Session.local(use_store=False) as session:
        result = session.profile(source, options=_options_from(args))
    print("%-5s %-6s %8s %9s %8s %8s  %s"
          % ("loop", "line", "threads", "avg cyc", "arcfreq", "pred",
             "verdict"))
    for loop_id in sorted(result["loops"], key=int):
        entry = result["loops"][loop_id]
        print("%-5d %-6s %8d %9.1f %8.2f %7.2fx  %s"
              % (int(loop_id), entry["line"], entry["threads"],
                 entry["avg_thread_cycles"], entry["arc_frequency"],
                 entry["predicted_speedup"], entry["verdict"]))
    return 0


def cmd_profdb(args):
    """Inspect or maintain a persistent profile DB (docs/profdb.md)."""
    from .profdb import ProfileDb, validate_profdb_dict
    db = ProfileDb(args.path)
    if args.op == "export":
        payload = db.export()
        problems = validate_profdb_dict(payload)
        if problems:
            for problem in problems:
                print("profdb: %s" % problem, file=sys.stderr)
            return 1
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if args.op == "gc":
        evicted = db.gc(max_programs=args.max_programs,
                        max_inputs=args.max_inputs)
        stats = db.stats_dict()
        if args.json:
            print(json.dumps({"evicted": evicted, "profdb": stats},
                             indent=2, sort_keys=True))
        else:
            print("evicted %d entr%s; %d program%s / %d input%s remain"
                  % (evicted, "y" if evicted == 1 else "ies",
                     stats["programs"],
                     "" if stats["programs"] == 1 else "s",
                     stats["inputs"],
                     "" if stats["inputs"] == 1 else "s"))
        return 0
    stats = db.stats_dict()
    if args.json:
        print(json.dumps(stats, indent=2, sort_keys=True))
        return 0
    print("profile DB %s (schema %d, %d bytes)"
          % (stats["path"], stats["schema"], stats["size_bytes"]))
    print("  %d program%s, %d input%s (%d confident), %d loop%s"
          % (stats["programs"], "" if stats["programs"] == 1 else "s",
             stats["inputs"], "" if stats["inputs"] == 1 else "s",
             stats["confident_inputs"],
             stats["loops"], "" if stats["loops"] == 1 else "s"))
    print("  %d cold run%s recorded, %d warm start%s served"
          % (stats["runs"], "" if stats["runs"] == 1 else "s",
             stats["warm_runs"], "" if stats["warm_runs"] == 1 else "s"))
    for row in stats["per_program"]:
        print("  - %-24s %3d run%s %2d input%s"
              % (row["name"], row["runs"],
                 "" if row["runs"] == 1 else "s",
                 row["inputs"], "" if row["inputs"] == 1 else "s"))
    return 0


def cmd_serve(args):
    """Start the persistent execution daemon (docs/service.md)."""
    from .service import JrpmServer, run_server
    if (args.socket is None) == (args.port is None):
        print("serve: exactly one of --socket/--port is required",
              file=sys.stderr)
        return 2
    server = JrpmServer(
        socket_path=args.socket, host=args.host, port=args.port,
        jobs=args.jobs, queue_limit=args.queue_limit,
        timeout=args.timeout, batch_max=args.batch_max,
        cache_dir=args.cache_dir, use_cache=not args.no_cache,
        profdb_path=args.profdb, metrics_port=args.metrics_port)
    return run_server(server)


def cmd_metrics(args):
    """Dump a daemon's metrics registry (docs/metrics.md)."""
    from .service import Session
    fmt = "json" if args.json else "openmetrics"
    if args.socket is None and args.port is None:
        print("metrics: need --socket or --port of a running daemon",
              file=sys.stderr)
        return 2
    with Session.connect(socket_path=args.socket, host=args.host,
                         port=args.port) as session:
        result = session.metrics(format=fmt)
    if args.json:
        print(json.dumps(result["metrics"], indent=2, sort_keys=True))
    else:
        sys.stdout.write(result["openmetrics"])
    return 0


def main(argv=None):
    from . import package_version
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    parser.add_argument("--version", action="version",
                        version="jrpm %s" % package_version())
    parser.add_argument("--log-level", default=None, metavar="LEVEL",
                        help="enable structured logging for repro.* "
                             "loggers (debug, info, warning, error; "
                             "default: $JRPM_LOG or warning)")
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the pipeline on a MiniJava file")
    p_run.add_argument("file")
    p_run.add_argument("--verbose", "-v", action="store_true")
    _add_hw_flags(p_run)
    _add_profdb_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser("bench", help="run one paper benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--size", default="default",
                         choices=["small", "default", "large"])
    p_bench.add_argument("--manual", action="store_true")
    p_bench.add_argument("--verbose", "-v", action="store_true")
    p_bench.add_argument("--trace", action="store_true",
                         help="attach the event collector and print "
                              "trace aggregates on stderr")
    p_bench.add_argument("--trace-out", default=None, metavar="FILE",
                         help="also export a Chrome trace JSON "
                              "(implies --trace)")
    p_bench.add_argument("--adapt", action="store_true",
                         help="run under the adaptive recompilation "
                              "controller (docs/adaptation.md)")
    p_bench.add_argument("--adapt-epochs", type=int, default=4,
                         metavar="N",
                         help="epochs for --adapt (default 4)")
    _add_hw_flags(p_bench)
    _add_profdb_flags(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_suite = sub.add_parser("suite", help="run the whole 26-benchmark "
                                           "suite")
    p_suite.add_argument("--size", default="small",
                         choices=["small", "default", "large"])
    p_suite.add_argument("--jobs", "-j", type=int, default=1,
                         help="worker processes for cache misses "
                              "(default 1: in-process)")
    p_suite.add_argument("--cache-dir", default=None,
                         help="report cache directory (default "
                              "benchmarks/.cache)")
    p_suite.add_argument("--no-cache", action="store_true",
                         help="ignore and do not update the report cache")
    p_suite.add_argument("--json", action="store_true",
                         help="emit machine-readable results + metrics "
                              "on stdout")
    p_suite.add_argument("--only", default=None, metavar="NAMES",
                         help="comma-separated workload subset")
    p_suite.add_argument("--trace", action="store_true",
                         help="trace every run; aggregates flow into "
                              "the JSONL metrics (separate cache keys)")
    p_suite.add_argument("--adapt", action="store_true",
                         help="run every workload under the adaptive "
                              "recompilation controller (separate "
                              "cache keys)")
    p_suite.add_argument("--adapt-epochs", type=int, default=4,
                         metavar="N",
                         help="epochs for --adapt (default 4)")
    _add_hw_flags(p_suite)
    _add_profdb_flags(p_suite)
    p_suite.set_defaults(fn=cmd_suite)

    p_list = sub.add_parser("list", help="list the benchmarks")
    p_list.set_defaults(fn=cmd_list)

    p_prof = sub.add_parser("profile", help="show the TEST profile of a "
                                            "MiniJava file")
    p_prof.add_argument("file")
    _add_hw_flags(p_prof)
    p_prof.set_defaults(fn=cmd_profile)

    p_trace = sub.add_parser(
        "trace", help="run one workload with cycle-level event tracing")
    p_trace.add_argument("name",
                         help="benchmark name or MiniJava file path")
    p_trace.add_argument("--size", default="default",
                         choices=["small", "default", "large"])
    p_trace.add_argument("--manual", action="store_true")
    p_trace.add_argument("--out", "-o", default=None, metavar="FILE",
                         help="write a Chrome trace-event JSON "
                              "(load in Perfetto / chrome://tracing)")
    p_trace.add_argument("--timeline", action="store_true",
                         help="print the per-loop text timeline on "
                              "stdout")
    p_trace.add_argument("--ring", type=int, default=65536,
                         help="trace ring-buffer capacity in events "
                              "(default 65536; oldest events drop "
                              "first)")
    p_trace.add_argument("--verbose", "-v", action="store_true")
    _add_hw_flags(p_trace)
    p_trace.set_defaults(fn=cmd_trace)

    p_adapt = sub.add_parser(
        "adapt", help="run one workload under the adaptive "
                      "recompilation controller")
    p_adapt.add_argument("name",
                         help="benchmark name or MiniJava file path")
    p_adapt.add_argument("--size", default="default",
                         choices=["small", "default", "large"])
    p_adapt.add_argument("--manual", action="store_true")
    p_adapt.add_argument("--epochs", type=int, default=4,
                         help="maximum epochs (default 4)")
    p_adapt.add_argument("--policy", default="threshold",
                         choices=["threshold", "null"],
                         help="adaptation policy (default threshold)")
    p_adapt.add_argument("--decommit-threshold", type=float,
                         default=None, metavar="X",
                         help="decommit STLs whose realized speedup "
                              "falls below X (policy default 1.0)")
    p_adapt.add_argument("--violation-cutoff", type=float, default=None,
                         metavar="X",
                         help="lock-escalate above X violations per "
                              "committed thread (policy default 0.25)")
    p_adapt.add_argument("--cooldown", type=int, default=None,
                         metavar="N",
                         help="hysteresis: leave an acted-on STL alone "
                              "for N epochs (policy default 1)")
    p_adapt.add_argument("--json", action="store_true",
                         help="emit the adaptation log as JSON on "
                              "stdout (schema checked by "
                              "scripts/check_adapt_log.py)")
    p_adapt.add_argument("--trace", action="store_true",
                         help="attach the event collector (adapt "
                              "decisions appear on the Perfetto "
                              "timeline)")
    p_adapt.add_argument("--trace-out", default=None, metavar="FILE",
                         help="export a Chrome trace JSON (with "
                              "--trace)")
    p_adapt.add_argument("--verbose", "-v", action="store_true")
    _add_hw_flags(p_adapt)
    p_adapt.set_defaults(fn=cmd_adapt)

    p_analyze = sub.add_parser(
        "analyze", help="static dependence analysis vs the TEST "
                        "profile")
    p_analyze.add_argument("name",
                           help="benchmark name or MiniJava file path")
    p_analyze.add_argument("--size", default="default",
                           choices=["small", "default", "large"])
    p_analyze.add_argument("--manual", action="store_true")
    p_analyze.add_argument("--json", action="store_true",
                           help="emit the analysis report as JSON on "
                                "stdout (schema checked by "
                                "scripts/check_analysis_report.py)")
    p_analyze.add_argument("--verbose", "-v", action="store_true",
                           help="also list every predicted dependence "
                                "arc")
    _add_hw_flags(p_analyze)
    p_analyze.set_defaults(fn=cmd_analyze)

    p_serve = sub.add_parser(
        "serve", help="start the persistent execution daemon")
    p_serve.add_argument("--socket", default=None, metavar="PATH",
                         help="listen on a unix domain socket")
    p_serve.add_argument("--port", type=int, default=None,
                         help="listen on TCP (0 picks a free port)")
    p_serve.add_argument("--host", default="127.0.0.1",
                         help="TCP bind address (default 127.0.0.1)")
    p_serve.add_argument("--jobs", "-j", type=int, default=2,
                         help="worker processes (default 2)")
    p_serve.add_argument("--queue-limit", type=int, default=64,
                         help="bounded-queue depth before submits are "
                              "rejected with 'overloaded' (default 64)")
    p_serve.add_argument("--batch-max", type=int, default=16,
                         help="max jobs per scheduler batch "
                              "(default 16)")
    p_serve.add_argument("--timeout", type=float, default=300.0,
                         help="default per-request seconds before the "
                              "worker is terminated (default 300)")
    p_serve.add_argument("--cache-dir", default=None,
                         help="persistent report cache directory "
                              "(default benchmarks/.cache, shared "
                              "with `suite`)")
    p_serve.add_argument("--no-cache", action="store_true",
                         help="serve from memory only; nothing "
                              "persists across restarts")
    p_serve.add_argument("--profdb", default=None, metavar="PATH",
                         help="shared persistent profile DB: run/"
                              "run_adaptive jobs record profiles and "
                              "warm-start from stored consensus "
                              "(docs/profdb.md)")
    p_serve.add_argument("--metrics-port", type=int, default=None,
                         metavar="N",
                         help="also serve OpenMetrics text on "
                              "http://127.0.0.1:N/metrics (0 picks a "
                              "free port; see docs/metrics.md)")
    p_serve.set_defaults(fn=cmd_serve)

    p_metrics = sub.add_parser(
        "metrics", help="dump a running daemon's metrics registry")
    p_metrics.add_argument("--socket", default=None, metavar="PATH",
                           help="daemon unix socket")
    p_metrics.add_argument("--port", type=int, default=None,
                           help="daemon TCP port")
    p_metrics.add_argument("--host", default="127.0.0.1",
                           help="daemon TCP host (default 127.0.0.1)")
    p_metrics.add_argument("--json", action="store_true",
                           help="lossless registry dict instead of "
                                "OpenMetrics text")
    p_metrics.set_defaults(fn=cmd_metrics)

    p_profdb = sub.add_parser(
        "profdb", help="inspect/maintain a persistent profile DB")
    p_profdb.add_argument("op", nargs="?", default="stats",
                          choices=["stats", "export", "gc"],
                          help="stats (default): summary counters; "
                               "export: full validated JSON payload; "
                               "gc: evict beyond the size caps")
    p_profdb.add_argument("--path", default=None,
                          help="DB file (default $JRPM_PROFDB_PATH or "
                               "benchmarks/.cache/profdb.json)")
    p_profdb.add_argument("--json", action="store_true",
                          help="machine-readable output")
    p_profdb.add_argument("--max-programs", type=int, default=None,
                          metavar="N", help="gc: program-entry cap")
    p_profdb.add_argument("--max-inputs", type=int, default=None,
                          metavar="N",
                          help="gc: inputs-per-program cap")
    p_profdb.set_defaults(fn=cmd_profdb)

    args = parser.parse_args(argv)
    if args.log_level is not None or os.environ.get("JRPM_LOG"):
        from .log import configure
        configure(args.log_level)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
