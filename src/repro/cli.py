"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``run FILE [--verbose]``      — run the full pipeline on a MiniJava file
* ``bench NAME [--size S]``     — run one of the 26 paper benchmarks
* ``suite [--size S]``          — run the whole suite, print the summary
* ``list``                      — list the available benchmarks
* ``profile FILE``              — show only the TEST profile + verdicts
"""

import argparse
import sys

from .core.pipeline import Jrpm
from .core.report import format_report, format_suite_summary
from .hydra.config import HydraConfig
from .minijava import compile_source


def _add_hw_flags(parser):
    parser.add_argument("--cpus", type=int, default=4,
                        help="number of simulated CPUs (default 4)")
    parser.add_argument("--old-handlers", action="store_true",
                        help="use the paper's 'Old' handler overheads")


def _config_from(args):
    config = HydraConfig(num_cpus=args.cpus)
    if getattr(args, "old_handlers", False):
        from .hydra.config import SpeculationOverheads
        config.overheads = SpeculationOverheads.old_handlers()
    return config


def cmd_run(args):
    with open(args.file) as fh:
        source = fh.read()
    report = Jrpm(config=_config_from(args)).run(source, name=args.file)
    print(format_report(report, verbose=args.verbose))
    return 0 if report.outputs_match() else 1


def cmd_bench(args):
    from .workloads import lookup
    workload = lookup(args.name)
    source = (workload.manual_source(args.size) if args.manual
              else workload.source(args.size))
    if source is None:
        print("%s has no manual variant" % workload.name, file=sys.stderr)
        return 2
    report = Jrpm(config=_config_from(args)).run(
        compile_source(source), name=workload.name)
    print(format_report(report, verbose=args.verbose))
    return 0 if report.outputs_match() else 1


def cmd_suite(args):
    from .workloads import all_workloads
    reports = {}
    for workload in all_workloads():
        print("running %s..." % workload.name, file=sys.stderr)
        reports[workload.name] = Jrpm(config=_config_from(args)).run(
            compile_source(workload.source(args.size)), name=workload.name)
    print(format_suite_summary(reports))
    return 0


def cmd_list(args):
    from .workloads import all_workloads
    for workload in all_workloads():
        star = " *" if workload.has_manual_variant else ""
        print("%-14s %-14s %s%s" % (workload.name, workload.category,
                                    workload.description, star))
    return 0


def cmd_profile(args):
    from .hydra.machine import Machine
    from .jit.compiler import compile_annotated
    from .tracer import Selector, TestProfiler
    with open(args.file) as fh:
        source = fh.read()
    config = _config_from(args)
    program = compile_source(source)
    annotated = compile_annotated(program, config)
    profiler = TestProfiler(config, annotated.loop_table)
    Machine(annotated, config, profiler=profiler).run()
    selector = Selector(config, annotated.loop_table)
    plans = selector.select(profiler.stats, profiler.dynamic_nesting)
    print("%-5s %-6s %8s %9s %8s %8s  %s"
          % ("loop", "line", "threads", "avg cyc", "arcfreq", "pred",
             "verdict"))
    for loop_id in sorted(profiler.stats):
        stats = profiler.stats[loop_id]
        meta = annotated.loop_table[loop_id]
        prediction = selector.predict(stats)
        if loop_id in plans:
            verdict = "SELECTED"
            if plans[loop_id].sync:
                verdict += " +sync"
            if plans[loop_id].multilevel_inner:
                verdict += " (multilevel)"
        elif not meta.candidate:
            verdict = "not a candidate: %s" % meta.reject_reason
        else:
            verdict = "rejected"
        print("%-5d %-6s %8d %9.1f %8.2f %7.2fx  %s"
              % (loop_id, meta.line, stats.threads,
                 stats.avg_thread_cycles, stats.arc_frequency,
                 prediction.speedup, verdict))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run the pipeline on a MiniJava file")
    p_run.add_argument("file")
    p_run.add_argument("--verbose", "-v", action="store_true")
    _add_hw_flags(p_run)
    p_run.set_defaults(fn=cmd_run)

    p_bench = sub.add_parser("bench", help="run one paper benchmark")
    p_bench.add_argument("name")
    p_bench.add_argument("--size", default="default",
                         choices=["small", "default", "large"])
    p_bench.add_argument("--manual", action="store_true")
    p_bench.add_argument("--verbose", "-v", action="store_true")
    _add_hw_flags(p_bench)
    p_bench.set_defaults(fn=cmd_bench)

    p_suite = sub.add_parser("suite", help="run the whole 26-benchmark "
                                           "suite")
    p_suite.add_argument("--size", default="small",
                         choices=["small", "default", "large"])
    _add_hw_flags(p_suite)
    p_suite.set_defaults(fn=cmd_suite)

    p_list = sub.add_parser("list", help="list the benchmarks")
    p_list.set_defaults(fn=cmd_list)

    p_prof = sub.add_parser("profile", help="show the TEST profile of a "
                                            "MiniJava file")
    p_prof.add_argument("file")
    _add_hw_flags(p_prof)
    p_prof.set_defaults(fn=cmd_profile)

    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
