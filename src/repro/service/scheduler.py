"""Batched job scheduler: bounded queue → worker-pool batches.

The daemon accepts requests on the asyncio side and hands
:class:`~repro.service.jobs.JobSpec`s to this scheduler, which owns the
execution policy:

* a **bounded queue** (``queue_limit``) applies backpressure — a full
  queue rejects the submit with :class:`QueueFull` instead of letting
  the daemon buffer unbounded work;
* a dispatcher thread drains whatever is queued (up to ``batch_max``)
  into one **batch** and shards it across the crash-isolating
  :class:`~repro.runner.pool.ProcessPool` — identical specs inside a
  batch are **coalesced** into a single execution whose result settles
  every duplicate;
* per-request **timeouts** (``RunOptions.timeout``, falling back to the
  scheduler default) terminate the stuck worker and fail only that
  request; a worker **crash** retries the job once on a fresh worker
  before reporting it;
* results are memoized in the shared
  :class:`~repro.service.store.ArtifactStore` so later identical
  requests never reach the pool at all;
* :meth:`drain` stops intake and waits until every accepted job has
  settled — the graceful-shutdown half of the daemon's lifecycle.

Futures are ``concurrent.futures.Future`` so the asyncio daemon can
``asyncio.wrap_future`` them and synchronous tests can ``result()``.
"""

import threading
import time
from collections import deque
from concurrent.futures import Future

from ..log import get_logger
from ..metrics import get_registry
from ..runner.pool import ProcessPool
from .jobs import execute_job

_log = get_logger("service.scheduler")


def _sched_counter(name, help_text, **labels):
    """One increment against the global registry (resolved per call so
    registry swaps in tests take effect)."""
    family = get_registry().counter(name, help_text,
                                    labels=tuple(sorted(labels)))
    (family.labels(**labels) if labels else family).inc()


def _sched_gauges(queue_depth, in_flight):
    """Refresh the scheduler's two depth gauges."""
    registry = get_registry()
    registry.gauge("jrpm_scheduler_queue_depth",
                   "Jobs waiting in the bounded queue").set(queue_depth)
    registry.gauge("jrpm_scheduler_in_flight",
                   "Jobs dispatched to the pool, not yet settled").set(
                       in_flight)


class ServiceError(RuntimeError):
    """Base of every scheduler-surfaced failure; ``kind`` is the wire
    error discriminator."""

    kind = "error"


class QueueFull(ServiceError):
    """Backpressure: the bounded queue is at capacity."""

    kind = "overloaded"


class Draining(ServiceError):
    """The scheduler is draining (or closed) and accepts no new work."""

    kind = "draining"


class JobFailed(ServiceError):
    """The job ran and failed; ``kind`` is error|crashed|timeout."""

    def __init__(self, kind, message):
        self.kind = kind
        super().__init__(message)


class ScheduledJob:
    """Handle for one accepted submission."""

    __slots__ = ("spec", "future", "cached", "enqueued_at")

    def __init__(self, spec, future, cached):
        self.spec = spec
        self.future = future
        self.cached = cached
        self.enqueued_at = time.perf_counter()


class JobScheduler:
    """Runs job specs through store + batched worker pool."""

    def __init__(self, store, jobs=2, queue_limit=64, timeout=300.0,
                 batch_max=16, start_method=None):
        self.store = store
        self.jobs = max(1, int(jobs))
        self.queue_limit = queue_limit
        self.timeout = timeout
        self.batch_max = max(1, int(batch_max))
        self.start_method = start_method
        self._queue = deque()
        self._lock = threading.Lock()
        self._wake = threading.Condition(self._lock)
        self._idle = threading.Condition(self._lock)
        self._accepting = True
        self._closed = False
        self._in_flight = 0
        self.accepted = 0
        self.rejected = 0
        self.completed = 0
        self.failed = 0
        self.batches = 0
        self.coalesced = 0
        self._thread = threading.Thread(target=self._dispatch_loop,
                                        name="jrpm-scheduler",
                                        daemon=True)
        self._thread.start()

    # -- intake ------------------------------------------------------------
    def submit(self, spec):
        """Accept one spec; returns a :class:`ScheduledJob` whose future
        settles with the result dict.  Store hits settle immediately
        (``cached=True``) and never occupy a queue slot."""
        cached = self.store.get(spec)
        if cached is not None:
            future = Future()
            future.set_result(cached)
            with self._lock:
                self.accepted += 1
                self.completed += 1
            _sched_counter("jrpm_scheduler_submits",
                           "Submissions by admission outcome",
                           outcome="store_hit")
            return ScheduledJob(spec, future, cached=True)
        with self._lock:
            if not self._accepting:
                self.rejected += 1
                _sched_counter("jrpm_scheduler_submits",
                               "Submissions by admission outcome",
                               outcome="rejected_draining")
                raise Draining("scheduler is draining; submit rejected")
            if len(self._queue) >= self.queue_limit:
                self.rejected += 1
                _sched_counter("jrpm_scheduler_submits",
                               "Submissions by admission outcome",
                               outcome="rejected_overloaded")
                raise QueueFull(
                    "queue full (%d jobs pending); retry later"
                    % len(self._queue))
            future = Future()
            self._queue.append((spec, future))
            self.accepted += 1
            depth = len(self._queue)
            self._wake.notify()
        _sched_counter("jrpm_scheduler_submits",
                       "Submissions by admission outcome",
                       outcome="accepted")
        _sched_gauges(depth, self._in_flight)
        return ScheduledJob(spec, future, cached=False)

    # -- lifecycle ---------------------------------------------------------
    def drain(self, timeout=None):
        """Stop accepting new work and block until every accepted job
        has settled.  Idempotent; the dispatcher stays alive so a
        drained scheduler still answers ``stats``."""
        with self._lock:
            self._accepting = False
            self._wake.notify()
            deadline = None if timeout is None \
                else time.perf_counter() + timeout
            while self._queue or self._in_flight:
                remaining = None if deadline is None \
                    else max(0.0, deadline - time.perf_counter())
                if remaining is not None and remaining == 0.0:
                    raise TimeoutError(
                        "drain timed out with %d queued, %d in flight"
                        % (len(self._queue), self._in_flight))
                self._idle.wait(timeout=remaining)

    def close(self):
        """Drain, then stop the dispatcher thread."""
        if not self._closed:
            self.drain()
            with self._lock:
                self._closed = True
                self._wake.notify()
            self._thread.join(timeout=5.0)

    @property
    def draining(self):
        """True once a drain began: no new submissions are accepted."""
        return not self._accepting

    # -- dispatch ----------------------------------------------------------
    def _dispatch_loop(self):
        while True:
            with self._lock:
                while not self._queue and not self._closed:
                    if not self._accepting:
                        self._idle.notify_all()
                    self._wake.wait(timeout=0.5)
                if self._closed and not self._queue:
                    self._idle.notify_all()
                    return
                batch = []
                while self._queue and len(batch) < self.batch_max:
                    batch.append(self._queue.popleft())
                self._in_flight += len(batch)
                depth = len(self._queue)
                in_flight = self._in_flight
            _sched_gauges(depth, in_flight)
            try:
                self._run_batch(batch)
            finally:
                with self._lock:
                    self._in_flight -= len(batch)
                    depth = len(self._queue)
                    in_flight = self._in_flight
                    if not self._queue and not self._in_flight:
                        self._idle.notify_all()
                _sched_gauges(depth, in_flight)

    def _run_batch(self, batch):
        """Execute one batch: re-check the store (an earlier batch may
        have warmed it), coalesce duplicates, shard the rest across the
        pool grouped by effective timeout."""
        with self._lock:
            self.batches += 1
        _sched_counter("jrpm_scheduler_batches", "Batches dispatched")
        _log.debug("dispatching batch of %d", len(batch))
        unique = {}                     # fingerprint -> (spec, [futures])
        for spec, future in batch:
            cached = self.store.get(spec, count=False)
            if cached is not None:
                self._settle_ok(future, cached)
                continue
            key = self.store.key_of(spec)
            if key in unique:
                unique[key][1].append(future)
                with self._lock:
                    self.coalesced += 1
                _sched_counter("jrpm_scheduler_coalesced",
                               "Duplicate in-batch jobs coalesced")
            else:
                unique[key] = (spec, [future])
        if not unique:
            return
        by_timeout = {}
        for key, (spec, futures) in unique.items():
            effective = spec.options.timeout or self.timeout
            by_timeout.setdefault(effective, []).append(
                (key, spec, futures))
        for effective, group in by_timeout.items():
            pool = ProcessPool(execute_job, jobs=self.jobs,
                               timeout=effective,
                               start_method=self.start_method)
            outcomes = pool.map([(key, spec)
                                 for key, spec, _ in group])
            for key, spec, futures in group:
                outcome = outcomes[key]
                if outcome.ok:
                    self.store.put(spec, outcome.value)
                    for future in futures:
                        self._settle_ok(future, outcome.value)
                else:
                    error = JobFailed(outcome.status, outcome.error
                                      or "job failed")
                    for future in futures:
                        self._settle_error(future, error)

    def _settle_ok(self, future, value):
        with self._lock:
            self.completed += 1
        _sched_counter("jrpm_scheduler_settled",
                       "Settled jobs by terminal result", result="ok")
        future.set_result(value)

    def _settle_error(self, future, error):
        with self._lock:
            self.failed += 1
        _sched_counter("jrpm_scheduler_settled",
                       "Settled jobs by terminal result",
                       result=error.kind)
        _log.warning("job failed (%s): %s", error.kind, error)
        future.set_exception(error)

    # -- introspection -----------------------------------------------------
    def stats_dict(self):
        """JSON-safe snapshot of queue/batch/coalescing counters."""
        with self._lock:
            return {
                "queue_depth": len(self._queue),
                "queue_limit": self.queue_limit,
                "in_flight": self._in_flight,
                "workers": self.jobs,
                "accepted": self.accepted,
                "rejected": self.rejected,
                "completed": self.completed,
                "failed": self.failed,
                "batches": self.batches,
                "coalesced": self.coalesced,
                "draining": not self._accepting,
            }
