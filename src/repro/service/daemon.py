"""``jrpm serve`` — the persistent execution daemon.

:class:`JrpmServer` listens on a unix socket (``--socket``) or TCP port
(``--port``), speaks the line-delimited JSON protocol of
:mod:`repro.service.protocol`, and owns the warm state a resident Jrpm
needs: the shared :class:`~repro.service.store.ArtifactStore` and the
batched :class:`~repro.service.scheduler.JobScheduler` over the
crash-isolating worker pool.

Lifecycle: requests on one connection are handled **concurrently**
(one asyncio task per request line; responses carry the request id and
go out in completion order), so a single pipelining client gets
batching for free.  ``drain`` stops intake, waits for every in-flight
job *and* every pending response write, answers last, and then the
server shuts down — the graceful half of the paper's "resident VM"
story.  SIGINT/SIGTERM trigger the same drain path.
"""

import asyncio
import os
import signal
import time

from ..log import get_logger
from ..metrics import MetricsHttpServer, get_registry, render
from ..serialize import REPORT_SCHEMA_VERSION
from ..runner.cache import NullCache, ReportCache
from ..runner.suite import default_cache_dir
from . import protocol
from ..profdb import PROFDB_SCHEMA_VERSION, ProfileDb
from .jobs import VERBS, JobSpec
from .options import RunOptions
from .scheduler import JobScheduler, ServiceError
from .stats import ServiceStats
from .store import ArtifactStore

_log = get_logger("service.daemon")


class JrpmServer:
    """One daemon instance: listener + store + scheduler + stats."""

    def __init__(self, socket_path=None, host="127.0.0.1", port=None,
                 jobs=2, queue_limit=64, timeout=300.0, batch_max=16,
                 cache_dir=None, use_cache=True, store_entries=512,
                 start_method=None, profdb_path=None,
                 metrics_port=None, metrics_host="127.0.0.1"):
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path/port required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        if use_cache:
            disk_cache = ReportCache(cache_dir or default_cache_dir())
        else:
            disk_cache = NullCache()
        self.store = ArtifactStore(max_entries=store_entries,
                                   disk_cache=disk_cache)
        self.scheduler = JobScheduler(
            self.store, jobs=jobs, queue_limit=queue_limit,
            timeout=timeout, batch_max=batch_max,
            start_method=start_method)
        self.stats = ServiceStats()
        #: shared persistent profile DB: when configured, run /
        #: run_adaptive jobs get it injected (unless the client chose
        #: its own), so repeated requests across clients warm start.
        #: Worker processes open it by path; the flock discipline makes
        #: their concurrent write-backs safe.
        self.profdb = ProfileDb(profdb_path) if profdb_path else None
        #: OpenMetrics HTTP endpoint (``--metrics-port``; 0 = pick a
        #: free port, resolved on start).  None disables it — the
        #: ``metrics`` verb on the JSON socket is always available.
        self.metrics_port = metrics_port
        self.metrics_host = metrics_host
        self.metrics_server = None
        self._server = None
        self._tasks = set()
        self._connections = set()      # live connection-handler tasks
        self._done = None              # set by start() on the live loop
        self._draining = False

    # -- lifecycle ---------------------------------------------------------
    async def start(self):
        """Bind the socket and start accepting connections."""
        self._done = asyncio.Event()
        if self.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection, path=self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle_connection, host=self.host, port=self.port)
            self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_port is not None:
            self.metrics_server = MetricsHttpServer(
                get_registry, host=self.metrics_host,
                port=self.metrics_port)
            await self.metrics_server.start()
            self.metrics_port = self.metrics_server.port
        _log.info("listening on %s", self.endpoint)
        return self

    @property
    def endpoint(self):
        """Human-readable listen address (socket path or host:port)."""
        if self.socket_path is not None:
            return self.socket_path
        return "%s:%s" % (self.host, self.port)

    async def serve_until_drained(self):
        """Serve until a ``drain`` request (or :meth:`initiate_drain`)
        completes, then close everything."""
        await self._done.wait()
        await self.aclose()

    async def aclose(self):
        """Stop accepting, drain the scheduler, free the port."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        if self.metrics_server is not None:
            await self.metrics_server.close()
            self.metrics_server = None
        for task in list(self._connections):
            task.cancel()
        if self._connections:
            await asyncio.gather(*self._connections,
                                 return_exceptions=True)
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.close)
        if self.socket_path is not None:
            try:
                os.unlink(self.socket_path)
            except OSError:
                pass

    def initiate_drain(self):
        """Signal-safe entry: schedule a drain on the event loop."""
        task = asyncio.ensure_future(self._drain())
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _drain(self):
        """Stop intake, wait for all jobs and all responses in flight."""
        self._draining = True
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.scheduler.drain)
        current = asyncio.current_task()
        pending = [task for task in self._tasks
                   if task is not current and not task.done()]
        if pending:
            await asyncio.gather(*pending, return_exceptions=True)
        self._done.set()

    # -- connection handling -----------------------------------------------
    async def _handle_connection(self, reader, writer):
        write_lock = asyncio.Lock()
        current = asyncio.current_task()
        self._connections.add(current)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.LimitOverrunError):
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                task = asyncio.ensure_future(
                    self._serve_line(line, writer, write_lock))
                self._tasks.add(task)
                task.add_done_callback(self._tasks.discard)
        except asyncio.CancelledError:
            pass                         # server shutting down
        finally:
            self._connections.discard(current)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, OSError):
                pass

    async def _serve_line(self, line, writer, write_lock):
        started = time.perf_counter()
        request_id, verb = None, "?"
        try:
            frame = protocol.decode_frame(line)
            request_id = frame.get("id")
            request_id, verb, payload = protocol.check_request(frame)
            response = await self._dispatch(request_id, verb, payload,
                                            started)
        except protocol.ProtocolError as error:
            response = protocol.make_error(request_id, "protocol",
                                           str(error))
        except Exception as error:       # last-resort: never drop a frame
            _log.exception("request %s (%s) failed", request_id, verb)
            response = protocol.make_error(
                request_id, "error",
                "%s: %s" % (type(error).__name__, error))
        ok = bool(response.get("ok"))
        self.stats.observe(verb, time.perf_counter() - started, ok=ok)
        async with write_lock:
            try:
                writer.write(protocol.encode_frame(response))
                await writer.drain()
            except (ConnectionResetError, OSError):
                pass                     # client went away mid-reply

    async def _dispatch(self, request_id, verb, payload, started):
        if verb == "ping":
            return protocol.make_response(
                request_id,
                {"pong": True,
                 "protocol": protocol.PROTOCOL_VERSION,
                 "report_schema": REPORT_SCHEMA_VERSION,
                 "draining": self._draining},
                elapsed=time.perf_counter() - started)
        if verb == "stats":
            return protocol.make_response(
                request_id, self.stats_snapshot(),
                elapsed=time.perf_counter() - started)
        if verb == "metrics":
            registry = get_registry()
            fmt = (payload or {}).get("format", "json")
            if fmt == "openmetrics":
                result = {"openmetrics": render(registry)}
            elif fmt == "json":
                result = {"metrics": registry.to_dict()}
            else:
                return protocol.make_error(
                    request_id, "bad-request",
                    "unknown metrics format %r (json, openmetrics)"
                    % (fmt,))
            if self.metrics_server is not None:
                result["http_endpoint"] = "%s:%d" % (
                    self.metrics_host, self.metrics_port)
            return protocol.make_response(
                request_id, result,
                elapsed=time.perf_counter() - started)
        if verb == "version":
            from .. import package_version
            return protocol.make_response(
                request_id,
                {"version": package_version(),
                 "protocol": protocol.PROTOCOL_VERSION,
                 "report_schema": REPORT_SCHEMA_VERSION,
                 "profdb_schema": PROFDB_SCHEMA_VERSION},
                elapsed=time.perf_counter() - started)
        if verb == "profdb":
            try:
                result = self._profdb_op(payload or {})
            except (KeyError, TypeError, ValueError) as error:
                return protocol.make_error(request_id, "bad-request",
                                           str(error))
            return protocol.make_response(
                request_id, result,
                elapsed=time.perf_counter() - started)
        if verb == "drain":
            await self._drain()
            return protocol.make_response(
                request_id,
                {"drained": True,
                 "completed": self.scheduler.completed,
                 "failed": self.scheduler.failed},
                elapsed=time.perf_counter() - started)
        if verb not in VERBS:
            return protocol.make_error(
                request_id, "bad-request",
                "unknown verb %r (job verbs: %s; control verbs: %s)"
                % (verb, ", ".join(VERBS),
                   ", ".join(protocol.CONTROL_VERBS)))
        try:
            spec = self._spec_of(verb, payload, request_id=request_id)
        except (KeyError, TypeError, ValueError) as error:
            return protocol.make_error(request_id, "bad-request",
                                       str(error))
        try:
            job = self.scheduler.submit(spec)
        except ServiceError as error:
            return protocol.make_error(request_id, error.kind,
                                       str(error))
        try:
            result = await asyncio.wrap_future(job.future)
        except ServiceError as error:
            return protocol.make_error(request_id, error.kind,
                                       str(error))
        # Fold the worker's metric delta exactly once: the pop mutates
        # the store-resident dict, so replays of this result (store
        # hits, coalesced futures) never double-count.
        metrics_delta = result.pop("metrics", None)
        if metrics_delta:
            try:
                get_registry().merge(metrics_delta)
            except ValueError as error:     # schema drift across builds
                _log.warning("dropping worker metrics: %s", error)
        if isinstance(result.get("report"), dict):
            self.stats.absorb_report(result["report"])
        return protocol.make_response(
            request_id, result, cached=job.cached,
            elapsed=time.perf_counter() - started)

    def _profdb_op(self, payload):
        """The ``profdb`` control verb: stats / export / gc on the
        daemon's shared profile DB (or the one named in the payload)."""
        db = self.profdb
        path = payload.get("path")
        if path:
            db = ProfileDb(path)
        if db is None:
            raise ValueError("no profile DB configured (start the "
                             "daemon with --profdb, or pass 'path')")
        op = payload.get("op", "stats")
        if op == "stats":
            return {"profdb": db.stats_dict()}
        if op == "export":
            return {"profdb": db.export()}
        if op == "gc":
            evicted = db.gc(max_programs=payload.get("max_programs"),
                            max_inputs=payload.get("max_inputs"))
            return {"evicted": evicted, "profdb": db.stats_dict()}
        raise ValueError("unknown profdb op %r (stats, export, gc)"
                         % (op,))

    def _spec_of(self, verb, payload, request_id=None):
        """Build the JobSpec for one request; source may be inline or a
        registry workload reference.  The daemon's shared profile DB is
        injected into run/run_adaptive jobs that did not bring their
        own."""
        options = RunOptions.from_dict(payload.get("options") or {})
        if (self.profdb is not None and not options.profile_db
                and verb in ("run", "run_adaptive")):
            options.profile_db = self.profdb.path
        source = payload.get("source")
        name = payload.get("name")
        if source is None:
            workload_name = payload.get("workload")
            if workload_name is None:
                raise ValueError(
                    "payload needs either 'source' (MiniJava text) or "
                    "'workload' (registry name)")
            from ..workloads import lookup
            workload = lookup(workload_name)
            size = payload.get("size", "default")
            if payload.get("variant", "base") == "manual":
                source = workload.manual_source(size)
                if source is None:
                    raise ValueError("%s has no manual variant"
                                     % workload.name)
            else:
                source = workload.source(size)
            name = name or workload.name
        return JobSpec(verb=verb, source=source,
                       name=name or "program", options=options,
                       crash_marker=payload.get("crash_marker"),
                       delay=payload.get("delay", 0.0),
                       exec_log=payload.get("exec_log"),
                       request_id=(str(request_id)
                                   if request_id is not None else None))

    def stats_snapshot(self):
        """One JSON-safe dict of every live counter (the `stats` verb)."""
        snapshot = self.stats.to_dict()
        snapshot["scheduler"] = self.scheduler.stats_dict()
        snapshot["store"] = self.store.stats_dict()
        snapshot["store"]["cache_hit_rate"] = \
            snapshot["store"].pop("hit_rate")
        snapshot["endpoint"] = self.endpoint
        return snapshot


def run_server(server, quiet=False):
    """Blocking entry for the CLI: serve until drained or signalled."""

    async def _main():
        await server.start()
        if not quiet:
            import sys
            print("jrpm serve: listening on %s (protocol v%d, "
                  "%d workers, queue %d)"
                  % (server.endpoint, protocol.PROTOCOL_VERSION,
                     server.scheduler.jobs, server.scheduler.queue_limit),
                  file=sys.stderr, flush=True)
            if server.metrics_server is not None:
                print("jrpm serve: metrics on http://%s:%d/metrics"
                      % (server.metrics_host, server.metrics_port),
                      file=sys.stderr, flush=True)
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(signum, server.initiate_drain)
            except NotImplementedError:   # pragma: no cover - non-unix
                pass
        await server.serve_until_drained()

    asyncio.run(_main())
    return 0
