"""Self-contained service jobs (the worker-process entry point).

A :class:`JobSpec` is one verb applied to one MiniJava source under one
:class:`~repro.service.options.RunOptions` — nothing else.  Every verb
recomputes its own prerequisites from the source, so a spec is fully
picklable, shippable to a crash-isolated worker, and memoizable by
fingerprint: the daemon's artifact store keys results on
:func:`job_fingerprint` and never re-executes an identical spec.

``execute_job`` must stay module-level (picklable under ``spawn``).
"""

import os
import time
from dataclasses import dataclass, field

from ..metrics import MetricsRegistry, observe_report_dict
from ..metrics.registry import swap_registry
from ..minijava import compile_source
from ..runner.cache import cache_key
from .options import RunOptions


@dataclass
class JobSpec:
    """One unit of service work."""

    verb: str                          # compile|profile|select|recompile
    source: str                        #   |run|run_adaptive
    name: str = "program"
    options: RunOptions = field(default_factory=RunOptions)
    #: test hook — path of a marker file; the first worker to execute
    #: this spec creates the marker and dies (exercises pool retry)
    crash_marker: str = None
    #: test hook — sleep this long before executing (exercises timeout)
    delay: float = 0.0
    #: test hook — append one ``pid`` line here per actual execution,
    #: so tests can prove store hits / coalescing skipped recompute
    exec_log: str = None
    #: daemon request correlation: the protocol frame id of the request
    #: that caused this execution.  Deliberately *not* fingerprint
    #: material — identical jobs coalesce across requests, and a reused
    #: result carries the id of the request that actually executed.
    request_id: str = None

    def fingerprint(self, salt=None):
        """Content-addressed key (see :func:`job_fingerprint`)."""
        return job_fingerprint(self, salt=salt)


VERBS = ("compile", "profile", "select", "recompile", "run",
         "run_adaptive", "analyze")


def job_fingerprint(spec, salt=None):
    """Content-addressed key for one job, compatible with the report
    cache's keying discipline (source + options + code version), with
    the verb and the result-affecting option fields as extra material.
    """
    options = spec.options
    material = options.to_dict()
    # timeout/verify shape *how* the job runs, not what it computes
    material.pop("timeout", None)
    material.pop("verify", None)
    material.pop("args", None)         # already first-class key material
    # the profile DB is mutable cross-run state: results produced with
    # it attached are not content-addressed (the store bypasses them),
    # so it must not fork the keyspace either
    material.pop("profile_db", None)
    material.pop("warm_start", None)
    return cache_key(spec.source, options.args, options.hydra_config(),
                     options.stl_options(), options.vm_options(),
                     salt=salt,
                     extra={"service-verb": spec.verb,
                            "options": material})


def execute_job(spec):
    """Run one verb end to end; returns a JSON-safe result dict.

    Raises on bad verbs and on output-verification failure so the pool
    reports status ``error`` with the traceback.

    Metric capture: the job runs against a fresh scoped registry so the
    counters it produces (TLS folds, profdb activity) can be shipped
    back to the daemon as ``result["metrics"]`` without inheriting the
    parent's fork-time values.  The delta is also merged into this
    process's own registry, so in-process callers
    (:class:`~repro.service.client.LocalSession`) account exactly once.
    """
    if spec.crash_marker is not None:
        if not os.path.exists(spec.crash_marker):
            with open(spec.crash_marker, "w") as fh:
                fh.write(str(os.getpid()))
            os._exit(17)               # simulate a worker death mid-job
    if spec.exec_log is not None:
        with open(spec.exec_log, "a") as fh:
            fh.write("%d\n" % os.getpid())
    if spec.delay:
        time.sleep(spec.delay)
    if spec.verb not in VERBS:
        raise ValueError("unknown verb %r (expected one of %s)"
                         % (spec.verb, ", ".join(VERBS)))
    scoped = MetricsRegistry()
    previous = swap_registry(scoped)
    try:
        start = time.perf_counter()
        result = _VERB_TABLE[spec.verb](spec)
        result["wall_time"] = time.perf_counter() - start
        if isinstance(result.get("report"), dict):
            observe_report_dict(result["report"],
                                wall_seconds=result["wall_time"],
                                registry=scoped)
    finally:
        swap_registry(previous)
        previous.merge(scoped.to_dict())
    result["metrics"] = scoped.to_dict()
    return result


# -- per-verb implementations ------------------------------------------------

def _jrpm_of(spec):
    return spec.options.make_jrpm(), compile_source(spec.source)


def _do_compile(spec):
    jrpm, program = _jrpm_of(spec)
    baseline = jrpm.compile_baseline(program, spec.options.args)
    return {"compile_cycles": baseline.compile_cycles,
            "measurement": baseline.measurement.to_dict()}


def _profile_artifacts(spec):
    jrpm, program = _jrpm_of(spec)
    profile = jrpm.profile(program, spec.options.args)
    selector = jrpm.make_selector(profile.loop_table)
    plans = selector.select(profile.stats,
                            profile.profiler.dynamic_nesting)
    return jrpm, program, profile, selector, plans


def _do_profile(spec):
    _, _, profile, selector, plans = _profile_artifacts(spec)
    loops = {}
    for loop_id in sorted(profile.stats):
        stats = profile.stats[loop_id]
        meta = profile.loop_table[loop_id]
        prediction = selector.predict(stats)
        if loop_id in plans:
            verdict = "SELECTED"
            if plans[loop_id].sync:
                verdict += " +sync"
            if plans[loop_id].multilevel_inner:
                verdict += " (multilevel)"
        elif not meta.candidate:
            verdict = "not a candidate: %s" % meta.reject_reason
        else:
            verdict = "rejected"
        loops[str(loop_id)] = {
            "line": meta.line,
            "threads": stats.threads,
            "avg_thread_cycles": stats.avg_thread_cycles,
            "arc_frequency": stats.arc_frequency,
            "predicted_speedup": prediction.speedup,
            "verdict": verdict,
        }
    return {"annotations": profile.annotations,
            "measurement": profile.measurement.to_dict(),
            "loops": loops,
            "selected": sorted(plans)}


def _do_select(spec):
    _, _, _, _, plans = _profile_artifacts(spec)
    return {"plans": {str(loop_id): plan.to_dict()
                      for loop_id, plan in plans.items()}}


def _do_recompile(spec):
    jrpm, program, _, _, plans = _profile_artifacts(spec)
    recompiled = jrpm.recompile(program, plans)
    return {"stls": len(plans),
            "recompile_cycles": (recompiled.compile_cycles
                                 if recompiled is not None else 0),
            "plans": {str(loop_id): plan.to_dict()
                      for loop_id, plan in plans.items()}}


def _finish_run(spec, report):
    if spec.options.verify and not report.outputs_match():
        raise AssertionError(
            "%s: speculative output diverged from sequential"
            % spec.name)
    result = {"report": report.to_dict()}
    if report.trace is not None and spec.request_id is not None:
        # The live collector never crosses the wire; export it here so
        # a daemon-served traced run hands the client a Perfetto-ready
        # document with the request span already stitched in.
        from ..trace.export import chrome_trace
        result["chrome_trace"] = chrome_trace(report.trace,
                                              name=spec.name)
    return result


def _stamp_request(jrpm, spec):
    """Correlate the run's trace (if any) with the daemon request."""
    if jrpm.trace is not None and spec.request_id is not None:
        jrpm.trace.request_id = spec.request_id


def _do_run(spec):
    jrpm, program = _jrpm_of(spec)
    _stamp_request(jrpm, spec)
    report = jrpm.run(program, name=spec.name, args=spec.options.args)
    return _finish_run(spec, report)


def _do_run_adaptive(spec):
    jrpm, program = _jrpm_of(spec)
    _stamp_request(jrpm, spec)
    report = jrpm.run_adaptive(program, name=spec.name,
                               args=spec.options.args,
                               policy=spec.options.policy,
                               epochs=spec.options.epochs)
    return _finish_run(spec, report)


def _do_analyze(spec):
    """Static dependence analysis cross-checked against a TEST profile.

    Profiles *without* pruning so every predicted arc can be compared
    against observed arcs; the dynamic selector's verdicts ride along
    so callers can see where static pruning and dynamic selection
    agree.
    """
    jrpm, program = _jrpm_of(spec)
    analysis, profile = jrpm.analyze(program, spec.options.args)
    selector = jrpm.make_selector(profile.loop_table)
    plans = selector.select(profile.stats,
                            profile.profiler.dynamic_nesting)
    selected = {(meta.method_name, meta.ordinal)
                for loop_id, meta in profile.loop_table.items()
                if loop_id in plans}
    loops = []
    for loop in analysis.loops:
        loops.append({
            "method": loop.method,
            "ordinal": loop.ordinal,
            "line": loop.line,
            "classification": loop.classification,
            "pruned": loop.pruned,
            "speedup_bound": loop.speedup_bound,
            "selected": loop.key in selected,
        })
    return {"analysis": analysis.to_dict(),
            "loops": loops,
            "selected": sorted(plans)}


_VERB_TABLE = {
    "compile": _do_compile,
    "profile": _do_profile,
    "select": _do_select,
    "recompile": _do_recompile,
    "run": _do_run,
    "run_adaptive": _do_run_adaptive,
    "analyze": _do_analyze,
}
