"""Shared artifact store: the daemon's warm state.

One store instance is shared by every connection and every scheduler
batch.  It memoizes finished job results — compiled-baseline
measurements, TEST profiles, STL plan sets, full reports — keyed by the
same content-addressed fingerprints as the suite's report cache
(source + options + code version + verb), so a second identical request
is served in microseconds without recompiling anything.

Two tiers:

* an in-memory dict (bounded, LRU eviction) serves the hot path;
* optionally, a persistent :class:`~repro.runner.cache.ReportCache`
  underneath makes ``run``/``run_adaptive`` results survive daemon
  restarts and lets the daemon share warm state with ``jrpm suite``
  (same on-disk format: a payload dict with a ``report`` entry).

Thread-safe: the scheduler thread writes while asyncio handlers read.
"""

import threading
from collections import OrderedDict

from ..metrics import get_registry
from ..runner.cache import code_fingerprint

#: verbs whose results carry a full JrpmReport dict and therefore may
#: ride the persistent on-disk report cache
PERSISTENT_VERBS = ("run", "run_adaptive")


class ArtifactStore:
    """Fingerprint-keyed memo of job results with per-verb counters."""

    def __init__(self, max_entries=512, disk_cache=None):
        self.max_entries = max_entries
        self.disk_cache = disk_cache       # ReportCache / NullCache / None
        self._entries = OrderedDict()      # fingerprint -> result dict
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.hits_by_verb = {}
        self.misses_by_verb = {}
        self._salt = None

    def salt(self):
        """The code-version salt, computed once per daemon."""
        if self._salt is None:
            self._salt = code_fingerprint()
        return self._salt

    def key_of(self, spec):
        """Content-addressed store key for one job spec."""
        return spec.fingerprint(salt=self.salt())

    # -- lookup / insert ---------------------------------------------------
    def get(self, spec, count=True):
        """Memoized result for *spec*, or ``None``.  Counts the verb's
        hit/miss unless ``count=False`` (the scheduler's in-batch
        re-check, which would double-book the submit-time miss).

        Jobs with a profile DB attached always miss: their result
        depends on the DB's mutable cross-run state (a warm report must
        never be replayed to a plain run, and the second run of a
        workload must actually execute to exercise the warm path)."""
        if getattr(spec.options, "profile_db", None):
            if count:
                with self._lock:
                    self._count(spec.verb, hit=False)
            return None
        key = self.key_of(spec)
        with self._lock:
            result = self._entries.get(key)
            if result is not None:
                self._entries.move_to_end(key)
                if count:
                    self._count(spec.verb, hit=True)
                return result
        if self.disk_cache is not None and spec.verb in PERSISTENT_VERBS:
            payload = self.disk_cache.get(key)
            if payload is not None and "report" in payload:
                result = {"report": payload["report"],
                          "wall_time": payload.get("wall_time", 0.0)}
                with self._lock:
                    self._remember(key, result)
                    if count:
                        self._count(spec.verb, hit=True)
                return result
        with self._lock:
            if count:
                self._count(spec.verb, hit=False)
        return None

    def put(self, spec, result):
        """Memoize a finished job's result under its fingerprint.
        Profile-DB-backed jobs are not memoized (see :meth:`get`)."""
        if getattr(spec.options, "profile_db", None):
            return
        key = self.key_of(spec)
        with self._lock:
            self._remember(key, result)
        if self.disk_cache is not None and spec.verb in PERSISTENT_VERBS \
                and "report" in result:
            self.disk_cache.put(key, {
                "workload": spec.name,
                "variant": "service",
                "size": "service",
                "tag": spec.verb,
                "wall_time": result.get("wall_time", 0.0),
                "report": result["report"],
            })

    def _remember(self, key, result):
        self._entries[key] = result
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)

    def _count(self, verb, hit):
        if hit:
            self.hits += 1
            self.hits_by_verb[verb] = self.hits_by_verb.get(verb, 0) + 1
        else:
            self.misses += 1
            self.misses_by_verb[verb] = \
                self.misses_by_verb.get(verb, 0) + 1
        get_registry().counter(
            "jrpm_store_lookups", "Artifact-store lookups by outcome",
            labels=("verb", "outcome")).labels(
                verb=verb, outcome="hit" if hit else "miss").inc()
        get_registry().gauge(
            "jrpm_store_entries", "Artifact-store resident entries").set(
                len(self._entries))

    # -- introspection -----------------------------------------------------
    @property
    def hit_rate(self):
        """Fraction of lookups served from the store."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def stats_dict(self):
        """JSON-safe snapshot of entry/hit/miss counters."""
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": round(self.hit_rate, 4),
                "hits_by_verb": dict(self.hits_by_verb),
                "misses_by_verb": dict(self.misses_by_verb),
                "persistent": self.disk_cache is not None
                              and self.disk_cache.root is not None,
            }
