"""The jrpm service wire protocol: versioned line-delimited JSON.

One request per line, one response per line, UTF-8, ``\\n``-terminated.
Responses carry the request ``id`` so clients may pipeline (write many
requests before reading) — the daemon answers in completion order.

Request::

    {"v": 1, "id": "r1", "verb": "run",
     "payload": {"source": "...", "name": "loop",
                 "options": {... RunOptions.to_dict() ...}}}

Success response::

    {"v": 1, "id": "r1", "ok": true, "cached": false,
     "elapsed": 0.213, "result": {...}}

Error response::

    {"v": 1, "id": "r1", "ok": false,
     "error": {"kind": "timeout", "message": "..."}}

``result`` for ``run``/``run_adaptive`` contains a ``report`` entry —
the lossless ``JrpmReport.to_dict()`` payload, self-describing via its
own ``schema`` field (:data:`repro.serialize.REPORT_SCHEMA_VERSION`).
Error ``kind`` is one of ``bad-request`` | ``error`` | ``crashed`` |
``timeout`` | ``overloaded`` | ``draining`` | ``protocol``.

The protocol version covers only this envelope; mismatches are
rejected with kind ``protocol`` and the supported version echoed back
so clients can fail fast with a clear message.
"""

import json

from ..serialize import REPORT_SCHEMA_VERSION

#: envelope version — bump on any change to the frames documented above
PROTOCOL_VERSION = 1

#: verbs that execute pipeline work (scheduled), plus the control verbs
#: the daemon answers inline
CONTROL_VERBS = ("ping", "stats", "drain", "version", "profdb",
                 "metrics")

#: hard cap on one request line (a 64 MiB line is a bug, not a job)
MAX_LINE_BYTES = 64 * 1024 * 1024


class ProtocolError(ValueError):
    """Malformed frame (bad JSON, wrong version, missing fields)."""


def encode_frame(frame):
    """Serialize one frame to its wire line (bytes, newline-terminated).
    Compact separators: frames are machine-to-machine."""
    return (json.dumps(frame, separators=(",", ":"), sort_keys=True)
            + "\n").encode("utf-8")


def decode_frame(line):
    """Parse one wire line into a frame dict."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError("frame exceeds %d bytes" % MAX_LINE_BYTES)
    try:
        frame = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as error:
        raise ProtocolError("undecodable frame: %s" % error)
    if not isinstance(frame, dict):
        raise ProtocolError("frame must be a JSON object, got %s"
                            % type(frame).__name__)
    return frame


def make_request(request_id, verb, payload=None):
    """A client->daemon frame for one verb invocation."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "verb": verb,
            "payload": payload or {}}


def make_response(request_id, result, cached=False, elapsed=0.0):
    """A success frame carrying the verb's JSON-safe result."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True,
            "cached": cached, "elapsed": round(elapsed, 6),
            "result": result}


def make_error(request_id, kind, message):
    """A failure frame; ``kind`` is the wire error discriminator."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": False,
            "error": {"kind": kind, "message": message}}


def check_request(frame):
    """Validate an incoming request envelope; returns (id, verb,
    payload).  Raises :class:`ProtocolError` with a message that names
    exactly what is wrong."""
    version = frame.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "unsupported protocol version %r (this daemon speaks v%d; "
            "report schema v%d)"
            % (version, PROTOCOL_VERSION, REPORT_SCHEMA_VERSION))
    verb = frame.get("verb")
    if not isinstance(verb, str) or not verb:
        raise ProtocolError("request is missing a verb")
    payload = frame.get("payload", {})
    if not isinstance(payload, dict):
        raise ProtocolError("payload must be a JSON object")
    return frame.get("id"), verb, payload
