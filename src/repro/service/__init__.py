"""The persistent execution service (``jrpm serve``) and its client.

The paper's Jrpm is a *resident* system: one VM that keeps profiling,
selecting and recompiling while programs run.  This package gives the
reproduction the same shape:

* :class:`JrpmServer` (:mod:`repro.service.daemon`) — a long-running
  asyncio daemon owning a shared :class:`ArtifactStore` and a batched
  :class:`JobScheduler` over the crash-isolating worker pool;
* :class:`Session` / :class:`JrpmClient`
  (:mod:`repro.service.client`) — the unified user-facing API;
  ``Session.local()`` for in-process use, ``JrpmClient.connect`` for
  the daemon;
* :class:`RunOptions` (:mod:`repro.service.options`) — the one options
  dataclass replacing the divergent per-call kwargs;
* :mod:`repro.service.protocol` — the versioned line-delimited JSON
  wire format.

See ``docs/service.md`` for protocol, lifecycle and backpressure
semantics.
"""

from .client import JrpmClient, JrpmServiceError, LocalSession, Session
from .daemon import JrpmServer, run_server
from .jobs import VERBS, JobSpec, execute_job, job_fingerprint
from .options import RunOptions, coerce_run_options
from .protocol import PROTOCOL_VERSION, ProtocolError
from .scheduler import (Draining, JobFailed, JobScheduler, QueueFull,
                        ServiceError)
from .stats import LatencyHistogram, ServiceStats
from .store import ArtifactStore

__all__ = ["Session", "JrpmClient", "LocalSession", "JrpmServiceError",
           "JrpmServer", "run_server",
           "RunOptions", "coerce_run_options",
           "JobSpec", "execute_job", "job_fingerprint", "VERBS",
           "JobScheduler", "ServiceError", "JobFailed", "QueueFull",
           "Draining",
           "ArtifactStore", "ServiceStats", "LatencyHistogram",
           "PROTOCOL_VERSION", "ProtocolError"]
