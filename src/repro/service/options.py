"""`RunOptions` — the one options dataclass for every Jrpm surface.

Before this module, each entry point grew its own knob spelling:
``Jrpm.run_adaptive(epochs=...)`` vs ``RunRequest.adapt_epochs`` vs
``--adapt-epochs``; ``Jrpm(trace=...)`` vs ``--trace``; ``--jobs`` on
the suite vs ``jobs=`` on the runner.  :class:`RunOptions` is the
single spelling: the client/session API, the service wire protocol,
the CLI and the suite runner all build their per-subsystem objects
(:class:`~repro.hydra.config.HydraConfig`,
:class:`~repro.jit.stl.StlOptions`,
:class:`~repro.core.pipeline.VmOptions`) from one instance of it.

The legacy kwargs stay accepted everywhere through
:func:`coerce_run_options`, which folds them in with a
``DeprecationWarning`` (see README "Migrating to RunOptions").
"""

import warnings
from dataclasses import dataclass, fields

from ..core.pipeline import VmOptions
from ..hydra.config import HydraConfig, SpeculationOverheads
from ..jit.stl import StlOptions

#: legacy kwarg name -> canonical RunOptions field
LEGACY_ALIASES = {
    "adapt_epochs": "epochs",
    "adapt_policy": "policy",
    "num_cpus": "cpus",
}


@dataclass
class RunOptions:
    """Everything a caller may tune about one pipeline run."""

    # -- simulated hardware --------------------------------------------------
    cpus: int = 4
    old_handlers: bool = False           # paper Table 1 "Old" overheads
    fastpath: bool = True                # predecoded dispatch engine
    scheduler: str = "event"             # TLS scheduler: event | stepwise

    # -- VM-level modifications (paper §5) -----------------------------------
    parallel_allocator: bool = True
    speculation_aware_locks: bool = True

    # -- observability / adaptation ------------------------------------------
    trace: bool = False                  # attach the repro.trace collector
    adapt: bool = False                  # run under the adapt controller
    epochs: int = 4                      # adaptive epochs (was adapt_epochs)
    policy: str = "threshold"            # adaptive policy (was adapt_policy)

    # -- static analysis (repro.analysis) ------------------------------------
    analysis: bool = False               # prune + cross-check statically

    # -- persistent profile DB (repro.profdb) --------------------------------
    profile_db: str = None               # ProfileDb path ("" / None = off)
    warm_start: str = "auto"             # "auto" | "force" | "off"

    # -- run shape -----------------------------------------------------------
    args: tuple = ()                     # guest program arguments
    verify: bool = True                  # assert sequential == TLS output
    timeout: float = None                # per-request seconds (service only)

    def __post_init__(self):
        self.args = tuple(self.args)

    # -- projections to the per-subsystem option objects ---------------------
    def hydra_config(self):
        """The simulated-hardware configuration these options imply."""
        config = HydraConfig(num_cpus=self.cpus, fastpath=self.fastpath,
                             scheduler=self.scheduler)
        if self.old_handlers:
            config.overheads = SpeculationOverheads.old_handlers()
        return config

    def stl_options(self):
        """STL codegen options (currently all defaults)."""
        return StlOptions()

    def vm_options(self):
        """The paper-§5 VM modification switches."""
        return VmOptions(
            parallel_allocator=self.parallel_allocator,
            speculation_aware_locks=self.speculation_aware_locks)

    def make_jrpm(self):
        """A :class:`Jrpm` facade configured from these options."""
        from ..core.pipeline import Jrpm
        return Jrpm(options=self)

    # -- serialization (wire protocol + artifact-store keys) -----------------
    def to_dict(self):
        """JSON-safe dict of every field (wire + cache-key form)."""
        return {f.name: (list(self.args) if f.name == "args"
                         else getattr(self, f.name))
                for f in fields(self)}

    @staticmethod
    def from_dict(data):
        """Strict loader: unknown keys are an error (a typo'd option
        silently ignored would produce a wrong-but-plausible run)."""
        known = {f.name for f in fields(RunOptions)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                "unknown RunOptions field(s): %s (known: %s)"
                % (", ".join(sorted(unknown)), ", ".join(sorted(known))))
        return RunOptions(**data)


def coerce_run_options(options=None, _stacklevel=3, **legacy):
    """Build the effective :class:`RunOptions` for a legacy call site.

    ``options`` wins when given; any non-``None`` legacy kwarg is folded
    into a copy with a :class:`DeprecationWarning` naming the canonical
    spelling.  Used by the ``Jrpm`` facade, the CLI and
    ``SuiteRunner.run_suite`` so old callers keep working for one
    release.
    """
    effective = RunOptions(**options.to_dict()) if options is not None \
        else RunOptions()
    for name, value in legacy.items():
        if value is None:
            continue
        canonical = LEGACY_ALIASES.get(name, name)
        if canonical not in {f.name for f in fields(RunOptions)}:
            raise TypeError("unknown option %r" % (name,))
        if name in LEGACY_ALIASES:
            warnings.warn(
                "%s= is deprecated; use RunOptions(%s=...)"
                % (name, canonical), DeprecationWarning,
                stacklevel=_stacklevel)
        setattr(effective, canonical, value)
    effective.args = tuple(effective.args)
    return effective
