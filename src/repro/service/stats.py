"""Service observability: per-verb latency histograms + counters.

The ``stats`` verb returns one JSON document assembled here: queue
depth and worker occupancy from the scheduler, hit rates from the
artifact store, per-verb latency percentiles from
:class:`LatencyHistogram`, and a roll-up of the PR-2
:class:`~repro.trace.TraceAggregates` counters accumulated across every
traced report the daemon served.

Since PR-10 the histogram implementation lives in
:class:`repro.metrics.registry.Histogram` (deque reservoir — O(1)
wrap where the old list used ``pop(0)``); :class:`LatencyHistogram`
is the service-facing subclass that keeps the original wire shape.
:meth:`ServiceStats.observe` additionally mirrors every request into
the process-global metrics registry so the ``metrics`` verb and the
``/metrics`` endpoint expose ``jrpm_service_*`` families.
"""

import threading
import time

from ..metrics import get_registry
from ..metrics.registry import Histogram


class LatencyHistogram(Histogram):
    """Log-bucketed latency histogram (seconds) with exact percentiles
    for small populations.

    Buckets double from 100µs to ~200s; the raw samples are also kept
    (bounded deque reservoir, newest-wins) so p50/p95 stay exact for
    the population sizes a daemon realistically sees between restarts.
    """

    BOUNDS = tuple(0.0001 * (2 ** i) for i in range(22))
    MAX_SAMPLES = 4096

    def __init__(self):
        super().__init__(threading.RLock(), bounds=self.BOUNDS,
                         max_samples=self.MAX_SAMPLES)

    def to_dict(self):
        """JSON-safe summary (count, mean, max, p50/p95) — the PR-6
        ``stats``-verb wire shape, unchanged."""
        with self._lock:
            return {
                "count": self.count,
                "mean": round(self.mean, 6),
                "p50": round(self.percentile_unlocked(0.50), 6),
                "p95": round(self.percentile_unlocked(0.95), 6),
                "max": round(self.max, 6),
                "buckets": list(self.buckets),
            }


class ServiceStats:
    """Daemon-wide counters; thread-safe (asyncio handlers + scheduler
    callbacks record concurrently)."""

    def __init__(self):
        self.started_at = time.time()
        self._monotonic_start = time.perf_counter()
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.by_verb = {}               # verb -> LatencyHistogram
        self.trace_rollup = None        # TraceAggregates or None

    def observe(self, verb, seconds, ok=True):
        """Account one finished request under its verb."""
        with self._lock:
            self.requests += 1
            if not ok:
                self.errors += 1
            histogram = self.by_verb.get(verb)
            if histogram is None:
                histogram = self.by_verb[verb] = LatencyHistogram()
            histogram.record(seconds)
        registry = get_registry()
        registry.counter(
            "jrpm_service_requests", "Service requests by verb/outcome",
            labels=("verb", "outcome")).labels(
                verb=verb, outcome="ok" if ok else "error").inc()
        registry.histogram(
            "jrpm_service_request_seconds",
            "Request wall-clock latency by verb",
            labels=("verb",)).labels(verb=verb).record(seconds)

    def absorb_report(self, report_dict):
        """Fold a served report's trace aggregates into the daemon-wide
        roll-up (the PR-2 counters, accumulated across requests)."""
        aggregates = report_dict.get("trace_aggregates")
        if not aggregates:
            return
        from ..trace import TraceAggregates
        with self._lock:
            if self.trace_rollup is None:
                self.trace_rollup = TraceAggregates(capacity=0)
            self.trace_rollup.merge(TraceAggregates.from_dict(aggregates))

    def to_dict(self):
        """JSON-safe snapshot of the whole service's accounting."""
        with self._lock:
            return {
                "uptime": round(time.perf_counter()
                                - self._monotonic_start, 3),
                "started_at": self.started_at,
                "requests": self.requests,
                "errors": self.errors,
                "latency_by_verb": {verb: histogram.to_dict()
                                    for verb, histogram
                                    in self.by_verb.items()},
                "trace": (self.trace_rollup.to_dict()
                          if self.trace_rollup is not None else None),
            }
