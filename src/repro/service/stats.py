"""Service observability: per-verb latency histograms + counters.

The ``stats`` verb returns one JSON document assembled here: queue
depth and worker occupancy from the scheduler, hit rates from the
artifact store, per-verb latency percentiles from
:class:`LatencyHistogram`, and a roll-up of the PR-2
:class:`~repro.trace.TraceAggregates` counters accumulated across every
traced report the daemon served.
"""

import bisect
import threading
import time


class LatencyHistogram:
    """Log-bucketed latency histogram (seconds) with exact percentiles
    for small populations.

    Buckets double from 100µs to ~200s; the raw samples are also kept
    (bounded reservoir, newest-wins) so p50/p95 stay exact for the
    population sizes a daemon realistically sees between restarts.
    """

    BOUNDS = tuple(0.0001 * (2 ** i) for i in range(22))
    MAX_SAMPLES = 4096

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets = [0] * (len(self.BOUNDS) + 1)
        self._samples = []

    def record(self, seconds):
        """Fold one latency sample into the histogram."""
        self.count += 1
        self.total += seconds
        if seconds > self.max:
            self.max = seconds
        self.buckets[bisect.bisect_right(self.BOUNDS, seconds)] += 1
        if len(self._samples) >= self.MAX_SAMPLES:
            self._samples.pop(0)
        self._samples.append(seconds)

    def percentile(self, fraction):
        """Latency at the given fraction (0..1) of the sample window."""
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        index = min(len(ordered) - 1,
                    max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def mean(self):
        """Average latency over every recorded sample."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        """JSON-safe summary (count, mean, max, p50/p90/p99)."""
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "p50": round(self.percentile(0.50), 6),
            "p95": round(self.percentile(0.95), 6),
            "max": round(self.max, 6),
            "buckets": list(self.buckets),
        }


class ServiceStats:
    """Daemon-wide counters; thread-safe (asyncio handlers + scheduler
    callbacks record concurrently)."""

    def __init__(self):
        self.started_at = time.time()
        self._monotonic_start = time.perf_counter()
        self._lock = threading.Lock()
        self.requests = 0
        self.errors = 0
        self.by_verb = {}               # verb -> LatencyHistogram
        self.trace_rollup = None        # TraceAggregates or None

    def observe(self, verb, seconds, ok=True):
        """Account one finished request under its verb."""
        with self._lock:
            self.requests += 1
            if not ok:
                self.errors += 1
            histogram = self.by_verb.get(verb)
            if histogram is None:
                histogram = self.by_verb[verb] = LatencyHistogram()
            histogram.record(seconds)

    def absorb_report(self, report_dict):
        """Fold a served report's trace aggregates into the daemon-wide
        roll-up (the PR-2 counters, accumulated across requests)."""
        aggregates = report_dict.get("trace_aggregates")
        if not aggregates:
            return
        from ..trace import TraceAggregates
        with self._lock:
            if self.trace_rollup is None:
                self.trace_rollup = TraceAggregates(capacity=0)
            self.trace_rollup.merge(TraceAggregates.from_dict(aggregates))

    def to_dict(self):
        """JSON-safe snapshot of the whole service's accounting."""
        with self._lock:
            return {
                "uptime": round(time.perf_counter()
                                - self._monotonic_start, 3),
                "started_at": self.started_at,
                "requests": self.requests,
                "errors": self.errors,
                "latency_by_verb": {verb: histogram.to_dict()
                                    for verb, histogram
                                    in self.by_verb.items()},
                "trace": (self.trace_rollup.to_dict()
                          if self.trace_rollup is not None else None),
            }
