"""The unified user-facing API: one ``Session``, two transports.

:class:`Session` is the abstraction every caller programs against —
the five pipeline verbs plus ``run``/``run_adaptive``, each taking one
:class:`~repro.service.options.RunOptions`:

* ``Session.local()`` executes in-process (no daemon, no sockets) with
  an optional in-memory artifact store — a drop-in replacement for
  constructing :class:`~repro.core.pipeline.Jrpm` by hand, with
  byte-identical reports;
* ``JrpmClient.connect(...)`` speaks the line-delimited JSON protocol
  to a ``jrpm serve`` daemon and shares its warm artifact store with
  every other client.

Both return the same shapes: ``run``/``run_adaptive`` yield a live
:class:`~repro.core.pipeline.JrpmReport`; the stage verbs yield the
JSON-safe result dicts documented in :mod:`repro.service.jobs`.
"""

import itertools
import socket

from ..core.pipeline import JrpmReport
from . import protocol
from .jobs import JobSpec, execute_job
from .options import RunOptions
from .store import ArtifactStore


class JrpmServiceError(RuntimeError):
    """A request failed; ``kind`` mirrors the wire error discriminator
    (``timeout`` | ``crashed`` | ``error`` | ``overloaded`` |
    ``draining`` | ``bad-request`` | ``protocol``)."""

    def __init__(self, kind, message):
        self.kind = kind
        super().__init__("[%s] %s" % (kind, message))


def _resolve_source(source, workload, size, variant, name):
    """(source text, report name) from either an inline source or a
    registry workload reference — shared by the local session (the
    daemon does the same resolution server-side)."""
    if source is not None:
        return source, name or "program"
    if workload is None:
        raise ValueError("need either source= or workload=")
    from ..workloads import lookup
    entry = lookup(workload)
    if variant == "manual":
        text = entry.manual_source(size)
        if text is None:
            raise ValueError("%s has no manual variant" % entry.name)
    else:
        text = entry.source(size)
    return text, name or entry.name


class Session:
    """Verb surface shared by local and remote sessions."""

    @staticmethod
    def local(store=None, use_store=True):
        """In-process session.  ``use_store=False`` disables
        memoization entirely (every call recomputes)."""
        return LocalSession(store=store, use_store=use_store)

    @staticmethod
    def connect(socket_path=None, host="127.0.0.1", port=None,
                timeout=600.0):
        """Session backed by a running ``jrpm serve`` daemon."""
        return JrpmClient.connect(socket_path=socket_path, host=host,
                                  port=port, timeout=timeout)

    # -- the verb surface --------------------------------------------------
    def compile(self, source=None, **kwargs):
        """Step 1 only: baseline compile + sequential measurement."""
        return self._job("compile", source, kwargs)

    def profile(self, source=None, **kwargs):
        """Steps 1-3: TEST profile with per-loop selector verdicts."""
        return self._job("profile", source, kwargs)

    def select(self, source=None, **kwargs):
        """Steps 1-3, returning just the selected decomposition plans."""
        return self._job("select", source, kwargs)

    def recompile(self, source=None, **kwargs):
        """Steps 1-4: recompile the selected loops into STLs."""
        return self._job("recompile", source, kwargs)

    def run(self, source=None, **kwargs):
        """The whole pipeline; returns a live :class:`JrpmReport`."""
        return self._report_of(self._job("run", source, kwargs))

    def run_adaptive(self, source=None, **kwargs):
        """The pipeline under the epoch-based adaptive controller."""
        return self._report_of(
            self._job("run_adaptive", source, kwargs))

    def analyze(self, source=None, **kwargs):
        """Static dependence analysis cross-checked against a TEST
        profile; returns the JSON-safe dict from
        :func:`repro.service.jobs._do_analyze` (``analysis`` payload +
        per-loop selection agreement)."""
        return self._job("analyze", source, kwargs)

    # -- introspection -----------------------------------------------------
    def version(self):
        """Package/protocol/schema versions of the executing side."""
        raise NotImplementedError

    def profdb(self, op="stats", path=None, **payload):
        """Inspect or maintain a persistent profile DB: ``op`` is
        ``stats`` (summary counters), ``export`` (the full validated
        payload) or ``gc`` (evict beyond the size caps, which may be
        tightened via ``max_programs=``/``max_inputs=``)."""
        raise NotImplementedError

    def metrics(self, format="json"):
        """The executing side's metrics registry: ``format="json"``
        returns the lossless ``MetricsRegistry.to_dict`` payload under
        ``"metrics"``; ``format="openmetrics"`` returns the Prometheus
        text exposition under ``"openmetrics"``."""
        raise NotImplementedError

    @staticmethod
    def _report_of(result):
        return JrpmReport.from_dict(result["report"])

    @staticmethod
    def _split_kwargs(kwargs):
        shape = {key: kwargs.pop(key, default) for key, default in
                 (("workload", None), ("size", "default"),
                  ("variant", "base"), ("name", None))}
        options = kwargs.pop("options", None) or RunOptions()
        if kwargs:
            raise TypeError("unexpected keyword argument(s): %s "
                            "(run shape belongs in RunOptions)"
                            % ", ".join(sorted(kwargs)))
        return shape, options

    def _job(self, verb, source, kwargs):
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------
    def close(self):
        """Release transport resources (a no-op for local sessions)."""
        pass

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


class LocalSession(Session):
    """Executes jobs in-process; memoizes in an ArtifactStore."""

    def __init__(self, store=None, use_store=True):
        self.store = (store if store is not None
                      else ArtifactStore()) if use_store else None

    def _job(self, verb, source, kwargs):
        shape, options = self._split_kwargs(dict(kwargs))
        text, name = _resolve_source(source, shape["workload"],
                                     shape["size"], shape["variant"],
                                     shape["name"])
        spec = JobSpec(verb=verb, source=text, name=name,
                       options=options)
        if self.store is not None:
            cached = self.store.get(spec)
            if cached is not None:
                return cached
        result = execute_job(spec)
        if self.store is not None:
            self.store.put(spec, result)
        return result

    def stats(self):
        """Store hit/miss accounting (shape mirrors the daemon's)."""
        return {"local": True,
                "store": (self.store.stats_dict()
                          if self.store is not None else None)}

    def version(self):
        """Version identity of this in-process build."""
        from .. import package_version
        from ..profdb import PROFDB_SCHEMA_VERSION
        from ..serialize import REPORT_SCHEMA_VERSION
        return {"version": package_version(),
                "protocol": protocol.PROTOCOL_VERSION,
                "report_schema": REPORT_SCHEMA_VERSION,
                "profdb_schema": PROFDB_SCHEMA_VERSION}

    def metrics(self, format="json"):
        """This process's global metrics registry (the same families a
        daemon would expose — LocalSession jobs fold into it too)."""
        from ..metrics import get_registry, render
        registry = get_registry()
        if format == "openmetrics":
            return {"openmetrics": render(registry)}
        if format == "json":
            return {"metrics": registry.to_dict()}
        raise ValueError("unknown metrics format %r (json, openmetrics)"
                         % (format,))

    def profdb(self, op="stats", path=None, **payload):
        """Operate on the profile DB at *path* (default location when
        omitted) without a daemon."""
        from ..profdb import ProfileDb
        db = ProfileDb(path)
        if op == "stats":
            return {"profdb": db.stats_dict()}
        if op == "export":
            return {"profdb": db.export()}
        if op == "gc":
            evicted = db.gc(max_programs=payload.get("max_programs"),
                            max_inputs=payload.get("max_inputs"))
            return {"evicted": evicted, "profdb": db.stats_dict()}
        raise ValueError("unknown profdb op %r (stats, export, gc)"
                         % (op,))


class JrpmClient(Session):
    """Synchronous socket client for the daemon.

    Supports pipelining: :meth:`request_many` writes every request
    before reading any response, so the daemon sees the whole burst at
    once and its scheduler batches (and coalesces) it.
    """

    def __init__(self, sock):
        self._sock = sock
        self._file = sock.makefile("rb")
        self._ids = itertools.count(1)

    @classmethod
    def connect(cls, socket_path=None, host="127.0.0.1", port=None,
                timeout=600.0):
        """Open a client over a unix socket *or* TCP (exactly one)."""
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path/port required")
        if socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(timeout)
            sock.connect(socket_path)
        else:
            sock = socket.create_connection((host, port),
                                            timeout=timeout)
        return cls(sock)

    # -- wire --------------------------------------------------------------
    def _next_id(self):
        return "c%d" % next(self._ids)

    def _send(self, frame):
        self._sock.sendall(protocol.encode_frame(frame))

    def _recv(self):
        line = self._file.readline()
        if not line:
            raise JrpmServiceError(
                "protocol", "connection closed by daemon")
        return protocol.decode_frame(line)

    @staticmethod
    def _result_of(response):
        if response.get("ok"):
            return response["result"]
        error = response.get("error") or {}
        raise JrpmServiceError(error.get("kind", "error"),
                               error.get("message", "request failed"))

    def request(self, verb, payload=None):
        """One request/response round-trip; returns the result dict."""
        request_id = self._next_id()
        self._send(protocol.make_request(request_id, verb, payload))
        response = self._recv()
        # responses come back in completion order; a lone request can
        # only be answered by its own id
        return self._result_of(response)

    def request_many(self, requests):
        """Pipeline ``[(verb, payload), ...]``; returns ``(result-or-
        JrpmServiceError, cached, elapsed)`` tuples in request order."""
        ids = []
        for verb, payload in requests:
            request_id = self._next_id()
            ids.append(request_id)
            self._send(protocol.make_request(request_id, verb, payload))
        answers = {}
        while len(answers) < len(ids):
            response = self._recv()
            answers[response.get("id")] = response
        settled = []
        for request_id in ids:
            response = answers[request_id]
            try:
                result = self._result_of(response)
            except JrpmServiceError as error:
                settled.append((error, False, 0.0))
            else:
                settled.append((result, response.get("cached", False),
                                response.get("elapsed", 0.0)))
        return settled

    # -- verbs -------------------------------------------------------------
    def _job(self, verb, source, kwargs):
        return self.request(verb, self._payload(source, dict(kwargs)))

    def _payload(self, source, kwargs):
        shape, options = self._split_kwargs(kwargs)
        payload = {"options": options.to_dict()}
        if source is not None:
            payload["source"] = source
        if shape["workload"] is not None:
            payload["workload"] = shape["workload"]
        if shape["name"] is not None:
            payload["name"] = shape["name"]
        if shape["size"] != "default":
            payload["size"] = shape["size"]
        if shape["variant"] != "base":
            payload["variant"] = shape["variant"]
        return payload

    def job_payload(self, source=None, **kwargs):
        """Public payload builder (used with :meth:`request_many`)."""
        return self._payload(source, kwargs)

    def ping(self):
        """Liveness check; returns the daemon's identity payload."""
        return self.request("ping")

    def stats(self):
        """The daemon's live accounting (queue, store, latencies)."""
        return self.request("stats")

    def drain(self):
        """Ask the daemon to finish everything in flight and shut
        down; returns its final accounting."""
        return self.request("drain")

    def version(self):
        """The daemon's package/protocol/schema versions."""
        return self.request("version")

    def metrics(self, format="json"):
        """The daemon's metrics registry (see :class:`Session`)."""
        return self.request("metrics", {"format": format})

    def profdb(self, op="stats", path=None, **payload):
        """Operate on the daemon's shared profile DB (or the one at
        *path*): ``stats`` / ``export`` / ``gc``."""
        request = {"op": op}
        if path:
            request["path"] = path
        request.update(payload)
        return self.request("profdb", request)

    def close(self):
        """Close the socket (the daemon keeps running)."""
        try:
            self._file.close()
        finally:
            self._sock.close()
