"""Structured logging for the ``repro.*`` tree.

Every module logs through ``logging.getLogger("repro.<area>")`` (the
stdlib hierarchy — ``repro.service``, ``repro.runner``,
``repro.profdb``...).  Nothing is emitted unless :func:`configure` has
installed a handler, so library use stays silent by default; the CLI
and daemon call it at startup:

* ``jrpm --log-level debug ...`` wires the flag through;
* the ``JRPM_LOG`` environment variable supplies a default level when
  the flag is absent (useful for the daemon under a supervisor and for
  worker processes, which inherit the environment).

The format is one line per record with an ISO-ish timestamp, level,
logger name and message — grep-able, and stable enough to ship to a
collector.
"""

import logging
import os

#: Environment variable consulted when no explicit level is passed.
ENV_VAR = "JRPM_LOG"

#: Log line layout installed by :func:`configure`.
FORMAT = "%(asctime)s %(levelname)-7s %(name)s: %(message)s"

_configured = False


def get_logger(name):
    """``logging.getLogger`` under the ``repro`` hierarchy.

    ``get_logger("service.daemon")`` returns the ``repro.service.daemon``
    logger; a fully-qualified ``repro.*`` name passes through as-is.
    """
    if not name.startswith("repro"):
        name = "repro." + name
    return logging.getLogger(name)


def configure(level=None, stream=None, force=False):
    """Install one stderr handler on the ``repro`` root logger.

    *level* may be a name (``"debug"``), a numeric level, or None — in
    which case :data:`ENV_VAR` is consulted and, failing that, WARNING
    is used.  Idempotent: repeat calls only adjust the level unless
    *force* re-installs the handler (tests use this with a fresh
    *stream*).  Returns the effective numeric level.
    """
    global _configured
    resolved = _resolve_level(level)
    root = logging.getLogger("repro")
    if force:
        for handler in list(root.handlers):
            root.removeHandler(handler)
        _configured = False
    if not _configured:
        handler = logging.StreamHandler(stream)
        handler.setFormatter(logging.Formatter(FORMAT))
        root.addHandler(handler)
        root.propagate = False
        _configured = True
    root.setLevel(resolved)
    return resolved


def _resolve_level(level):
    """Numeric logging level from a name / number / None."""
    if level is None:
        level = os.environ.get(ENV_VAR) or "warning"
    if isinstance(level, int):
        return level
    name = str(level).strip().upper()
    if name.isdigit():
        return int(name)
    resolved = logging.getLevelName(name)
    if not isinstance(resolved, int):
        raise ValueError("unknown log level: %r" % (level,))
    return resolved
