"""Adaptive recompilation: the epoch-based feedback controller.

The one-shot pipeline (:meth:`Jrpm.run`) trusts the TEST profile
forever; this subsystem closes the loop between execution telemetry and
compilation decisions.  See :mod:`repro.adapt.controller` for the
measure -> decide -> recompile cycle, :mod:`repro.adapt.policy` for the
pluggable decision policies, :mod:`repro.adapt.epochs` for realized
per-STL telemetry, and :mod:`repro.adapt.log` for the serialized
decision log (``docs/adaptation.md`` has the full design).
"""

from .controller import AdaptController
from .epochs import EpochTelemetry, StlObservation, observe_epoch
from .log import (ACTION_DECOMMIT, ACTION_LOCK_ESCALATE, ACTION_PROMOTE,
                  ACTIONS, AdaptDecision, AdaptationLog, EpochRecord,
                  validate_log_dict)
from .policy import (POLICIES, AdaptPolicy, AdaptState, NullPolicy,
                     ThresholdPolicy, make_policy)

__all__ = [
    "ACTIONS", "ACTION_DECOMMIT", "ACTION_LOCK_ESCALATE",
    "ACTION_PROMOTE", "AdaptController", "AdaptDecision", "AdaptPolicy",
    "AdaptState", "AdaptationLog", "EpochRecord", "EpochTelemetry",
    "NullPolicy", "POLICIES", "StlObservation", "ThresholdPolicy",
    "make_policy", "observe_epoch", "validate_log_dict",
]
