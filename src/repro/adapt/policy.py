"""Pluggable adaptation policies: telemetry in, decisions out.

A policy is a pure function of :class:`~repro.adapt.epochs
.EpochTelemetry` and the controller's :class:`AdaptState` — it never
touches the compiler, so it is unit-testable with fabricated telemetry
(the hysteresis tests do exactly that).  The controller applies the
returned :class:`~repro.adapt.log.AdaptDecision` proposals: decommits
prune the plan set, lock escalations synthesize a
:class:`~repro.tracer.selector.SyncPlan` through the selector hook, and
(policy permitting) promotions re-select previously conflicting
candidates.

Hysteresis: every decision stamps ``state.last_action_epoch[loop]``;
:class:`ThresholdPolicy` refuses to touch the same STL again within
``cooldown`` epochs, so oscillating statistics cannot thrash a loop
between committed and decommitted states.
"""

from dataclasses import dataclass, field

from .epochs import EpochTelemetry, StlObservation  # noqa: F401 (re-export)
from .log import ACTION_DECOMMIT, ACTION_LOCK_ESCALATE, AdaptDecision


@dataclass
class AdaptState:
    """Mutable controller state the policy may consult."""

    plans: dict = field(default_factory=dict)      # loop_id -> StlPlan
    banned: set = field(default_factory=set)       # decommitted loop ids
    last_action_epoch: dict = field(default_factory=dict)

    def in_cooldown(self, loop_id, epoch, cooldown):
        last = self.last_action_epoch.get(loop_id)
        return last is not None and (epoch - last) < cooldown

    def stamp(self, loop_id, epoch):
        self.last_action_epoch[loop_id] = epoch


class AdaptPolicy:
    """Base policy: observe an epoch, propose plan-set changes."""

    name = "base"
    #: whether the controller may promote unblocked candidates after a
    #: decommit (see AdaptController._promote)
    promote = False
    #: hysteresis window consulted by the controller for promotions too
    cooldown = 1

    def params(self):
        """JSON-safe knob dict (rides cache keys and the adapt log)."""
        return {}

    def decide(self, telemetry, state):
        """Return a list of :class:`AdaptDecision` proposals."""
        raise NotImplementedError


class NullPolicy(AdaptPolicy):
    """Never adapts — the one-shot A/B baseline."""

    name = "null"

    def decide(self, telemetry, state):
        return []


class ThresholdPolicy(AdaptPolicy):
    """The default controller policy: fixed thresholds + cooldown.

    * **decommit** when realized speedup < ``decommit_threshold``
      (default 1.0: the STL ran slower than sequential code would);
    * **lock-escalate** when RAW violations per committed thread exceed
      ``violation_cutoff`` on a plan that has no synchronizing lock yet
      (§4.2.4: protect the dependence instead of violating on it);
    * a loop acted on at epoch *e* is left alone until epoch
      ``e + cooldown`` (hysteresis), and a loop needs at least
      ``min_threads`` committed threads before it is judged at all.
    """

    name = "threshold"
    promote = True

    def __init__(self, decommit_threshold=1.0, violation_cutoff=0.25,
                 cooldown=1, min_threads=1, promote=True):
        self.decommit_threshold = float(decommit_threshold)
        self.violation_cutoff = float(violation_cutoff)
        self.cooldown = max(1, int(cooldown))
        self.min_threads = max(0, int(min_threads))
        self.promote = bool(promote)

    def params(self):
        return {"decommit_threshold": self.decommit_threshold,
                "violation_cutoff": self.violation_cutoff,
                "cooldown": self.cooldown,
                "min_threads": self.min_threads,
                "promote": self.promote}

    def decide(self, telemetry, state):
        decisions = []
        for loop_id in sorted(telemetry.per_stl):
            observation = telemetry.per_stl[loop_id]
            plan = state.plans.get(loop_id)
            if plan is None:
                continue
            if state.in_cooldown(loop_id, telemetry.epoch, self.cooldown):
                continue
            realized = observation.realized_speedup
            if realized is None \
                    or observation.threads_committed < self.min_threads:
                continue    # not enough evidence yet — withhold
            if realized < self.decommit_threshold:
                decisions.append(AdaptDecision(
                    epoch=telemetry.epoch, loop_id=loop_id,
                    action=ACTION_DECOMMIT,
                    evidence={
                        "realized_speedup": round(realized, 4),
                        "predicted_speedup": round(
                            observation.predicted_speedup, 4),
                        "threshold": self.decommit_threshold,
                        "wall_cycles": observation.wall_cycles,
                        "work_cycles": observation.work_cycles,
                        "violations": observation.violations,
                        "restarts": observation.restarts,
                        "overflow_stalls": observation.overflow_stalls,
                    }))
            elif observation.violation_frequency > self.violation_cutoff \
                    and plan.sync is None:
                decisions.append(AdaptDecision(
                    epoch=telemetry.epoch, loop_id=loop_id,
                    action=ACTION_LOCK_ESCALATE,
                    evidence={
                        "violation_frequency": round(
                            observation.violation_frequency, 4),
                        "cutoff": self.violation_cutoff,
                        "violations": observation.violations,
                        "restarts": observation.restarts,
                        "realized_speedup": round(realized, 4),
                    }))
        return decisions


#: CLI / RunRequest registry: ``--policy`` names map here.
POLICIES = {
    ThresholdPolicy.name: ThresholdPolicy,
    NullPolicy.name: NullPolicy,
}


def make_policy(name="threshold", **knobs):
    """Instantiate a registered policy, ignoring knobs it does not
    accept (so the CLI can pass every flag unconditionally) and knobs
    whose value is ``None`` (flag not given)."""
    try:
        factory = POLICIES[name]
    except KeyError:
        raise ValueError("unknown adapt policy %r (have: %s)"
                         % (name, ", ".join(sorted(POLICIES))))
    import inspect
    accepted = set(inspect.signature(factory.__init__).parameters)
    kwargs = {key: value for key, value in knobs.items()
              if value is not None and key in accepted}
    return factory(**kwargs)
