"""The adaptive recompilation controller (measure -> decide -> recompile).

Jrpm's defining claim is that parallelization decisions are *dynamic*:
TEST predictions steer the initial STL selection, but the deployed
system must react when measured behaviour diverges from prediction.
:class:`AdaptController` closes that loop.  It runs the program in
**epochs** — one speculative execution per epoch — and between epochs:

1. builds :class:`~repro.adapt.epochs.EpochTelemetry` from the always-on
   per-STL run statistics (realized speedup, violation frequency,
   buffer high-water marks);
2. asks the pluggable :class:`~repro.adapt.policy.AdaptPolicy` for
   decisions;
3. applies them — **decommit** reverts a mispredicted loop to
   sequential execution via :meth:`Jrpm.recompile` with a pruned plan
   set, **lock-escalate** synthesizes a
   :class:`~repro.tracer.selector.SyncPlan` through the selector hook
   and re-recompiles, and **promote** re-runs selection with the
   decommitted loops banned so previously conflicting candidates get
   their chance;
4. records everything in the :class:`~repro.adapt.log.AdaptationLog`
   that rides the final :class:`~repro.core.pipeline.JrpmReport`.

Hysteresis lives in the policy (per-loop cooldown stamps in
:class:`~repro.adapt.policy.AdaptState`), and the banned set only ever
grows, so the plan set converges instead of thrashing.
"""

from .epochs import observe_epoch
from .log import (ACTION_DECOMMIT, ACTION_LOCK_ESCALATE, ACTION_PROMOTE,
                  AdaptDecision, AdaptationLog, EpochRecord)
from .policy import AdaptState, ThresholdPolicy


class AdaptController:
    """Drives one adaptive run of one program on one :class:`Jrpm`."""

    def __init__(self, jrpm, policy=None, epochs=4,
                 stop_on_converged=True, verify=False):
        self.jrpm = jrpm
        self.policy = policy if policy is not None else ThresholdPolicy()
        self.epochs = max(1, int(epochs))
        self.stop_on_converged = stop_on_converged
        self.verify = verify

    # -- main loop -----------------------------------------------------------
    def run(self, source_or_program, name="program", args=()):
        """Full adaptive pipeline; returns a JrpmReport whose
        ``adaptation`` attribute is the epoch/decision log."""
        jrpm = self.jrpm
        program = jrpm._program_of(source_or_program)
        baseline = jrpm.compile_baseline(program, args)
        profile_artifact = jrpm.profile(program, args)
        selector = jrpm.make_selector(profile_artifact.loop_table)
        profile_stats = profile_artifact.stats
        nesting = profile_artifact.profiler.dynamic_nesting

        state = AdaptState(
            plans=dict(selector.select(profile_stats, nesting)))
        log = AdaptationLog(name=name, policy=self.policy.name,
                            policy_params=self.policy.params())

        recompiled = jrpm.recompile(program, state.plans)
        if recompiled is not None:
            log.recompile_cycles += recompiled.compile_cycles

        tls_artifact = None
        pending = []            # decisions awaiting next-epoch cycles
        last_decision_epoch = -1
        for epoch in range(self.epochs):
            tls_artifact = jrpm.execute_tls(
                recompiled, state.plans, args,
                fallback=baseline.measurement)
            telemetry = observe_epoch(epoch, state.plans, tls_artifact,
                                      jrpm.config)
            if self.verify:
                self._check_outputs(name, epoch, baseline, tls_artifact)
            for decision in pending:
                decision.after_cycles = telemetry.cycles
            pending = []

            decisions = []
            if epoch < self.epochs - 1:     # nothing left to apply to
                decisions = self.policy.decide(telemetry, state)
                decisions = self._apply(decisions, state, selector,
                                        profile_stats, nesting, epoch)
            for decision in decisions:
                decision.before_cycles = telemetry.cycles
                if decision.applied:
                    pending.append(decision)

            log.record_epoch(self._epoch_record(telemetry, state),
                             decisions)
            self._emit_trace(telemetry, decisions)

            if any(d.applied for d in decisions):
                last_decision_epoch = epoch
                recompiled = jrpm.recompile(program, state.plans)
                if recompiled is not None:
                    log.recompile_cycles += recompiled.compile_cycles
            elif self.stop_on_converged:
                break

        log.converged_epoch = last_decision_epoch + 1
        report = jrpm.assemble_report(name, baseline, profile_artifact,
                                      state.plans, tls_artifact)
        report.recompile_cycles = log.recompile_cycles \
            or report.recompile_cycles
        report.adaptation = log
        return report

    # -- decision application --------------------------------------------------
    def _apply(self, decisions, state, selector, profile_stats, nesting,
               epoch):
        """Mutate the plan set per the policy's proposals; returns the
        decision list (promotions appended, failures marked)."""
        applied = list(decisions)
        decommitted_now = []
        for decision in applied:
            plan = state.plans.get(decision.loop_id)
            if plan is None:
                decision.applied = False
                decision.evidence["skipped"] = "loop no longer planned"
                continue
            if decision.action == ACTION_DECOMMIT:
                self._decommit(decision, plan, state, epoch)
                decommitted_now.append(decision.loop_id)
            elif decision.action == ACTION_LOCK_ESCALATE:
                self._lock_escalate(decision, plan, state, selector,
                                    profile_stats, epoch)
            else:
                decision.applied = False
                decision.evidence["skipped"] = (
                    "policy proposed unknown action %r" % decision.action)
        if decommitted_now and getattr(self.policy, "promote", False):
            applied.extend(self._promote(state, selector, profile_stats,
                                         nesting, decommitted_now, epoch))
        return applied

    def _decommit(self, decision, plan, state, epoch):
        """Revert the loop (and its dependent multilevel inners) to
        sequential execution."""
        plan.decommitted = True
        del state.plans[decision.loop_id]
        dropped = [loop_id for loop_id, inner in state.plans.items()
                   if inner.multilevel_parent == decision.loop_id]
        for loop_id in dropped:
            state.plans[loop_id].decommitted = True
            del state.plans[loop_id]
        if dropped:
            decision.evidence["dropped_multilevel_inner"] = dropped
        decision.evidence["plan"] = plan.to_dict()
        state.banned.add(decision.loop_id)
        state.stamp(decision.loop_id, epoch)

    def _lock_escalate(self, decision, plan, state, selector,
                       profile_stats, epoch):
        """Protect the dominant dependence with a thread synchronizing
        lock (paper §4.2.4), bypassing the profile-time admission
        thresholds — observed violations already proved forwarding does
        not resolve the arc."""
        stats = profile_stats.get(decision.loop_id)
        sync = None
        if stats is not None:
            sync = selector.synthesize_sync(stats, plan.prediction,
                                            force=True)
        if sync is None:
            decision.applied = False
            decision.evidence["skipped"] = \
                "no dependence arc recorded by TEST"
            return
        plan.sync = sync
        plan.sync_escalated = True
        decision.evidence["arc_frequency"] = round(sync.arc_frequency, 4)
        decision.evidence["store_site"] = repr(sync.store_site)
        decision.evidence["load_site"] = repr(sync.load_site)
        state.stamp(decision.loop_id, epoch)

    def _promote(self, state, selector, profile_stats, nesting,
                 unblocked_by, epoch):
        """Re-select with the banned loops excluded; candidates that the
        decommitted STLs were shadowing may now join the plan set."""
        promotions = []
        fresh = selector.select(profile_stats, nesting,
                                banned=state.banned)
        for loop_id in sorted(fresh):
            if loop_id in state.plans or loop_id in state.banned:
                continue
            if state.in_cooldown(loop_id, epoch, self.policy.cooldown):
                continue
            plan = fresh[loop_id]
            if plan.multilevel_parent is not None \
                    and plan.multilevel_parent not in state.plans \
                    and plan.multilevel_parent not in fresh:
                continue
            state.plans[loop_id] = plan
            state.stamp(loop_id, epoch)
            promotions.append(AdaptDecision(
                epoch=epoch, loop_id=loop_id, action=ACTION_PROMOTE,
                evidence={
                    "predicted_speedup": round(
                        plan.prediction.speedup, 4),
                    "unblocked_by": list(unblocked_by),
                    "multilevel_inner": plan.multilevel_inner,
                }))
        return promotions

    # -- plumbing ------------------------------------------------------------
    def _epoch_record(self, telemetry, state):
        return EpochRecord(
            epoch=telemetry.epoch, cycles=telemetry.cycles,
            instructions=telemetry.instructions,
            plans=sorted(state.plans),
            stl={loop_id: observation.snapshot()
                 for loop_id, observation in
                 sorted(telemetry.per_stl.items())})

    def _emit_trace(self, telemetry, decisions):
        """Surface applied decisions on the Perfetto timeline (adapt
        track; timestamps use the deciding epoch's cycle clock)."""
        trace = self.jrpm.trace
        if trace is None:
            return
        for decision in decisions:
            if not decision.applied:
                continue
            trace.adapt(telemetry.cycles, decision.loop_id,
                        decision.action, decision.epoch,
                        detail=self._detail_of(decision))

    @staticmethod
    def _detail_of(decision):
        evidence = decision.evidence
        if decision.action == ACTION_DECOMMIT:
            return "realized %.2fx < %.2fx" % (
                evidence.get("realized_speedup", 0.0),
                evidence.get("threshold", 0.0))
        if decision.action == ACTION_LOCK_ESCALATE:
            return "violations/thread %.2f > %.2f" % (
                evidence.get("violation_frequency", 0.0),
                evidence.get("cutoff", 0.0))
        return "predicted %.2fx" % evidence.get("predicted_speedup", 0.0)

    def _check_outputs(self, name, epoch, baseline, tls_artifact):
        from ..core.pipeline import outputs_equal
        if not outputs_equal(baseline.measurement.output,
                             tls_artifact.measurement.output):
            raise AssertionError(
                "%s: epoch %d speculative output diverged from the "
                "sequential baseline" % (name, epoch))
