"""Per-epoch telemetry: realized STL behaviour vs TEST's prediction.

One epoch = one speculative execution of the program under the current
plan set.  :func:`observe_epoch` turns the epoch's always-on
:class:`~repro.tls.stats.StlRunStats` (entries, committed threads,
violations, restarts, buffer high-water marks, master wall cycles) into
:class:`StlObservation` objects that pair each STL's *realized* speedup
with the :class:`~repro.tracer.selector.Prediction` the selector
trusted, which is exactly the divergence signal the
:class:`~repro.adapt.policy.AdaptPolicy` feeds on.

Realized speedup is measured as ``work_cycles / wall_cycles``:

* ``work_cycles`` — committed compute cycles inside the STL, i.e. the
  serial-equivalent work the loop performed this epoch;
* ``wall_cycles`` — master-clock cycles spent from STL entry to
  shutdown return (startup/eoi/restart/shutdown handlers, violated
  work and overflow stalls all included).

A loop that speculates well realizes close to ``num_cpus``; a loop the
profile mispredicted (violation storms, overflow thrash, tiny threads)
realizes below 1.0 — it runs *slower* than sequential and should be
decommitted.
"""

from dataclasses import dataclass, field


@dataclass
class StlObservation:
    """What one STL actually did during one epoch."""

    loop_id: int
    entries: int = 0
    threads_committed: int = 0
    work_cycles: float = 0.0
    wall_cycles: float = 0.0
    violations: int = 0
    restarts: int = 0
    overflow_stalls: int = 0
    max_load_lines: int = 0
    max_store_lines: int = 0
    predicted_speedup: float = 0.0
    has_sync: bool = False
    multilevel_inner: bool = False

    @property
    def realized_speedup(self):
        """work/wall — ``None`` until the loop has actually run."""
        if self.entries == 0 or self.wall_cycles <= 0.0:
            return None
        return self.work_cycles / self.wall_cycles

    @property
    def violation_frequency(self):
        """RAW violations per committed thread (restart pressure)."""
        denominator = max(self.threads_committed, 1)
        return self.violations / denominator

    @property
    def misprediction(self):
        """predicted/realized — how optimistic TEST was (>1 = too
        optimistic).  ``None`` before the loop ran."""
        realized = self.realized_speedup
        if realized is None or realized <= 0.0:
            return None
        return self.predicted_speedup / realized

    def snapshot(self):
        """Compact JSON-safe dict stored in the epoch log."""
        realized = self.realized_speedup
        return {
            "entries": self.entries,
            "threads": self.threads_committed,
            "work_cycles": self.work_cycles,
            "wall_cycles": self.wall_cycles,
            "violations": self.violations,
            "restarts": self.restarts,
            "overflow_stalls": self.overflow_stalls,
            "predicted": round(self.predicted_speedup, 4),
            "realized": None if realized is None else round(realized, 4),
            "violation_frequency": round(self.violation_frequency, 4),
        }


@dataclass
class EpochTelemetry:
    """Everything the policy sees about one finished epoch."""

    epoch: int
    cycles: float
    instructions: int = 0
    per_stl: dict = field(default_factory=dict)   # loop_id -> observation
    #: whole-run speculative state (TlsStateBreakdown) — evidence only
    breakdown: object = None

    def observation(self, loop_id):
        return self.per_stl.get(loop_id)


def observe_epoch(epoch, plans, tls_artifact, config=None):
    """Build :class:`EpochTelemetry` from one epoch's TLS artifact.

    Every planned STL gets an observation even if it never entered this
    epoch (``entries == 0`` — the policy must then withhold judgement);
    run stats for loops no longer planned (freshly decommitted) are
    ignored.
    """
    del config      # reserved for future per-config normalization
    measurement = tls_artifact.measurement
    telemetry = EpochTelemetry(
        epoch=epoch, cycles=measurement.cycles,
        instructions=measurement.instructions,
        breakdown=tls_artifact.breakdown)
    for loop_id, plan in plans.items():
        stats = tls_artifact.stl_stats.get(loop_id)
        observation = StlObservation(
            loop_id=loop_id,
            predicted_speedup=plan.prediction.speedup,
            has_sync=plan.sync is not None,
            multilevel_inner=plan.multilevel_inner)
        if stats is not None:
            observation.entries = stats.entries
            observation.threads_committed = stats.threads_committed
            observation.work_cycles = stats.cycles_total
            observation.wall_cycles = stats.wall_cycles
            observation.violations = stats.violations
            observation.restarts = stats.restarts
            observation.overflow_stalls = stats.overflow_stalls
            observation.max_load_lines = stats.max_load_lines
            observation.max_store_lines = stats.max_store_lines
        telemetry.per_stl[loop_id] = observation
    return telemetry
