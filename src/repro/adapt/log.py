"""The adaptation log: a typed record of every closed-loop decision.

The feedback controller (:mod:`repro.adapt.controller`) runs a program
in epochs and may change the compiled plan set between them.  Everything
it observes and decides lands here:

* one :class:`EpochRecord` per epoch — measured cycles, the active plan
  set, and a compact per-STL realized-vs-predicted snapshot;
* one :class:`AdaptDecision` per action — ``decommit`` /
  ``lock_escalate`` / ``promote`` with the evidence that justified it
  and the before/after epoch cycles, so a report reader can replay *why*
  the final plan set looks the way it does.

The log rides :class:`~repro.core.pipeline.JrpmReport` (schema v3)
through ``to_dict``/``from_dict``, the runner's report cache and the
suite JSONL metrics.  :func:`validate_log_dict` is the schema check used
by ``scripts/check_adapt_log.py`` and the test suite.
"""

from dataclasses import dataclass, field

#: the three closed-loop actions (paper §3.1 selection, §4.2.4 locks)
ACTION_DECOMMIT = "decommit"
ACTION_LOCK_ESCALATE = "lock_escalate"
ACTION_PROMOTE = "promote"

ACTIONS = (ACTION_DECOMMIT, ACTION_LOCK_ESCALATE, ACTION_PROMOTE)


@dataclass
class AdaptDecision:
    """One applied (or attempted) adaptation action."""

    epoch: int
    loop_id: int
    action: str                     # one of ACTIONS
    evidence: dict = field(default_factory=dict)
    #: cycles of the epoch the decision was made in / the next epoch
    #: (``None`` until the following epoch has been measured)
    before_cycles: float = None
    after_cycles: float = None
    #: False when the controller could not apply the proposal (e.g. no
    #: dependence arc recorded to hang a synchronizing lock on)
    applied: bool = True

    def to_dict(self):
        return {"epoch": self.epoch, "loop_id": self.loop_id,
                "action": self.action, "evidence": dict(self.evidence),
                "before_cycles": self.before_cycles,
                "after_cycles": self.after_cycles,
                "applied": self.applied}

    @staticmethod
    def from_dict(data):
        return AdaptDecision(
            epoch=data["epoch"], loop_id=data["loop_id"],
            action=data["action"], evidence=dict(data["evidence"]),
            before_cycles=data["before_cycles"],
            after_cycles=data["after_cycles"],
            applied=data.get("applied", True))

    def describe(self):
        text = "epoch %d: %s loop %d" % (self.epoch, self.action,
                                         self.loop_id)
        if not self.applied:
            text += " (not applied: %s)" % self.evidence.get(
                "skipped", "?")
        elif self.after_cycles is not None and self.before_cycles:
            delta = (self.after_cycles - self.before_cycles) \
                / self.before_cycles
            text += "  [%+.1f%% cycles next epoch]" % (delta * 100.0)
        return text


@dataclass
class EpochRecord:
    """Measured summary of one epoch's speculative run."""

    epoch: int
    cycles: float
    instructions: int = 0
    plans: list = field(default_factory=list)       # active loop ids
    decisions: int = 0                              # actions this epoch
    #: compact per-STL telemetry: {loop_id: {realized, predicted,
    #: violations, restarts, entries, wall_cycles, work_cycles}}
    stl: dict = field(default_factory=dict)

    def to_dict(self):
        return {"epoch": self.epoch, "cycles": self.cycles,
                "instructions": self.instructions,
                "plans": list(self.plans), "decisions": self.decisions,
                "stl": {str(loop_id): dict(snapshot)
                        for loop_id, snapshot in self.stl.items()}}

    @staticmethod
    def from_dict(data):
        return EpochRecord(
            epoch=data["epoch"], cycles=data["cycles"],
            instructions=data.get("instructions", 0),
            plans=list(data["plans"]), decisions=data["decisions"],
            stl={int(key): dict(value)
                 for key, value in data.get("stl", {}).items()})


class AdaptationLog:
    """Every epoch and every decision of one adaptive run."""

    SCHEMA_VERSION = 1

    def __init__(self, name="program", policy="threshold",
                 policy_params=None):
        self.name = name
        self.policy = policy
        self.policy_params = dict(policy_params or {})
        self.epochs = []                 # [EpochRecord]
        self.decisions = []              # [AdaptDecision]
        #: first epoch index from which the plan set never changed again
        #: (0 = the initial selection was already stable)
        self.converged_epoch = None
        #: recompile cycles spent across all epoch recompilations
        self.recompile_cycles = 0

    # -- recording -----------------------------------------------------------
    def record_epoch(self, record, decisions=()):
        record.decisions = len([d for d in decisions if d.applied])
        self.epochs.append(record)
        self.decisions.extend(decisions)
        return record

    # -- headline numbers ----------------------------------------------------
    @property
    def epochs_run(self):
        return len(self.epochs)

    @property
    def initial_cycles(self):
        return self.epochs[0].cycles if self.epochs else 0.0

    @property
    def final_cycles(self):
        return self.epochs[-1].cycles if self.epochs else 0.0

    @property
    def total_cycles(self):
        return sum(record.cycles for record in self.epochs)

    @property
    def one_shot_cycles(self):
        """What the same number of epochs would have cost had the
        initial (one-shot) selection been kept."""
        return self.initial_cycles * self.epochs_run

    @property
    def net_cycles_saved(self):
        return self.one_shot_cycles - self.total_cycles

    @property
    def steady_state_gain(self):
        """initial/final epoch cycles — >1 means adaptation ended
        strictly better than the one-shot selection."""
        if not self.final_cycles:
            return 1.0
        return self.initial_cycles / self.final_cycles

    def decisions_by_action(self):
        counts = {action: 0 for action in ACTIONS}
        for decision in self.decisions:
            if decision.applied:
                counts[decision.action] = counts.get(decision.action,
                                                     0) + 1
        return counts

    def applied_decisions(self):
        return [d for d in self.decisions if d.applied]

    # -- serialization -------------------------------------------------------
    def to_dict(self):
        """Lossless JSON-safe dict (the adapt-log schema)."""
        return {
            "schema": self.SCHEMA_VERSION,
            "name": self.name,
            "policy": self.policy,
            "policy_params": dict(self.policy_params),
            "epochs": [record.to_dict() for record in self.epochs],
            "decisions": [d.to_dict() for d in self.decisions],
            "converged_epoch": self.converged_epoch,
            "recompile_cycles": self.recompile_cycles,
            "initial_cycles": self.initial_cycles,
            "final_cycles": self.final_cycles,
            "total_cycles": self.total_cycles,
            "one_shot_cycles": self.one_shot_cycles,
        }

    @staticmethod
    def from_dict(data):
        log = AdaptationLog(name=data["name"], policy=data["policy"],
                            policy_params=data.get("policy_params"))
        log.epochs = [EpochRecord.from_dict(record)
                      for record in data["epochs"]]
        log.decisions = [AdaptDecision.from_dict(decision)
                         for decision in data["decisions"]]
        log.converged_epoch = data["converged_epoch"]
        log.recompile_cycles = data.get("recompile_cycles", 0)
        return log

    # -- rendering -----------------------------------------------------------
    def summary_lines(self, verbose=False):
        lines = []
        out = lines.append
        counts = self.decisions_by_action()
        out("adaptation: %d epoch%s, policy %s, %d decision%s "
            "(%d decommit, %d lock-escalate, %d promote)"
            % (self.epochs_run, "" if self.epochs_run == 1 else "s",
               self.policy, len(self.applied_decisions()),
               "" if len(self.applied_decisions()) == 1 else "s",
               counts[ACTION_DECOMMIT], counts[ACTION_LOCK_ESCALATE],
               counts[ACTION_PROMOTE]))
        if self.epochs:
            out("            cycles %0.0f (epoch 0) -> %0.0f (epoch %d)"
                "   steady-state gain %.2fx"
                % (self.initial_cycles, self.final_cycles,
                   self.epochs[-1].epoch, self.steady_state_gain))
        if self.converged_epoch is not None:
            out("            plan set stable from epoch %d"
                % self.converged_epoch)
        if verbose:
            for decision in self.decisions:
                out("            " + decision.describe())
        return lines


# ---------------------------------------------------------------------------
# schema validation (scripts/check_adapt_log.py, tests, CI)
# ---------------------------------------------------------------------------

def _check_number(problems, data, key, where, optional=False):
    value = data.get(key)
    if value is None:
        if not optional:
            problems.append("%s: missing numeric %r" % (where, key))
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        problems.append("%s: %r is not numeric" % (where, key))


def validate_log_dict(data):
    """Check an adapt-log dict (``AdaptationLog.to_dict()`` or the
    ``jrpm adapt --json`` payload).  Returns a list of problem strings;
    empty means the log is schema-conformant."""
    problems = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    if data.get("schema") != AdaptationLog.SCHEMA_VERSION:
        problems.append("schema must be %d (got %r)"
                        % (AdaptationLog.SCHEMA_VERSION,
                           data.get("schema")))
    for key in ("name", "policy"):
        if not isinstance(data.get(key), str):
            problems.append("%r must be a string" % key)
    epochs = data.get("epochs")
    if not isinstance(epochs, list) or not epochs:
        problems.append("epochs must be a non-empty array")
        epochs = []
    for index, record in enumerate(epochs):
        where = "epochs[%d]" % index
        if not isinstance(record, dict):
            problems.append("%s is not an object" % where)
            continue
        if record.get("epoch") != index:
            problems.append("%s: epoch index %r != position %d"
                            % (where, record.get("epoch"), index))
        _check_number(problems, record, "cycles", where)
        if not isinstance(record.get("plans"), list):
            problems.append("%s: plans must be an array" % where)
        _check_number(problems, record, "decisions", where)
    decisions = data.get("decisions")
    if not isinstance(decisions, list):
        problems.append("decisions must be an array")
        decisions = []
    for index, decision in enumerate(decisions):
        where = "decisions[%d]" % index
        if not isinstance(decision, dict):
            problems.append("%s is not an object" % where)
            continue
        if decision.get("action") not in ACTIONS:
            problems.append("%s: unknown action %r"
                            % (where, decision.get("action")))
        _check_number(problems, decision, "epoch", where)
        _check_number(problems, decision, "loop_id", where)
        if not isinstance(decision.get("evidence"), dict):
            problems.append("%s: evidence must be an object" % where)
        _check_number(problems, decision, "before_cycles", where,
                      optional=True)
        _check_number(problems, decision, "after_cycles", where,
                      optional=True)
    converged = data.get("converged_epoch")
    if converged is not None and not isinstance(converged, int):
        problems.append("converged_epoch must be an integer or null")
    for key in ("initial_cycles", "final_cycles", "total_cycles",
                "one_shot_cycles"):
        _check_number(problems, data, key, "log")
    return problems
