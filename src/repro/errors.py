"""Exception hierarchy shared by every Jrpm subsystem."""


class JrpmError(Exception):
    """Base class for all errors raised by this package."""


class CompileError(JrpmError):
    """Raised by the MiniJava frontend for syntax or type errors."""

    def __init__(self, message, line=None):
        self.line = line
        if line is not None:
            message = "line %d: %s" % (line, message)
        super().__init__(message)


class VerifyError(JrpmError):
    """Raised by the bytecode verifier for malformed bytecode."""


class JitError(JrpmError):
    """Raised by the microJIT compiler for untranslatable bytecode."""


class VMError(JrpmError):
    """Raised by the runtime for machine-level faults (bad address, ...)."""


class GuestException(JrpmError):
    """A runtime exception raised *inside* the guest program.

    These follow Java semantics: they propagate up the guest call stack
    and, if uncaught, abort guest execution.  During speculation a guest
    exception is deferred until the raising thread becomes the head
    thread (paper section 5.1).
    """

    def __init__(self, kind, detail=""):
        self.kind = kind
        self.detail = detail
        super().__init__("%s: %s" % (kind, detail) if detail else kind)


class NullPointerException(GuestException):
    def __init__(self, detail=""):
        super().__init__("NullPointerException", detail)


class ArrayIndexException(GuestException):
    def __init__(self, detail=""):
        super().__init__("ArrayIndexOutOfBoundsException", detail)


class ArithmeticException(GuestException):
    def __init__(self, detail=""):
        super().__init__("ArithmeticException", detail)


class OutOfMemoryException(GuestException):
    def __init__(self, detail=""):
        super().__init__("OutOfMemoryError", detail)
