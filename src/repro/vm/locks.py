"""Object synchronization (paper §5.3).

Java object locks live in the object's header word.  During speculative
execution a lock/unlock pair on every iteration creates an inter-thread
dependency on the lock word even though speculation already guarantees
sequential ordering.  Jrpm re-implemented the lock routine so locks do
not serialize speculation while behaving normally outside it.

``speculation_aware=True`` models the re-implemented routine: while a
CPU runs speculatively the lock is elided (constant small cost, no
memory traffic).  With ``False`` the lock word is read and written
through the speculative memory interface, recreating the serialization
the paper measured (Table 3 column "JVM - Java lock").
"""


class LockManager:
    def __init__(self, config, speculation_aware=True):
        self.config = config
        self.speculation_aware = speculation_aware
        self.acquisitions = 0
        self.elided = 0

    def enter(self, iface, addr, speculating):
        """Acquire the lock at *addr*; returns cycle cost."""
        self.acquisitions += 1
        if speculating and self.speculation_aware:
            self.elided += 1
            return 1
        cost = self.config.lock_acquire_cycles
        count, lat = iface.load(addr)
        cost += lat
        # Reentrant count; single-threaded guests never block.
        cost += iface.store(addr, count + 1)
        return cost

    def leave(self, iface, addr, speculating):
        """Release the lock at *addr*; returns cycle cost."""
        if speculating and self.speculation_aware:
            return 1
        cost = 1
        count, lat = iface.load(addr)
        cost += lat
        cost += iface.store(addr, max(0, count - 1))
        return cost
