"""Concurrent-style mark-and-sweep garbage collector (paper §5.2).

The collector runs at allocation safe points outside speculation.  Root
scanning is conservative over the live frames' register files (any
register value that equals a live object's base address keeps it alive)
plus reference-typed static fields.  Swept blocks are linked onto the
allocator's free lists, which is what makes allocation inside STLs a
serializing dependency unless the parallel allocator is enabled.
"""

from ..bytecode.module import HEADER_BYTES, WORD


class GarbageCollector:
    def __init__(self, program, layout, memory, allocator, config):
        self.program = program
        self.layout = layout
        self.memory = memory
        self.allocator = allocator
        self.config = config
        self.collections = 0
        self.total_cycles = 0
        self.objects_freed = 0

    def should_collect(self):
        return (self.allocator.bytes_since_gc
                >= self.config.gc_threshold_bytes)

    def collect(self, root_registers):
        """Run a full mark-sweep; returns the cycle cost charged.

        *root_registers* is an iterable of register values from every
        live frame (the conservative root set).
        """
        objects = self.allocator.objects
        marked = set()
        worklist = []
        for value in root_registers:
            if isinstance(value, int) and value in objects \
                    and value not in marked:
                marked.add(value)
                worklist.append(value)
        # Static reference fields are roots too.
        for key, addr in self.layout.field_addr.items():
            field = self.program.resolve_field(*key)
            if field.type.is_reference():
                value = self.memory.load(addr)
                if value in objects and value not in marked:
                    marked.add(value)
                    worklist.append(value)

        visited = 0
        while worklist:
            addr = worklist.pop()
            visited += 1
            record = objects[addr]
            for ref in self._references_of(record):
                if ref in objects and ref not in marked:
                    marked.add(ref)
                    worklist.append(ref)

        freed = 0
        for addr in list(objects):
            if addr not in marked:
                record = objects.pop(addr)
                self.allocator.free_block(addr, record.size)
                freed += 1
        self.objects_freed += freed
        self.collections += 1
        self.allocator.bytes_since_gc = 0
        cycles = self.config.gc_cycles_per_object * (visited + freed + 1)
        self.total_cycles += cycles
        return cycles

    def _references_of(self, record):
        info = record.info
        memory = self.memory
        if info.is_array:
            if info.elem_kind != "ref":
                return
            count = (record.size - HEADER_BYTES) // WORD
            for index in range(count):
                value = memory.load(record.addr + HEADER_BYTES + index * WORD)
                if value:
                    yield value
            return
        cls = self.program.classes.get(info.class_name)
        if cls is None:
            return
        for field in cls.all_instance_fields():
            if field.type.is_reference():
                value = memory.load(record.addr + field.offset)
                if value:
                    yield value
