"""VM services: intrinsics, heap, allocator, GC, locks."""
