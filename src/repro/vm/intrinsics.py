"""Intrinsic (native) methods exposed to guest programs.

The MiniJava frontend maps calls on the builtin ``Math`` and ``Sys``
pseudo-classes to ``INTRINSIC`` bytecodes.  The same registry drives the
reference interpreter and the Hydra machine, so both agree exactly.

Intrinsic cycle costs approximate a software library on a single-issue
MIPS core; they only matter for the simulated clock, not correctness.

Purity contract: every non-output intrinsic must be a pure function of
its arguments (no machine, memory or scheduler side effects), and
output intrinsics may only append to the speculative
``pending_output`` buffer.  The event-driven TLS scheduler
(:mod:`repro.tls.runtime`) relies on this — ``INTRIN`` is classified
as a *local* op (:data:`repro.engine.ir_engine.TLS_LOCAL_IR_OPS`), so
it executes inside run-ahead batches that can be rolled back by
restoring registers plus a ``pending_output`` length watermark.  An
intrinsic with hidden global state would survive the rollback and
diverge from the stepwise oracle.
"""

import math

from ..bytecode.instructions import f2i, i32
from ..bytecode.module import FLOAT, INT, VOID


class Intrinsic:
    __slots__ = ("name", "arg_types", "return_type", "cycles", "fn",
                 "is_output")

    def __init__(self, name, arg_types, return_type, cycles, fn,
                 is_output=False):
        self.name = name
        self.arg_types = arg_types
        self.return_type = return_type
        self.cycles = cycles
        self.fn = fn
        self.is_output = is_output

    @property
    def nargs(self):
        return len(self.arg_types)

    def has_result(self):
        return not self.return_type.is_void()


def _safe_log(x):
    return math.log(x) if x > 0.0 else float("-inf")


def _safe_sqrt(x):
    return math.sqrt(x) if x >= 0.0 else float("nan")


def _safe_pow(x, y):
    try:
        value = math.pow(x, y)
    except (ValueError, OverflowError):
        value = float("nan")
    return value


def _safe_exp(x):
    try:
        return math.exp(x)
    except OverflowError:
        return float("inf")


REGISTRY = {}


def _register(name, arg_types, return_type, cycles, fn, is_output=False):
    REGISTRY[name] = Intrinsic(name, arg_types, return_type, cycles, fn,
                               is_output)


_register("sqrt", [FLOAT], FLOAT, 20, _safe_sqrt)
_register("sin", [FLOAT], FLOAT, 30, math.sin)
_register("cos", [FLOAT], FLOAT, 30, math.cos)
_register("tan", [FLOAT], FLOAT, 35, math.tan)
_register("atan", [FLOAT], FLOAT, 35, math.atan)
_register("atan2", [FLOAT, FLOAT], FLOAT, 40, math.atan2)
_register("exp", [FLOAT], FLOAT, 30, _safe_exp)
_register("log", [FLOAT], FLOAT, 30, _safe_log)
_register("pow", [FLOAT, FLOAT], FLOAT, 40, _safe_pow)
_register("fabs", [FLOAT], FLOAT, 2, abs)
_register("floor", [FLOAT], FLOAT, 5, lambda x: float(math.floor(x)))
_register("ceil", [FLOAT], FLOAT, 5, lambda x: float(math.ceil(x)))
_register("f2i", [FLOAT], INT, 2, f2i)
_register("iabs", [INT], INT, 2, lambda x: i32(abs(x)))
_register("imin", [INT, INT], INT, 2, min)
_register("imax", [INT, INT], INT, 2, max)
_register("fmin", [FLOAT, FLOAT], FLOAT, 2, min)
_register("fmax", [FLOAT, FLOAT], FLOAT, 2, max)

# Output intrinsics are the only "system calls" in the guest; the paper
# notes that loops containing system calls cannot be speculated, and the
# loop annotator honours that by disqualifying loops that print.
_register("print_int", [INT], VOID, 50, None, is_output=True)
_register("print_float", [FLOAT], VOID, 50, None, is_output=True)


#: Maps builtin pseudo-class method names to intrinsic names.
BUILTIN_METHODS = {
    ("Math", "sqrt"): "sqrt",
    ("Math", "sin"): "sin",
    ("Math", "cos"): "cos",
    ("Math", "tan"): "tan",
    ("Math", "atan"): "atan",
    ("Math", "atan2"): "atan2",
    ("Math", "exp"): "exp",
    ("Math", "log"): "log",
    ("Math", "pow"): "pow",
    ("Math", "fabs"): "fabs",
    ("Math", "floor"): "floor",
    ("Math", "ceil"): "ceil",
    ("Math", "iabs"): "iabs",
    ("Math", "imin"): "imin",
    ("Math", "imax"): "imax",
    ("Math", "fmin"): "fmin",
    ("Math", "fmax"): "fmax",
    ("Sys", "printInt"): "print_int",
    ("Sys", "printFloat"): "print_float",
}

BUILTIN_CLASSES = frozenset(name for name, _ in BUILTIN_METHODS)


def lookup(name):
    intrinsic = REGISTRY.get(name)
    if intrinsic is None:
        raise KeyError("unknown intrinsic %r" % name)
    return intrinsic
