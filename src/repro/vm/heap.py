"""Heap allocator with memory-resident metadata.

Paper §5.2: the JVM's allocator keeps unallocated objects on linked free
lists; allocating from *one shared* free list inside every speculative
thread serializes the STL.  Jrpm parallelizes allocator access by giving
each processor private free lists during speculation.

We reproduce that by keeping the allocator's hot metadata (bump
pointers, free-list heads) in simulated *memory*, accessed through the
CPU's memory interface: in shared mode speculative threads conflict on
those words (RAW violations); in parallel mode each CPU uses its own
words and no dependency exists.
"""

from ..bytecode.module import HEADER_BYTES, WORD
from ..errors import GuestException, OutOfMemoryException
from ..hydra.config import ALLOCATOR_BASE, HEAP_BASE, HEAP_LIMIT


class AllocRecord:
    """Shadow metadata for one live object (not guest-visible)."""

    __slots__ = ("addr", "size", "info")

    def __init__(self, addr, size, info):
        self.addr = addr
        self.size = size
        self.info = info    # AllocInfo from the IR


class Allocator:
    """Free-list + bump allocator over the guest heap."""

    #: word offsets of metadata inside the allocator page
    SHARED_BUMP = ALLOCATOR_BASE
    SHARED_HEADS = ALLOCATOR_BASE + WORD           # per-size-class heads
    PER_CPU_BASE = ALLOCATOR_BASE + 0x1000         # per-CPU bump/limit/heads
    PER_CPU_STRIDE = 0x400
    CHUNK_BYTES = 64 * 1024

    def __init__(self, memory, config, num_cpus):
        self.memory = memory
        self.config = config
        self.num_cpus = num_cpus
        self.objects = {}              # addr -> AllocRecord
        self.bytes_allocated = 0
        self.bytes_since_gc = 0
        self._size_class_slot = {}     # rounded size -> head slot index
        #: per-CPU private free lists are used instead of the shared ones
        #: while speculating (the §5.2 VM modification).
        self.parallel_mode = False
        memory.store(self.SHARED_BUMP, HEAP_BASE)

    # -- size classes --------------------------------------------------------
    def _round(self, size):
        return max(HEADER_BYTES, (size + WORD - 1) & ~(WORD - 1))

    def _head_addr(self, size, cpu):
        slot = self._size_class_slot.setdefault(size,
                                                len(self._size_class_slot))
        if self.parallel_mode and cpu is not None:
            base = self.PER_CPU_BASE + cpu * self.PER_CPU_STRIDE
            return base + 2 * WORD + slot * WORD
        return self.SHARED_HEADS + slot * WORD

    def _bump_addrs(self, cpu):
        if self.parallel_mode and cpu is not None:
            base = self.PER_CPU_BASE + cpu * self.PER_CPU_STRIDE
            return base, base + WORD       # (bump, limit)
        return self.SHARED_BUMP, None

    # -- allocation ---------------------------------------------------------------
    def allocate(self, iface, cpu, size_bytes, info):
        """Allocate *size_bytes* via memory interface *iface*.

        Returns (addr, latency).  All metadata reads/writes go through
        *iface* so speculation sees them.
        """
        if size_bytes < HEADER_BYTES:
            raise GuestException("NegativeArraySizeException",
                                 str(size_bytes - HEADER_BYTES))
        size = self._round(size_bytes)
        latency = self.config.alloc_service_cycles
        head_addr = self._head_addr(size, cpu)

        value, lat = iface.load(head_addr)
        latency += lat
        if value:
            next_ptr, lat = iface.load(value)
            latency += lat
            latency += iface.store(head_addr, next_ptr)
            addr = value
        else:
            addr, lat = self._bump_allocate(iface, cpu, size)
            latency += lat
        # Write the header and zero the payload (recycled blocks hold
        # stale data; Java guarantees zeroed objects).
        latency += iface.store(addr, 0)                       # lock word
        meta = self._meta_for(info, size)
        latency += iface.store(addr + WORD, meta)
        for offset in range(HEADER_BYTES, size, WORD):
            latency += iface.store(addr + offset, 0)

        self.objects[addr] = AllocRecord(addr, size, info)
        self.bytes_allocated += size
        self.bytes_since_gc += size
        return addr, latency

    def _bump_allocate(self, iface, cpu, size):
        latency = 0
        bump_addr, limit_addr = self._bump_addrs(cpu)
        bump, lat = iface.load(bump_addr)
        latency += lat
        if limit_addr is not None:
            limit, lat = iface.load(limit_addr)
            latency += lat
            if bump == 0 or bump + size > limit:
                # Grab a fresh chunk from the shared bump pointer.  This
                # is the rare cross-CPU interaction of the parallel
                # allocator.
                shared, lat = iface.load(self.SHARED_BUMP)
                latency += lat
                chunk = max(self.CHUNK_BYTES, size)
                latency += iface.store(self.SHARED_BUMP, shared + chunk)
                bump = shared
                latency += iface.store(limit_addr, shared + chunk)
        addr = bump
        if addr + size > HEAP_LIMIT:
            raise OutOfMemoryException("heap exhausted")
        latency += iface.store(bump_addr, addr + size)
        return addr, latency

    @staticmethod
    def _meta_for(info, size):
        if info.is_array:
            return (size - HEADER_BYTES) // WORD    # array length
        return info.class_id or 0

    # -- free lists (used by the GC's sweep) --------------------------------------
    def free_block(self, addr, size):
        """Link a swept block onto the shared free list (direct memory
        access: the GC runs outside speculation and its cost is charged
        separately)."""
        head_addr = self._head_addr(size, None)
        old_head = self.memory.load(head_addr) \
            if head_addr in self.memory.words else 0
        self.memory.store(addr, old_head)
        self.memory.store(head_addr, addr)

    def live_objects(self):
        return self.objects

    def array_length(self, addr):
        record = self.objects.get(addr)
        if record is None or not record.info.is_array:
            return None
        return (record.size - HEADER_BYTES) // WORD
