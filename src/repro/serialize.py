"""JSON-safe serialization helpers shared by the report model.

The report cache stores :class:`~repro.core.pipeline.JrpmReport` objects
as JSON on disk, and the parallel runner ships them between processes,
so every measurement class grows a ``to_dict``/``from_dict`` pair.  The
helpers here deal with the two impedance mismatches between the live
objects and JSON:

* profiling *sites* are (possibly nested) tuples of scalars — JSON has
  no tuples, so they round-trip through lists;
* several tables are keyed by integer loop ids — JSON object keys are
  strings, so loaders coerce keys back with :func:`int_keys`.

No module in the package may be imported from here (this file sits at
the bottom of the dependency graph on purpose).
"""

#: Version of the ``JrpmReport.to_dict()`` layout.  This is the single
#: source of truth: the report model, the wire protocol and the report
#: cache key all read it from here.  Bump it whenever the dict layout
#: changes shape (history: 1 = PR-1 baseline, 2 = trace aggregates,
#: 3 = adaptation log, 4 = static dependence analysis, 5 = profile
#: provenance from the persistent profile DB).
REPORT_SCHEMA_VERSION = 5


class SchemaVersionError(ValueError):
    """A serialized payload declares a schema this code cannot read
    (produced by a newer version of the package)."""

    def __init__(self, kind, found, supported):
        self.kind = kind
        self.found = found
        self.supported = supported
        super().__init__(
            "%s payload declares schema version %r but this build only "
            "understands versions <= %d; refusing to guess at fields "
            "added by a newer writer (upgrade, or regenerate the "
            "payload)" % (kind, found, supported))


def check_schema_version(kind, declared, supported):
    """Reject payloads written by a future schema version.

    Older versions load fine (readers use ``.get`` defaults for fields
    added later); *newer* versions may have renamed or re-keyed fields,
    so guessing is unsafe.
    """
    if declared is not None and (not isinstance(declared, int)
                                 or declared > supported):
        raise SchemaVersionError(kind, declared, supported)


def site_to_jsonable(site):
    """Recursively convert tuples to lists (JSON-encodable)."""
    if isinstance(site, tuple):
        return [site_to_jsonable(part) for part in site]
    if isinstance(site, list):
        return [site_to_jsonable(part) for part in site]
    return site


def site_from_jsonable(site):
    """Recursively convert lists back to tuples (inverse of
    :func:`site_to_jsonable`)."""
    if isinstance(site, (list, tuple)):
        return tuple(site_from_jsonable(part) for part in site)
    return site


def int_keys(mapping):
    """Coerce dict keys to int (JSON stringifies integer keys)."""
    return {int(key): value for key, value in mapping.items()}


def pairs_to_set(pairs):
    """[[a, b], ...] -> {(a, b), ...} (for dynamic-nesting edges)."""
    return {tuple(pair) for pair in pairs}


def set_to_pairs(edges):
    """{(a, b), ...} -> sorted [[a, b], ...] (deterministic JSON)."""
    return [list(pair) for pair in sorted(edges)]
