"""Loop-carried dependence classification over bytecode CFGs.

For every natural loop the pass answers three questions, each on the
``absent < may < must`` lattice (:mod:`repro.analysis.model`):

* **carried locals** — which locals carry values between iterations,
  and do they follow a compiler-eliminable pattern (induction,
  reduction, resetable) or genuinely communicate (`general`)?
* **memory dependences** — which static-field / instance-field / array
  (store, load) pairs can form a loop-carried RAW arc, at what
  iteration distance?
* **pruning** — given the must-dependences and a simple cost model, is
  speculative speedup statically impossible (serial chain ≈ whole
  body), so the STL candidate can be skipped before profiling?

The machinery is deliberately structural: per-block symbolic facts come
from :mod:`repro.analysis.stackflow`; cross-block ordering questions
are answered with dominators over the loop's *intra-iteration*
subgraph (the loop body minus its own back edges).  ``A`` *must
precede* ``B`` when every path from the header to ``B`` passes ``A``;
``A`` *may precede* ``B`` when any path does.  Blocks that dominate
every back-edge tail and sit in no inner loop execute **exactly once
per iteration** ("once-blocks") — the anchor for every `must` claim.
"""

from ..bytecode.opcodes import Op
from ..bytecode.verifier import build_cfg, natural_loops, verify_method
from .model import (ABSENT, AnalysisReport, CarriedRegister, Dependence,
                    KIND_GENERAL, KIND_INDUCTOR, KIND_REDUCTION,
                    KIND_RESETABLE, LoopAnalysis, MAY, MUST)
from .stackflow import CONST, flow_method, linearize, uses_in_tree

#: Associative accumulation ops an STL can privatize (reduction spine).
ASSOC_OPS = frozenset({"iadd", "fadd", "imul", "fmul",
                       "iand", "ior", "ixor"})

#: Min/max intrinsics, equally privatizable.
MINMAX_INTRINSICS = frozenset({"imin", "imax", "fmin", "fmax"})

#: Per-opcode cost weights for the static speedup bound (arbitrary
#: units; only ratios matter).  Memory traffic and calls dominate.
_OP_COST = {
    Op.IDIV: 8, Op.IREM: 8, Op.FDIV: 8, Op.FREM: 8,
    Op.IALOAD: 3, Op.IASTORE: 3, Op.FALOAD: 3, Op.FASTORE: 3,
    Op.AALOAD: 3, Op.AASTORE: 3, Op.ARRAYLENGTH: 3,
    Op.GETFIELD: 3, Op.PUTFIELD: 3, Op.GETSTATIC: 3, Op.PUTSTATIC: 3,
    Op.INVOKESTATIC: 20, Op.INVOKEVIRTUAL: 20,
    Op.MONITORENTER: 10, Op.MONITOREXIT: 10,
    Op.INTRINSIC: 4, Op.NEW: 6,
    Op.NEWARRAY_I: 6, Op.NEWARRAY_F: 6, Op.NEWARRAY_A: 6,
}


class _LoopContext:
    """Structural facts about one loop's intra-iteration subgraph."""

    def __init__(self, cfg, flow, loop, inner_blocks):
        self.cfg = cfg
        self.flow = flow
        self.loop = loop
        self.blocks = loop.blocks
        self.inner_blocks = inner_blocks
        self.pcs = {pc for bid in loop.blocks
                    for pc in cfg.blocks[bid].pcs()}
        backs = set(loop.backedges)
        succs = {bid: [s for s in cfg.blocks[bid].succs
                       if s in loop.blocks and (bid, s) not in backs]
                 for bid in loop.blocks}
        self.dom = self._dominators(loop.header, succs)
        self.reach = self._reachability(succs)
        tails = [tail for tail, _ in loop.backedges]
        self.once = {bid for bid in loop.blocks
                     if bid not in inner_blocks
                     and all(bid in self.dom[tail] for tail in tails)}
        self.flows = [flow.blocks[bid] for bid in sorted(loop.blocks)]
        self.calls = [pc for bf in self.flows for pc in bf.calls]
        self.monitors = [pc for bf in self.flows for pc in bf.monitors]
        self.defs = {}              # local -> [LocalDef]
        self.uses = {}              # local -> [LocalUse]
        for bf in self.flows:
            for d in bf.defs:
                self.defs.setdefault(d.local, []).append(d)
            for u in bf.uses:
                self.uses.setdefault(u.local, []).append(u)
        self.static_store_targets = {
            acc.target for bf in self.flows for acc in bf.accesses
            if acc.kind == "static" and acc.is_store}
        self.field_store_targets = {
            acc.target for bf in self.flows for acc in bf.accesses
            if acc.kind == "field" and acc.is_store}

    @staticmethod
    def _dominators(header, succs):
        """Dominator sets over the intra-iteration subgraph (inner-loop
        cycles remain; the iteration is rooted at the header)."""
        preds = {bid: [] for bid in succs}
        for bid, outs in succs.items():
            for out in outs:
                preds[out].append(bid)
        everything = frozenset(succs)
        dom = {bid: everything for bid in succs}
        dom[header] = frozenset([header])
        changed = True
        while changed:
            changed = False
            for bid in succs:
                if bid == header:
                    continue
                incoming = preds[bid]
                new = None
                for pred in incoming:
                    new = dom[pred] if new is None else new & dom[pred]
                new = (new or frozenset()) | {bid}
                if new != dom[bid]:
                    dom[bid] = new
                    changed = True
        return dom

    @staticmethod
    def _reachability(succs):
        """``reach[A]`` = blocks reachable from A via ≥1 subgraph edge."""
        reach = {}
        for start in succs:
            seen = set()
            stack = list(succs[start])
            while stack:
                bid = stack.pop()
                if bid in seen:
                    continue
                seen.add(bid)
                stack.extend(succs[bid])
            reach[start] = seen
        return reach

    # -- intra-iteration ordering -----------------------------------------
    def must_precede(self, block_a, pc_a, block_b, pc_b):
        """Every iteration executes (block_a, pc_a) before (block_b,
        pc_b) reads/writes — same block earlier pc, or strict
        domination."""
        if block_a == block_b:
            return pc_a < pc_b
        return block_a in self.dom[block_b]

    def may_precede(self, block_a, pc_a, block_b, pc_b):
        """Some iteration may execute (block_a, pc_a) before (block_b,
        pc_b) — forward reachability, including inner-loop cycles."""
        if block_a == block_b and pc_a < pc_b:
            return True
        return block_b in self.reach[block_a]


# ---------------------------------------------------------------------------
# carried-local classification
# ---------------------------------------------------------------------------

def _classify_carried(ctx, local):
    """Kind of one carried local (bytecode mirror of
    :mod:`repro.jit.patterns`)."""
    defs = ctx.defs[local]
    step = _step_def(ctx, local, defs)
    if step is not None and len(defs) == 1:
        return CarriedRegister(local, KIND_INDUCTOR, step=step[1])
    if _is_reduction(ctx, local, defs):
        return CarriedRegister(local, KIND_REDUCTION)
    if step is not None and all(
            d is step[0] or _const_int(d.value) is not None
            for d in defs):
        return CarriedRegister(local, KIND_RESETABLE, step=step[1])
    return CarriedRegister(local, KIND_GENERAL)


def _step_def(ctx, local, defs):
    """The unique once-per-iteration ``l = l + const`` def, if any.

    Returns ``(LocalDef, step)`` or ``None``.
    """
    steps = []
    for d in defs:
        form = linearize(d.value)
        if form is None or d.block not in ctx.once:
            continue
        terms = {t: c for t, c in form.items()
                 if t != CONST and c != 0}
        if terms == {("entry", local): 1} and form.get(CONST, 0) != 0:
            steps.append((d, form[CONST]))
    if len(steps) == 1:
        return steps[0]
    return None


def _const_int(value):
    """The int constant *value* denotes, or ``None``."""
    form = linearize(value)
    if form is not None and all(t == CONST or c == 0
                                for t, c in form.items()):
        return form.get(CONST, 0)
    return None


def _is_reduction(ctx, local, defs):
    """True when every def accumulates *local* through one associative
    op (or min/max intrinsic, or the add-then-mask idiom) and every
    loop use of *local* sits inside those accumulation trees."""
    covered_use_pcs = set()
    for d in defs:
        use_pcs = uses_in_tree(d.value, local)
        if len(use_pcs) != 1:
            return False
        path = _spine_path(d.value, local)
        if path is None or not _spine_allowed(path):
            return False
        covered_use_pcs.update(use_pcs)
        for u in ctx.uses[local]:
            # other locals' values folded into this tree also count
            if u.pc in uses_in_tree(d.value, local):
                covered_use_pcs.add(u.pc)
    all_use_pcs = {u.pc for u in ctx.uses[local]}
    return all_use_pcs <= covered_use_pcs


def _spine_path(node, local):
    """Ops on the path from a def tree's root down to the unique use of
    *local*, as ``[(op, other_operand), ...]`` — or ``None`` if the use
    sits under anything but binops/intrinsics."""
    path = []
    while True:
        tag = node[0]
        if tag == "use":
            if node[1] == local:
                return path
            node = node[3]
        elif tag == "binop":
            in_lhs = bool(uses_in_tree(node[2], local))
            in_rhs = bool(uses_in_tree(node[3], local))
            if in_lhs == in_rhs:
                return None
            path.append((node[1], node[3] if in_lhs else node[2]))
            node = node[2] if in_lhs else node[3]
        elif tag == "intrinsic":
            holding = [arg for arg in node[2]
                       if uses_in_tree(arg, local)]
            if len(holding) != 1:
                return None
            path.append((node[1], None))
            node = holding[0]
        else:
            return None


def _spine_allowed(path):
    """Accept single-op associative spines, min/max intrinsics, and
    ``(l + x) & (2^k - 1)`` masked counters."""
    if not path:
        return False
    ops = [op for op, _ in path]
    if all(op == ops[0] for op in ops) and ops[0] in ASSOC_OPS:
        return True
    if len(path) == 1 and ops[0] in MINMAX_INTRINSICS:
        return True
    if ops[0] == "iand" and all(op == "iadd" for op in ops[1:]) \
            and len(ops) > 1:
        mask = _const_int(path[0][1]) if path[0][1] is not None else None
        return mask is not None and mask > 0 and (mask & (mask + 1)) == 0
    return False


# ---------------------------------------------------------------------------
# dependence classification
# ---------------------------------------------------------------------------

def _local_dependence(ctx, code, local):
    """Carried dependence through a `general` local, or ``None`` when
    every loop read is preceded by a same-iteration write."""
    defs = ctx.defs[local]
    uses = ctx.uses[local]
    exposed = [u for u in uses
               if not any(ctx.must_precede(d.block, d.pc, u.block, u.pc)
                          for d in defs)]
    if not exposed:
        return None
    once_defs = [d for d in defs if d.block in ctx.once]
    verdict = MAY
    load = exposed[0]
    for u in exposed:
        unconditional = u.block in ctx.once and not any(
            ctx.may_precede(d.block, d.pc, u.block, u.pc) for d in defs)
        if unconditional and once_defs:
            verdict = MUST
            load = u
            break
    store = once_defs[0] if once_defs else max(defs, key=lambda d: d.pc)
    reason = ("read of the previous iteration's value on every path"
              if verdict == MUST
              else "value may flow across iterations on some path")
    return Dependence(
        "local", verdict, "l%d" % local,
        store_pc=store.pc, load_pc=load.pc,
        store_line=code[store.pc].line, load_line=code[load.pc].line,
        distance=1, local=local, reason=reason)


def _scalar_memory_dependence(ctx, code, kind, target, stores, loads,
                              label):
    """Static-field (or field-through-invariant-base) classification:
    the location behaves like a shared scalar, distance 1."""
    uncovered = [l for l in loads
                 if not any(ctx.must_precede(s.block, s.pc,
                                             l.block, l.pc)
                            for s in stores)]
    store = min(stores, key=lambda s: (s.block not in ctx.once, s.pc))
    if not uncovered:
        return Dependence(
            kind, ABSENT, label,
            store_pc=store.pc, store_line=code[store.pc].line,
            distance=1,
            reason="every read is preceded by a same-iteration write")
    verdict = MAY
    load = uncovered[0]
    once_stores = [s for s in stores if s.block in ctx.once]
    for l in uncovered:
        unconditional = l.block in ctx.once and not any(
            ctx.may_precede(s.block, s.pc, l.block, l.pc)
            for s in stores)
        if unconditional and once_stores:
            verdict = MUST
            load = l
            break
    reason = ("read-modify-write of a shared location every iteration"
              if verdict == MUST
              else "shared location read and written on some paths")
    return Dependence(
        kind, verdict, label,
        store_pc=store.pc, load_pc=load.pc,
        store_line=code[store.pc].line, load_line=code[load.pc].line,
        distance=1, reason=reason)


def _root_of(ctx, expr):
    """Loop-invariant root of a base expression, or ``None`` (opaque).

    Roots: ``("local", l)`` for invariant locals, ``("static", cls,
    name)`` / ``("field", base_root, cls, name)`` for fields not stored
    inside the loop, ``("alloc", pc)`` for arrays allocated inside the
    current iteration.
    """
    tag = expr[0]
    if tag == "use":
        return _root_of(ctx, expr[3])
    if tag == "entry":
        if expr[1] in ctx.defs:
            return None
        return ("local", expr[1])
    if tag == "staticval":
        target = (expr[1], expr[2])
        if target in ctx.static_store_targets:
            return None
        return ("static",) + target
    if tag == "fieldval":
        target = (expr[2], expr[3])
        if target in ctx.field_store_targets:
            return None
        base = _root_of(ctx, expr[1])
        if base is None:
            return None
        return ("field", base) + target
    if tag == "newarray":
        return ("alloc", expr[1])
    return None


def _root_name(root):
    """Human-readable name of a base root."""
    if root is None:
        return "?"
    tag = root[0]
    if tag == "local":
        return "l%d" % root[1]
    if tag == "static":
        return "%s.%s" % (root[1], root[2])
    if tag == "field":
        return "%s.%s" % (_root_name(root[1]), root[3])
    return "new@%d" % root[1]


def _normalized_index(ctx, inductor, step, acc):
    """``(coeff, offset)`` of an array index as an affine function of
    the inductor *at iteration start*, or ``None`` when non-affine or
    when a conditional step makes the offset indeterminate.

    The linear form is relative to the access's block entry; crossing
    the inductor's step def shifts the frame by ``coeff * step``.
    """
    form = linearize(acc.index)
    if form is None:
        return None
    coeff = 0
    offset = form.get(CONST, 0)
    invariant = {}
    for term, c in form.items():
        if term == CONST or c == 0:
            continue
        if term == ("entry", inductor):
            coeff = c
        elif term[0] == "entry" and term[1] not in ctx.defs:
            invariant[term] = c
        else:
            return None             # depends on another in-loop value
    if coeff != 0 and inductor is not None:
        (sdef,) = [d for d in ctx.defs[inductor]]
        if sdef.block != acc.block:
            if sdef.block in ctx.dom[acc.block]:
                offset += coeff * step
            elif ctx.may_precede(sdef.block, sdef.pc,
                                 acc.block, acc.pc):
                return None         # step may or may not have happened
    return (coeff, offset, tuple(sorted(invariant.items())))


def _array_dependences(ctx, code, inductor, step):
    """Classify every (array store, array load) pair in the loop."""
    accesses = [acc for bf in ctx.flows for acc in bf.accesses
                if acc.kind == "array" and acc.index != ("len",)]
    stores = [acc for acc in accesses if acc.is_store]
    loads = [acc for acc in accesses if not acc.is_store]
    deps = []
    for s in stores:
        s_root = _root_of(ctx, s.base)
        for l in loads:
            l_root = _root_of(ctx, l.base)
            deps.append(_array_pair(ctx, code, inductor, step,
                                    s, s_root, l, l_root))
    return deps


def _array_pair(ctx, code, inductor, step, s, s_root, l, l_root):
    """One store/load pair on the lattice (see docs/analysis.md)."""
    label = "%s[]" % _root_name(s_root)

    def dep(classification, distance, reason):
        return Dependence(
            "array", classification, label,
            store_pc=s.pc, load_pc=l.pc,
            store_line=code[s.pc].line, load_line=code[l.pc].line,
            distance=distance, reason=reason)

    if s_root is None or l_root is None:
        return dep(MAY, None, "unresolved array base may alias")
    if s_root != l_root:
        return dep(MAY, None, "distinct array bases may alias")
    if s_root[0] == "alloc":
        return dep(ABSENT, None,
                   "array is allocated fresh every iteration")
    s_idx = _normalized_index(ctx, inductor, step, s)
    l_idx = _normalized_index(ctx, inductor, step, l)
    if s_idx is None or l_idx is None:
        return dep(MAY, None, "array index is not affine in the "
                              "loop inductor")
    (sc, so, s_inv), (lc, lo, l_inv) = s_idx, l_idx
    if s_inv != l_inv or sc != lc:
        return dep(MAY, None, "incomparable affine index shapes")
    if sc == 0:
        if so != lo:
            return dep(ABSENT, None,
                       "loop-invariant indices address distinct "
                       "elements")
        return _scalar_memory_dependence(
            ctx, code, "array", None, [s], [l], label)
    advance = sc * step
    delta = so - lo
    if advance == 0 or delta % advance != 0:
        return dep(ABSENT, None,
                   "index offsets never coincide across iterations")
    distance = delta // advance
    if distance <= 0:
        return dep(ABSENT, None,
                   "the read runs ahead of the write "
                   "(distance %d)" % distance)
    if s.block in ctx.once and l.block in ctx.once:
        return dep(MUST, distance,
                   "recurrence a[i] <- a[i-%d] on every iteration"
                   % distance)
    return dep(MAY, distance,
               "recurrence at distance %d on some paths" % distance)


def _field_dependences(ctx, code):
    """Classify instance-field store/load groups (per field target)."""
    by_target = {}
    for bf in ctx.flows:
        for acc in bf.accesses:
            if acc.kind == "field":
                by_target.setdefault(acc.target, []).append(acc)
    deps = []
    for target, accs in sorted(by_target.items()):
        stores = [a for a in accs if a.is_store]
        loads = [a for a in accs if not a.is_store]
        if not stores or not loads:
            continue
        label = "%s.%s" % target
        roots = {_root_of(ctx, a.base) for a in accs}
        if None in roots or len(roots) != 1:
            store, load = stores[0], loads[0]
            deps.append(Dependence(
                "field", MAY, label,
                store_pc=store.pc, load_pc=load.pc,
                store_line=code[store.pc].line,
                load_line=code[load.pc].line,
                distance=1,
                reason="field bases may alias across iterations"))
        else:
            deps.append(_scalar_memory_dependence(
                ctx, code, "field", target, stores, loads, label))
    return deps


def _static_dependences(ctx, code):
    """Classify static-field store/load groups (per field target)."""
    by_target = {}
    for bf in ctx.flows:
        for acc in bf.accesses:
            if acc.kind == "static":
                by_target.setdefault(acc.target, []).append(acc)
    deps = []
    for target, accs in sorted(by_target.items()):
        stores = [a for a in accs if a.is_store]
        loads = [a for a in accs if not a.is_store]
        if not stores or not loads:
            continue
        deps.append(_scalar_memory_dependence(
            ctx, code, "static", target, stores, loads,
            "%s.%s" % target))
    return deps


# ---------------------------------------------------------------------------
# cost model / pruning
# ---------------------------------------------------------------------------

def _cost(code, pcs):
    """Cost-weighted size of a pc set."""
    return sum(_OP_COST.get(code[pc].op, 1) for pc in pcs)


def _dependence_span(ctx, code, dep):
    """Cost of the serial chain one must-dependence imposes per
    iteration: the region from its load to its (next-iteration) store,
    divided by the iteration distance."""
    load_pc, store_pc = dep.load_pc, dep.store_pc
    if load_pc is None or store_pc is None:
        return 0
    if load_pc <= store_pc:
        span = {pc for pc in ctx.pcs if load_pc <= pc <= store_pc}
    else:
        span = {pc for pc in ctx.pcs
                if not store_pc < pc < load_pc}
    return _cost(code, span) / max(1, dep.distance or 1)


def _apply_cost_model(ctx, code, analysis, threshold):
    """Fill body/dep costs and decide pruning for one loop."""
    analysis.body_cost = _cost(code, ctx.pcs)
    spans = [_dependence_span(ctx, code, dep)
             for dep in analysis.must_deps()]
    analysis.max_dep_cost = max(spans) if spans else 0
    if analysis.max_dep_cost > 0:
        analysis.speedup_bound = round(
            analysis.body_cost / analysis.max_dep_cost, 3)
        if analysis.classification == MUST \
                and analysis.speedup_bound < threshold:
            analysis.pruned = True
            analysis.prune_reason = (
                "static: must-dependence chain bounds speedup at "
                "%.2fx < %.2fx" % (analysis.speedup_bound, threshold))


# ---------------------------------------------------------------------------
# entry points
# ---------------------------------------------------------------------------

def analyze_loop(ctx, threshold):
    """Run the full classification for one loop context."""
    cfg, loop = ctx.cfg, ctx.loop
    code = cfg.method.code
    header_line = code[cfg.blocks[loop.header].start].line
    analysis = LoopAnalysis(cfg.method.qualified_name, loop.ordinal,
                            header_line, loop.depth)
    analysis.has_calls = bool(ctx.calls or ctx.monitors)

    carried = sorted(set(ctx.defs) & set(ctx.uses))
    inductor, step = None, None
    for local in carried:
        reg = _classify_carried(ctx, local)
        analysis.carried.append(reg)
        if reg.kind == KIND_INDUCTOR and inductor is None:
            inductor, step = local, reg.step
    for reg in analysis.carried:
        if reg.kind == KIND_GENERAL:
            dep = _local_dependence(ctx, code, reg.local)
            if dep is not None:
                analysis.deps.append(dep)

    memory_deps = (_static_dependences(ctx, code)
                   + _field_dependences(ctx, code)
                   + _array_dependences(ctx, code, inductor, step or 0))
    if analysis.has_calls:
        for dep in memory_deps:
            if dep.classification == ABSENT:
                dep.classification = MAY
                dep.reason += "; loop body calls out, so the claim "\
                              "cannot be strengthened"
    analysis.deps.extend(memory_deps)

    analysis.finalize()
    _apply_cost_model(ctx, code, analysis, threshold)
    return analysis


def analyze_method(program, method, threshold=1.2, depths=None):
    """Analyze every natural loop of one method.

    Returns ``[LoopAnalysis]`` in ordinal order.  *depths* may carry a
    precomputed :func:`~repro.bytecode.verify_method` result.
    """
    if depths is None:
        depths = verify_method(program, method)
    cfg = build_cfg(method)
    loops = natural_loops(cfg)
    if not loops:
        return []
    flow = flow_method(program, method, cfg, depths)
    results = []
    for loop in loops:
        inner = set()
        for other in loops:
            if other.blocks < loop.blocks:
                inner |= other.blocks
        ctx = _LoopContext(cfg, flow, loop, inner)
        results.append(analyze_loop(ctx, threshold))
    return results


def analyze_program(program, threshold=1.2):
    """Analyze every method; returns an
    :class:`~repro.analysis.model.AnalysisReport`."""
    report = AnalysisReport(threshold=threshold)
    for method in program.all_methods():
        report.methods_analyzed += 1
        report.loops.extend(analyze_method(program, method,
                                           threshold=threshold))
    return report
