"""Symbolic abstract-stack evaluation of bytecode basic blocks.

The dependence analyzer needs to know, for every basic block, *what*
each instruction reads and writes — which local a ``STORE`` defines and
from what expression, which array/field/static a memory op touches and
through which base and index expressions.  This module recovers those
facts by re-running each block over a symbolic operand stack, exactly
the way the microJIT's translator does, but producing expression trees
instead of IR.

Expressions are plain tuples:

* ``("const", k)`` / ``("null",)`` — literals;
* ``("entry", l)`` — the value local ``l`` held *at block entry*;
* ``("use", l, pc, inner)`` — a ``LOAD``/``IINC`` read of local ``l``
  at ``pc``, wrapping the underlying value ``inner`` (the wrapper keeps
  use provenance so reduction spines can be traced through def trees);
* ``("stackin", i)`` — the i-th operand-stack slot at block entry
  (depths come from the verifier, so blocks compose consistently);
* ``("binop", name, a, b)`` / ``("unop", name, a)`` — arithmetic;
* ``("staticval", cls, name, pc)``, ``("fieldval", base, cls, name,
  pc)``, ``("elem", base, index, pc)``, ``("arraylen", base, pc)`` —
  memory reads;
* ``("newarray", pc)``, ``("new", cls, pc)``, ``("call", pc)``,
  ``("intrinsic", name, args, pc)`` — opaque producers.

Everything is *block-local*: locals are read lazily as ``("entry",
l)``, so a value crossing a block boundary appears as the target
block's entry value.  Cross-block ordering questions (did that store
happen before this load on every path?) are answered structurally by
:mod:`repro.analysis.deps` using dominators, not by value propagation —
that is what keeps the pass simple and the join rules obvious.
"""

from ..bytecode.opcodes import COND_BRANCH_OPS, Op
from ..vm import intrinsics

#: Binary integer/float arithmetic opcodes and their expression names.
_BINOPS = {
    Op.IADD: "iadd", Op.ISUB: "isub", Op.IMUL: "imul",
    Op.IDIV: "idiv", Op.IREM: "irem",
    Op.IAND: "iand", Op.IOR: "ior", Op.IXOR: "ixor",
    Op.ISHL: "ishl", Op.ISHR: "ishr", Op.IUSHR: "iushr",
    Op.FADD: "fadd", Op.FSUB: "fsub", Op.FMUL: "fmul",
    Op.FDIV: "fdiv", Op.FREM: "frem", Op.FCMP: "fcmp",
}

_UNOPS = {Op.INEG: "ineg", Op.FNEG: "fneg",
          Op.I2F: "i2f", Op.F2I: "f2i"}

_ARRAY_LOADS = frozenset({Op.IALOAD, Op.FALOAD, Op.AALOAD})
_ARRAY_STORES = frozenset({Op.IASTORE, Op.FASTORE, Op.AASTORE})


class LocalDef:
    """One write of a local: ``STORE`` or the write half of ``IINC``."""

    __slots__ = ("local", "pc", "block", "value")

    def __init__(self, local, pc, block, value):
        self.local = local
        self.pc = pc
        self.block = block
        self.value = value          # expression tree being stored

    def __repr__(self):
        return "<LocalDef l%d @%d>" % (self.local, self.pc)


class LocalUse:
    """One read of a local: ``LOAD`` or the read half of ``IINC``."""

    __slots__ = ("local", "pc", "block")

    def __init__(self, local, pc, block):
        self.local = local
        self.pc = pc
        self.block = block

    def __repr__(self):
        return "<LocalUse l%d @%d>" % (self.local, self.pc)


class Access:
    """One heap access: array element, instance field or static field.

    ``kind`` is ``"array"`` / ``"field"`` / ``"static"``; ``base`` and
    ``index`` are expression trees (``None`` where not applicable);
    ``target`` is the ``(class, field)`` pair for field/static kinds.
    """

    __slots__ = ("pc", "block", "kind", "is_store", "base", "index",
                 "target")

    def __init__(self, pc, block, kind, is_store, base=None, index=None,
                 target=None):
        self.pc = pc
        self.block = block
        self.kind = kind
        self.is_store = is_store
        self.base = base
        self.index = index
        self.target = target

    def __repr__(self):
        return "<Access %s %s @%d>" % (
            self.kind, "store" if self.is_store else "load", self.pc)


class BlockFlow:
    """Everything one basic block reads and writes."""

    __slots__ = ("bid", "defs", "uses", "accesses", "calls", "monitors")

    def __init__(self, bid):
        self.bid = bid
        self.defs = []              # [LocalDef], pc order
        self.uses = []              # [LocalUse], pc order
        self.accesses = []          # [Access], pc order
        self.calls = []             # pcs of INVOKE* instructions
        self.monitors = []          # pcs of MONITORENTER/EXIT


class MethodFlow:
    """Per-block symbolic flow facts for one method."""

    def __init__(self, method, cfg, blocks):
        self.method = method
        self.cfg = cfg
        self.blocks = blocks        # [BlockFlow], indexed by block id

    def for_blocks(self, block_ids):
        """The :class:`BlockFlow` records of the given blocks."""
        return [self.blocks[bid] for bid in sorted(block_ids)]


def flow_method(program, method, cfg, depths):
    """Evaluate every (reachable) block of *method* symbolically.

    *depths* is the per-pc entry-depth list from
    :func:`repro.bytecode.verify_method`; unreachable blocks (depth
    ``None`` at their leader) yield empty flow records, matching the
    CFG's unreachable-block discipline.
    """
    flows = []
    for block in cfg.blocks:
        flow = BlockFlow(block.bid)
        if depths[block.start] is not None:
            _eval_block(program, method, block, depths[block.start],
                        flow)
        flows.append(flow)
    return MethodFlow(method, cfg, flows)


def _eval_block(program, method, block, entry_depth, flow):
    """Run one block over a symbolic stack, recording flow facts."""
    code = method.code
    stack = [("stackin", i) for i in range(entry_depth)]
    env = {}                        # local index -> current expression
    bid = block.bid

    def local_value(idx):
        return env.get(idx, ("entry", idx))

    for pc in block.pcs():
        instr = code[pc]
        op = instr.op
        if op == Op.NOP:
            pass
        elif op == Op.POP:
            stack.pop()
        elif op == Op.DUP:
            stack.append(stack[-1])
        elif op == Op.DUP_X1:
            v1, v2 = stack.pop(), stack.pop()
            stack += [v1, v2, v1]
        elif op == Op.SWAP:
            v1, v2 = stack.pop(), stack.pop()
            stack += [v1, v2]
        elif op in (Op.ICONST, Op.FCONST):
            stack.append(("const", instr.arg))
        elif op == Op.ACONST_NULL:
            stack.append(("null",))
        elif op == Op.LOAD:
            flow.uses.append(LocalUse(instr.arg, pc, bid))
            stack.append(("use", instr.arg, pc, local_value(instr.arg)))
        elif op == Op.STORE:
            value = stack.pop()
            flow.defs.append(LocalDef(instr.arg, pc, bid, value))
            env[instr.arg] = value
        elif op == Op.IINC:
            idx, delta = instr.arg
            flow.uses.append(LocalUse(idx, pc, bid))
            value = ("binop", "iadd",
                     ("use", idx, pc, local_value(idx)),
                     ("const", delta))
            flow.defs.append(LocalDef(idx, pc, bid, value))
            env[idx] = value
        elif op in _BINOPS:
            rhs, lhs = stack.pop(), stack.pop()
            stack.append(("binop", _BINOPS[op], lhs, rhs))
        elif op in _UNOPS:
            stack.append(("unop", _UNOPS[op], stack.pop()))
        elif op == Op.GOTO:
            pass
        elif op in COND_BRANCH_OPS:
            if op in (Op.IFNULL, Op.IFNONNULL) or \
                    op in (Op.IFEQ, Op.IFNE, Op.IFLT,
                           Op.IFGE, Op.IFGT, Op.IFLE):
                stack.pop()
            else:
                stack.pop()
                stack.pop()
        elif op in (Op.NEWARRAY_I, Op.NEWARRAY_F, Op.NEWARRAY_A):
            stack.pop()
            stack.append(("newarray", pc))
        elif op == Op.ARRAYLENGTH:
            base = stack.pop()
            flow.accesses.append(Access(pc, bid, "array", False,
                                        base=base, index=("len",)))
            stack.append(("arraylen", base, pc))
        elif op in _ARRAY_LOADS:
            index, base = stack.pop(), stack.pop()
            flow.accesses.append(Access(pc, bid, "array", False,
                                        base=base, index=index))
            stack.append(("elem", base, index, pc))
        elif op in _ARRAY_STORES:
            _value, index, base = stack.pop(), stack.pop(), stack.pop()
            flow.accesses.append(Access(pc, bid, "array", True,
                                        base=base, index=index))
        elif op == Op.NEW:
            stack.append(("new", instr.arg, pc))
        elif op == Op.GETFIELD:
            base = stack.pop()
            flow.accesses.append(Access(pc, bid, "field", False,
                                        base=base, target=instr.arg))
            stack.append(("fieldval", base) + tuple(instr.arg) + (pc,))
        elif op == Op.PUTFIELD:
            _value, base = stack.pop(), stack.pop()
            flow.accesses.append(Access(pc, bid, "field", True,
                                        base=base, target=instr.arg))
        elif op == Op.GETSTATIC:
            flow.accesses.append(Access(pc, bid, "static", False,
                                        target=instr.arg))
            stack.append(("staticval",) + tuple(instr.arg) + (pc,))
        elif op == Op.PUTSTATIC:
            stack.pop()
            flow.accesses.append(Access(pc, bid, "static", True,
                                        target=instr.arg))
        elif op in (Op.INVOKESTATIC, Op.INVOKEVIRTUAL):
            callee = program.resolve_method(*instr.arg)
            argc = len(callee.param_types)
            if op == Op.INVOKEVIRTUAL:
                argc += 1
            for _ in range(argc):
                stack.pop()
            flow.calls.append(pc)
            if not callee.return_type.is_void():
                stack.append(("call", pc))
        elif op == Op.INTRINSIC:
            name, nargs = instr.arg
            intrinsic = intrinsics.lookup(name)
            args = tuple(stack.pop() for _ in range(nargs))[::-1]
            if intrinsic.has_result():
                stack.append(("intrinsic", name, args, pc))
        elif op in (Op.MONITORENTER, Op.MONITOREXIT):
            stack.pop()
            flow.monitors.append(pc)
        elif op == Op.RETURN:
            pass
        elif op == Op.RETURN_VALUE:
            stack.pop()
        else:                       # pragma: no cover - exhaustive ISA
            raise AssertionError("unhandled opcode %s" % op)


# ---------------------------------------------------------------------------
# linear forms
# ---------------------------------------------------------------------------

#: Dictionary key holding the constant term of a linear form.
CONST = ("const",)


def linearize(expr):
    """Reduce an integer expression to a linear form, or ``None``.

    The form is ``{basis_term: coeff, CONST: k}`` where basis terms are
    ``("entry", l)`` block-entry local values.  ``("use", ...)``
    wrappers are transparent — an index computed after an in-block
    ``IINC`` folds the increment into the constant term automatically.
    Anything non-linear (products of variables, float math, heap reads)
    returns ``None``.
    """
    tag = expr[0]
    if tag == "const":
        value = expr[1]
        if not isinstance(value, int) or isinstance(value, bool):
            return None
        return {CONST: value}
    if tag == "entry":
        return {expr: 1, CONST: 0}
    if tag == "use":
        return linearize(expr[3])
    if tag == "unop" and expr[1] == "ineg":
        return _scale(linearize(expr[2]), -1)
    if tag == "binop":
        name, lhs, rhs = expr[1], expr[2], expr[3]
        if name in ("iadd", "isub"):
            left, right = linearize(lhs), linearize(rhs)
            if left is None or right is None:
                return None
            return _combine(left, right, -1 if name == "isub" else 1)
        if name == "imul":
            left, right = linearize(lhs), linearize(rhs)
            if left is not None and _is_const(left):
                return _scale(right, left[CONST])
            if right is not None and _is_const(right):
                return _scale(left, right[CONST])
            return None
        if name == "ishl":
            left, right = linearize(lhs), linearize(rhs)
            if right is not None and _is_const(right) \
                    and 0 <= right[CONST] < 31:
                return _scale(left, 1 << right[CONST])
            return None
    return None


def _is_const(form):
    return all(term == CONST or coeff == 0
               for term, coeff in form.items())


def _scale(form, factor):
    if form is None:
        return None
    return {term: coeff * factor for term, coeff in form.items()}


def _combine(left, right, sign):
    out = dict(left)
    out.setdefault(CONST, 0)
    for term, coeff in right.items():
        out[term] = out.get(term, 0) + sign * coeff
    return {term: coeff for term, coeff in out.items()
            if term == CONST or coeff != 0}


def uses_in_tree(expr, local):
    """pcs of ``("use", local, pc, _)`` wrappers anywhere in *expr*."""
    found = []
    _walk_uses(expr, local, found)
    return found


def _walk_uses(expr, local, found):
    if not isinstance(expr, tuple):
        return
    if expr and expr[0] == "use":
        if expr[1] == local:
            found.append(expr[2])
        _walk_uses(expr[3], local, found)
        return
    for part in expr:
        if isinstance(part, tuple):
            _walk_uses(part, local, found)
