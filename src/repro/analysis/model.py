"""Typed results of the static dependence analysis.

Three layers, mirroring the dynamic side's report model:

* :class:`Dependence` — one predicted loop-carried RAW arc (or a proven
  absence), classified on the ``absent < may < must`` lattice;
* :class:`LoopAnalysis` — everything the analyzer concluded about one
  natural loop: carried-local kinds, dependences, the whole-loop
  classification, and (optionally) the prune decision;
* :class:`AnalysisReport` — the per-program bundle that rides
  :class:`~repro.core.pipeline.JrpmReport` (schema version 4+) and the
  ``analyze`` service verb.

After a TEST profiling run, :meth:`AnalysisReport.cross_check` diffs
every loop's predicted arcs against the profiler's observed RAW arcs
(:class:`~repro.tracer.stats.LoopStats.arcs`), recording per-loop
``confirmed`` / ``unobserved`` / ``missed`` agreement — the static
vs. dynamic comparison in ``docs/analysis.md``.
"""

from ..serialize import site_from_jsonable, site_to_jsonable

#: Classification lattice for carried dependences (weakest first).
ABSENT = "absent"
MAY = "may"
MUST = "must"

#: Lattice order used to fold per-dependence verdicts into a per-loop
#: verdict (the strongest classification wins).
LATTICE = (ABSENT, MAY, MUST)

#: Carried-local kinds, mirroring :mod:`repro.jit.patterns` — a local
#: classified as anything but ``general`` produces no inter-thread
#: communication after STL recompilation, hence no dependence arcs.
KIND_INDUCTOR = "inductor"
KIND_RESETABLE = "resetable"
KIND_REDUCTION = "reduction"
KIND_GENERAL = "general"


def strongest(classifications):
    """Fold a set of lattice values into the strongest one."""
    best = ABSENT
    for value in classifications:
        if LATTICE.index(value) > LATTICE.index(best):
            best = value
    return best


class Dependence:
    """One predicted loop-carried RAW dependence (or proven absence).

    ``kind`` says what carries the value: ``local`` (a frame slot),
    ``static`` (a static field), ``field`` (an instance field through a
    loop-invariant base) or ``array`` (an element through a
    loop-invariant base).  ``store_line``/``load_line`` anchor the arc
    to source lines — the same identity the TEST profiler's arc sites
    carry — and ``distance`` is the iteration distance when statically
    known (``1`` for scalar recurrences, ``d`` for ``a[i] <- a[i-d]``).
    """

    __slots__ = ("kind", "classification", "target", "store_pc",
                 "load_pc", "store_line", "load_line", "distance",
                 "local", "reason")

    def __init__(self, kind, classification, target, store_pc=None,
                 load_pc=None, store_line=None, load_line=None,
                 distance=None, local=None, reason=""):
        self.kind = kind
        self.classification = classification
        self.target = target            # human-readable, e.g. "Main.total"
        self.store_pc = store_pc
        self.load_pc = load_pc
        self.store_line = store_line
        self.load_line = load_line
        self.distance = distance
        self.local = local              # bytecode local index (kind local)
        self.reason = reason

    def __repr__(self):
        return "<Dependence %s %s %s>" % (self.kind, self.classification,
                                          self.target)

    def to_dict(self):
        """JSON-safe dict of the arc facts."""
        return {"kind": self.kind,
                "classification": self.classification,
                "target": self.target,
                "store_pc": self.store_pc, "load_pc": self.load_pc,
                "store_line": self.store_line,
                "load_line": self.load_line,
                "distance": self.distance, "local": self.local,
                "reason": self.reason}

    @staticmethod
    def from_dict(data):
        """Inverse of :meth:`to_dict`."""
        return Dependence(
            data["kind"], data["classification"], data["target"],
            store_pc=data["store_pc"], load_pc=data["load_pc"],
            store_line=data["store_line"], load_line=data["load_line"],
            distance=data["distance"], local=data["local"],
            reason=data["reason"])


class CarriedRegister:
    """Bytecode-level classification of one loop-carried local."""

    __slots__ = ("local", "kind", "step")

    def __init__(self, local, kind, step=None):
        self.local = local              # bytecode local index
        self.kind = kind                # KIND_* constant
        self.step = step                # per-iteration step (inductors)

    def __repr__(self):
        return "<CarriedRegister %d %s>" % (self.local, self.kind)

    def to_dict(self):
        """JSON-safe dict."""
        return {"local": self.local, "kind": self.kind,
                "step": self.step}

    @staticmethod
    def from_dict(data):
        """Inverse of :meth:`to_dict`."""
        return CarriedRegister(data["local"], data["kind"],
                               step=data["step"])


class LoopAnalysis:
    """The analyzer's verdict on one natural loop.

    Keyed by ``(method, ordinal)`` — the same stable identity the IR
    annotator's :class:`~repro.jit.annotate.LoopMeta` carries, guarded
    by the header ``line`` so a bytecode/IR ordinal drift can never
    silently mis-join the two worlds.
    """

    __slots__ = ("method", "ordinal", "line", "depth", "classification",
                 "carried", "deps", "has_calls", "body_cost",
                 "max_dep_cost", "speedup_bound", "pruned",
                 "prune_reason", "agreement")

    def __init__(self, method, ordinal, line, depth):
        self.method = method
        self.ordinal = ordinal
        self.line = line
        self.depth = depth
        self.classification = ABSENT
        self.carried = []               # [CarriedRegister]
        self.deps = []                  # [Dependence]
        #: loop body contains calls/monitors — memory facts are capped
        #: at ``may`` because the analysis is intraprocedural
        self.has_calls = False
        self.body_cost = 0              # cost-weighted body span
        self.max_dep_cost = 0           # longest must-dependence chain
        self.speedup_bound = None       # body_cost / max_dep_cost
        self.pruned = False
        self.prune_reason = None
        #: filled by :meth:`AnalysisReport.cross_check` —
        #: ``{"loop_id", "confirmed", "unobserved", "missed"}``
        self.agreement = None

    @property
    def key(self):
        """The join key shared with the IR annotator's loop metadata."""
        return (self.method, self.ordinal)

    def finalize(self):
        """Fold the per-dependence lattice values into the loop verdict
        (calls cap an otherwise-absent loop at ``may``)."""
        verdict = strongest(dep.classification for dep in self.deps)
        if self.has_calls and verdict == ABSENT:
            verdict = MAY
        self.classification = verdict
        return verdict

    def must_deps(self):
        """The must-dependences (what pruning reasons over)."""
        return [dep for dep in self.deps if dep.classification == MUST]

    def __repr__(self):
        return "<LoopAnalysis %s#%d %s%s>" % (
            self.method, self.ordinal, self.classification,
            " pruned" if self.pruned else "")

    def to_dict(self):
        """JSON-safe dict of every conclusion about this loop."""
        return {
            "method": self.method,
            "ordinal": self.ordinal,
            "line": self.line,
            "depth": self.depth,
            "classification": self.classification,
            "carried": [reg.to_dict() for reg in self.carried],
            "deps": [dep.to_dict() for dep in self.deps],
            "has_calls": self.has_calls,
            "body_cost": self.body_cost,
            "max_dep_cost": self.max_dep_cost,
            "speedup_bound": self.speedup_bound,
            "pruned": self.pruned,
            "prune_reason": self.prune_reason,
            "agreement": site_to_jsonable(self.agreement)
                         if isinstance(self.agreement, tuple)
                         else self.agreement,
        }

    @staticmethod
    def from_dict(data):
        """Inverse of :meth:`to_dict`."""
        loop = LoopAnalysis(data["method"], data["ordinal"],
                            data["line"], data["depth"])
        loop.classification = data["classification"]
        loop.carried = [CarriedRegister.from_dict(reg)
                        for reg in data["carried"]]
        loop.deps = [Dependence.from_dict(dep) for dep in data["deps"]]
        loop.has_calls = data["has_calls"]
        loop.body_cost = data["body_cost"]
        loop.max_dep_cost = data["max_dep_cost"]
        loop.speedup_bound = data["speedup_bound"]
        loop.pruned = data["pruned"]
        loop.prune_reason = data["prune_reason"]
        loop.agreement = data["agreement"]
        return loop


class AnalysisReport:
    """Program-level bundle of :class:`LoopAnalysis` results."""

    def __init__(self, threshold=1.2):
        self.loops = []                 # [LoopAnalysis], program order
        #: the speedup bound below which must-dependence loops prune
        self.threshold = threshold
        self.methods_analyzed = 0

    def by_key(self):
        """``{(method, ordinal): LoopAnalysis}``."""
        return {loop.key: loop for loop in self.loops}

    def pruned(self):
        """The loops the static pass ruled out before profiling."""
        return [loop for loop in self.loops if loop.pruned]

    def prune_set(self):
        """``{(method, ordinal): (line, reason, locals)}`` consumed by
        :func:`repro.jit.compiler.compile_annotated` — ``line`` guards
        the join, ``locals`` lists the bytecode local indices whose
        must-dependences justified the prune (the annotator re-checks
        them against its own carried-kind classification and ignores
        the prune if any turned out compiler-eliminable)."""
        decisions = {}
        for loop in self.pruned():
            involved = sorted({dep.local for dep in loop.must_deps()
                               if dep.kind == "local"
                               and dep.local is not None})
            decisions[loop.key] = (loop.line, loop.prune_reason,
                                   tuple(involved))
        return decisions

    def counts(self):
        """``{classification: loop count}`` over the whole program."""
        totals = {ABSENT: 0, MAY: 0, MUST: 0}
        for loop in self.loops:
            totals[loop.classification] += 1
        return totals

    # -- static vs. dynamic cross-check -----------------------------------
    def cross_check(self, loop_table, loop_stats):
        """Diff predicted arcs against TEST's observed RAW arcs.

        ``loop_table`` maps loop ids to
        :class:`~repro.jit.annotate.LoopMeta`; ``loop_stats`` maps loop
        ids to :class:`~repro.tracer.stats.LoopStats`.  For every loop
        the analyzer saw *and* the annotator identified (same method,
        ordinal and header line), fills ``agreement`` with:

        * ``confirmed``  — predicted arcs TEST also observed,
        * ``unobserved`` — predicted arcs TEST never saw (TEST records
          only each thread's *critical* arc, so this is expected for
          secondary dependences and for loops that never ran),
        * ``allocator``  — observed arcs flowing through allocator
          metadata; the §5.2 parallel allocator makes them vanish at
          TLS time (the selector ignores them for the same reason),
          and VM-internal state is invisible to a bytecode analysis,
        * ``privatized`` — observed arcs on carried locals the IR
          annotator classifies as inductor/reduction/resetable: real
          RAW flow at profile time, but STL codegen privatizes the
          local so it can never violate,
        * ``missed``     — any other observed arc the analyzer did not
          predict (the anomaly worth investigating: either imprecision
          here or a cross-method arc the intraprocedural pass cannot
          see).

        Returns the number of loops cross-checked.
        """
        meta_by_key = {}
        for loop_id, meta in loop_table.items():
            meta_by_key[(meta.method_name, meta.ordinal)] = (loop_id,
                                                             meta)
        checked = 0
        for loop in self.loops:
            entry = meta_by_key.get(loop.key)
            if entry is None:
                continue
            loop_id, meta = entry
            if meta.line != loop.line:
                continue                # ordinal drift: refuse the join
            stats = loop_stats.get(loop_id)
            observed = dict(stats.arcs) if stats is not None else {}
            loop.agreement = self._agree_one(loop, meta, loop_id,
                                             observed)
            checked += 1
        return checked

    def _agree_one(self, loop, meta, loop_id, observed_arcs):
        """Agreement record for one loop (see :meth:`cross_check`)."""
        slot_of = {reg - 1: slot
                   for reg, slot in meta.carried_slots.items()}
        # what STL codegen will do to each communicated slot — the IR
        # classification is authoritative (it is what gets compiled)
        kind_by_slot = {}
        for reg, info in meta.carried_kinds.items():
            slot = meta.carried_slots.get(reg)
            if slot is not None:
                kind_by_slot[slot] = info.kind
        static_kind_by_slot = {}
        for reg in loop.carried:
            slot = slot_of.get(reg.local)
            if slot is not None:
                static_kind_by_slot[slot] = reg.kind
        predicted = []                  # (matcher, dep)
        for dep in loop.deps:
            if dep.classification == ABSENT:
                continue
            if dep.kind == "local":
                slot = slot_of.get(dep.local)
                predicted.append((("local", slot), dep))
            else:
                predicted.append((("memory", dep.store_line,
                                   dep.load_line), dep))
        confirmed, allocator, privatized, missed = [], [], [], []
        matched = set()
        for (store_site, load_site), arc in observed_arcs.items():
            matcher = self._observed_matcher(load_site, store_site,
                                             loop.method)
            hit = None
            for index, (key, dep) in enumerate(predicted):
                if index in matched:
                    continue
                if key == matcher:
                    hit = index
                    break
            record = {"store_site": site_to_jsonable(store_site),
                      "load_site": site_to_jsonable(load_site),
                      "count": arc.count}
            if hit is not None:
                matched.add(hit)
                record["predicted"] = predicted[hit][1].to_dict()
                confirmed.append(record)
            elif getattr(arc, "allocator_fraction", 0.0) > 0.5:
                allocator.append(record)
            elif matcher[0] == "local" and kind_by_slot.get(
                    matcher[1], KIND_GENERAL) != KIND_GENERAL:
                record["kind"] = kind_by_slot[matcher[1]]
                privatized.append(record)
            else:
                if matcher[0] == "local":
                    static_kind = static_kind_by_slot.get(matcher[1])
                    if static_kind and static_kind != KIND_GENERAL:
                        # the static side proved the local privatizable
                        # but the IR matcher could not, so STL codegen
                        # communicates it: a kind divergence, not an
                        # analyzer soundness hole
                        record["static_kind"] = static_kind
                missed.append(record)
        unobserved = [dep.to_dict() for index, (_, dep)
                      in enumerate(predicted) if index not in matched]
        return {"loop_id": loop_id,
                "observed_arcs": len(observed_arcs),
                "confirmed": confirmed,
                "unobserved": unobserved,
                "allocator": allocator,
                "privatized": privatized,
                "missed": missed}

    @staticmethod
    def _observed_matcher(load_site, store_site, method):
        """Reduce a profiler arc to the predicted-arc key space:
        ``("local", slot)`` for carried-local arcs,
        ``("memory", store_line, load_line)`` for memory arcs (site
        keys are ``(frame, line, op, imm)`` tuples; lines are the
        stable half)."""
        if isinstance(load_site, tuple) and load_site \
                and load_site[0] == "local":
            return ("local", load_site[2])
        store_line = None
        if isinstance(store_site, tuple) and len(store_site) >= 2 \
                and store_site[0] == method:
            store_line = store_site[1]
        load_line = None
        if isinstance(load_site, tuple) and len(load_site) >= 2 \
                and load_site[0] == method:
            load_line = load_site[1]
        return ("memory", store_line, load_line)

    # -- serialization ----------------------------------------------------
    def to_dict(self):
        """JSON-safe dict (nested in ``JrpmReport.to_dict()['analysis']``
        from report schema version 4 on)."""
        return {
            "threshold": self.threshold,
            "methods_analyzed": self.methods_analyzed,
            "loops": [loop.to_dict() for loop in self.loops],
            "counts": self.counts(),
        }

    @staticmethod
    def from_dict(data):
        """Inverse of :meth:`to_dict` (``counts`` is derived)."""
        report = AnalysisReport(threshold=data["threshold"])
        report.methods_analyzed = data["methods_analyzed"]
        report.loops = [LoopAnalysis.from_dict(loop)
                        for loop in data["loops"]]
        return report


# ---------------------------------------------------------------------------
# schema validation (scripts/check_analysis_report.py, tests)
# ---------------------------------------------------------------------------

_DEP_KEYS = frozenset(Dependence.__slots__)
_LOOP_KEYS = frozenset(
    ("method", "ordinal", "line", "depth", "classification", "carried",
     "deps", "has_calls", "body_cost", "max_dep_cost", "speedup_bound",
     "pruned", "prune_reason", "agreement"))


def validate_analysis_dict(data):
    """Yield problem strings for an ``AnalysisReport.to_dict()`` payload
    (no yields means the payload is well-formed)."""
    if not isinstance(data, dict):
        yield "analysis payload must be an object"
        return
    for key in ("threshold", "methods_analyzed", "loops", "counts"):
        if key not in data:
            yield "missing top-level key %r" % key
    loops = data.get("loops")
    if not isinstance(loops, list):
        yield "loops must be a list"
        return
    for index, loop in enumerate(loops):
        label = "loops[%d]" % index
        if not isinstance(loop, dict):
            yield "%s is not an object" % label
            continue
        missing = _LOOP_KEYS - set(loop)
        if missing:
            yield "%s: missing %s" % (label,
                                      ", ".join(sorted(missing)))
            continue
        if loop["classification"] not in LATTICE:
            yield "%s: bad classification %r" % (
                label, loop["classification"])
        if loop["pruned"] and not loop["prune_reason"]:
            yield "%s: pruned without a prune_reason" % label
        if loop["pruned"] and loop["classification"] != MUST:
            yield "%s: pruned but classified %r (only must-dependence " \
                  "loops may prune)" % (label, loop["classification"])
        for dep_index, dep in enumerate(loop["deps"]):
            dep_label = "%s.deps[%d]" % (label, dep_index)
            if not isinstance(dep, dict):
                yield "%s is not an object" % dep_label
                continue
            dep_missing = _DEP_KEYS - set(dep)
            if dep_missing:
                yield "%s: missing %s" % (
                    dep_label, ", ".join(sorted(dep_missing)))
                continue
            if dep["classification"] not in LATTICE:
                yield "%s: bad classification %r" % (
                    dep_label, dep["classification"])
            if dep["kind"] not in ("local", "static", "field", "array"):
                yield "%s: bad kind %r" % (dep_label, dep["kind"])
        for reg_index, reg in enumerate(loop["carried"]):
            reg_label = "%s.carried[%d]" % (label, reg_index)
            if not isinstance(reg, dict) or "kind" not in reg:
                yield "%s: not a carried-register object" % reg_label
            elif reg["kind"] not in (KIND_INDUCTOR, KIND_RESETABLE,
                                     KIND_REDUCTION, KIND_GENERAL):
                yield "%s: bad kind %r" % (reg_label, reg["kind"])
        agreement = loop["agreement"]
        if agreement is not None:
            if not isinstance(agreement, dict):
                yield "%s: agreement is not an object" % label
            else:
                for key in ("loop_id", "confirmed", "unobserved",
                            "allocator", "privatized", "missed"):
                    if key not in agreement:
                        yield "%s: agreement missing %r" % (label, key)
    counts = data.get("counts")
    if isinstance(counts, dict) and isinstance(loops, list):
        real = {ABSENT: 0, MAY: 0, MUST: 0}
        for loop in loops:
            if isinstance(loop, dict) \
                    and loop.get("classification") in real:
                real[loop["classification"]] += 1
        if {k: counts.get(k) for k in real} != real:
            yield "counts do not match the per-loop classifications"
