"""Static method/program fingerprints for the profile repository.

The persistent profile DB (:mod:`repro.profdb`) keys stored TEST
profiles by *what code produced them*.  Two granularities:

* the **structural** fingerprint masks the values of ``ICONST`` /
  ``FCONST`` operands, so the small/default/large sizes of one
  registry workload — which differ only in embedded constants — hash
  to the same program key and their profiles can be merged into one
  cross-input consensus;
* the **exact** fingerprint keeps constant values, so a stored
  sequential measurement is only ever replayed for the byte-equivalent
  program it was measured on.

Per-method fingerprints are stored alongside each program entry: when a
method's structural hash changes between runs, every profile recorded
against loops of that method is invalidated (staleness is detected at
the *method* grain, not the whole program, so editing one method does
not throw away the profiles of the others).

Everything here is deterministic: :meth:`Program.all_methods` iterates
in sorted (class, method) order and instruction arguments are scalars,
strings or tuples of those, all with stable ``repr``.
"""

import hashlib

from ..bytecode.opcodes import Op

#: opcodes whose argument is a program constant (masked structurally)
_CONST_OPS = (Op.ICONST, Op.FCONST)


def _arg_token(instr, include_constants):
    """A deterministic text token for one instruction argument."""
    if instr.arg is None:
        return ""
    if not include_constants and instr.op in _CONST_OPS:
        return "<const>"
    return repr(instr.arg)


def method_fingerprint(method, include_constants=False):
    """SHA-256 hex digest of one method's code.

    With ``include_constants=False`` (the default, the *structural*
    form) ``ICONST``/``FCONST`` operand values are replaced by a
    placeholder so input-size constants do not perturb the hash; line
    numbers and every other operand participate, so any real edit to
    the method changes the digest.
    """
    digest = hashlib.sha256()
    digest.update(method.qualified_name.encode())
    digest.update(b"|%d|%d" % (method.max_locals,
                               1 if method.is_synchronized else 0))
    for instr in method.code:
        digest.update(("%s:%s:%s;" % (
            instr.op.name, _arg_token(instr, include_constants),
            instr.line)).encode())
    return digest.hexdigest()


def program_fingerprint(program, include_constants=False):
    """SHA-256 hex digest over every method of *program*.

    Combines the per-method fingerprints in the deterministic
    :meth:`Program.all_methods` order.  The structural form
    (``include_constants=False``) is the profile DB's program key; the
    exact form keys stored measurements to one specific input size.
    """
    digest = hashlib.sha256()
    for method in program.all_methods():
        digest.update(method.qualified_name.encode())
        digest.update(b"=")
        digest.update(method_fingerprint(
            method, include_constants=include_constants).encode())
        digest.update(b";")
    return digest.hexdigest()


def method_fingerprints(program):
    """``{qualified_name: structural fingerprint}`` for every method —
    the per-method staleness map stored with each profile-DB program
    entry."""
    return {method.qualified_name: method_fingerprint(method)
            for method in program.all_methods()}
