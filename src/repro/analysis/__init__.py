"""Static loop-carried dependence analysis over MiniJava bytecode.

Jrpm picks speculative loops purely from dynamic TEST profiles; this
package adds the static half of that synergy.  It classifies every
natural loop's carried dependences on the ``absent < may < must``
lattice, recognizes induction/reduction locals the STL compiler will
privatize anyway, prunes statically-hopeless STL candidates before the
tracer pays for them, and cross-checks its predicted violation arcs
against the profiler's observed RAW arcs (see ``docs/analysis.md``).
"""

from .deps import analyze_loop, analyze_method, analyze_program
from .fingerprint import (method_fingerprint, method_fingerprints,
                          program_fingerprint)
from .model import (ABSENT, AnalysisReport, CarriedRegister, Dependence,
                    KIND_GENERAL, KIND_INDUCTOR, KIND_REDUCTION,
                    KIND_RESETABLE, LATTICE, LoopAnalysis, MAY, MUST,
                    strongest, validate_analysis_dict)
from .stackflow import (Access, BlockFlow, CONST, LocalDef, LocalUse,
                        MethodFlow, flow_method, linearize,
                        uses_in_tree)

__all__ = [
    "ABSENT", "MAY", "MUST", "LATTICE", "strongest",
    "KIND_INDUCTOR", "KIND_RESETABLE", "KIND_REDUCTION", "KIND_GENERAL",
    "Dependence", "CarriedRegister", "LoopAnalysis", "AnalysisReport",
    "validate_analysis_dict",
    "Access", "BlockFlow", "CONST", "LocalDef", "LocalUse",
    "MethodFlow", "flow_method", "linearize", "uses_in_tree",
    "analyze_loop", "analyze_method", "analyze_program",
    "method_fingerprint", "method_fingerprints", "program_fingerprint",
]
