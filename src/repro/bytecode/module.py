"""Container model for compiled guest programs.

A :class:`Program` holds :class:`ClassDef` objects, which hold fields and
:class:`Method` objects.  This is the unit handed from the MiniJava
frontend to the microJIT compiler and to the reference interpreter.
"""

from ..errors import VerifyError


class Type:
    """A guest type: ``int``, ``float``, ``boolean``, a class, or an array."""

    __slots__ = ("base", "dims")

    def __init__(self, base, dims=0):
        self.base = base
        self.dims = dims

    # -- constructors -----------------------------------------------------
    @staticmethod
    def parse(text):
        dims = 0
        while text.endswith("[]"):
            text = text[:-2]
            dims += 1
        return Type(text, dims)

    def element(self):
        if self.dims == 0:
            raise ValueError("not an array type: %s" % self)
        return Type(self.base, self.dims - 1)

    def array_of(self):
        return Type(self.base, self.dims + 1)

    # -- predicates --------------------------------------------------------
    def is_int(self):
        return self.dims == 0 and self.base in ("int", "boolean")

    def is_float(self):
        return self.dims == 0 and self.base == "float"

    def is_numeric(self):
        return self.is_int() or self.is_float()

    def is_void(self):
        return self.dims == 0 and self.base == "void"

    def is_reference(self):
        return self.dims > 0 or self.base not in (
            "int", "float", "boolean", "void")

    def is_array(self):
        return self.dims > 0

    def __eq__(self, other):
        return (isinstance(other, Type) and self.base == other.base
                and self.dims == other.dims)

    def __hash__(self):
        return hash((self.base, self.dims))

    def __repr__(self):
        return self.base + "[]" * self.dims


INT = Type("int")
FLOAT = Type("float")
BOOLEAN = Type("boolean")
VOID = Type("void")
NULL = Type("null")


class Field:
    """A class field: name, type, static flag, and its word offset."""

    __slots__ = ("name", "type", "is_static", "offset", "owner")

    def __init__(self, name, ftype, is_static=False):
        self.name = name
        self.type = ftype
        self.is_static = is_static
        self.offset = None   # assigned by ClassDef.layout()
        self.owner = None

    def __repr__(self):
        kind = "static " if self.is_static else ""
        return "%s%s %s" % (kind, self.type, self.name)


class Method:
    """A compiled guest method."""

    __slots__ = ("name", "owner", "param_types", "return_type", "is_static",
                 "is_synchronized", "max_locals", "code", "local_names",
                 "_fast_table")

    def __init__(self, name, owner, param_types, return_type,
                 is_static=False, is_synchronized=False):
        self.name = name
        self.owner = owner          # ClassDef
        self.param_types = param_types
        self.return_type = return_type
        self.is_static = is_static
        self.is_synchronized = is_synchronized
        self.max_locals = 0
        self.code = []              # list[Instr]
        self.local_names = {}       # local index -> source name (debug)
        #: predecoded interpreter dispatch table, built lazily by
        #: :func:`repro.engine.bc_engine.bytecode_table`
        self._fast_table = None

    @property
    def num_params(self):
        """Number of local slots consumed by parameters (incl. ``this``)."""
        return len(self.param_types) + (0 if self.is_static else 1)

    @property
    def qualified_name(self):
        return "%s.%s" % (self.owner.name, self.name)

    def __repr__(self):
        return "<Method %s/%d>" % (self.qualified_name, len(self.code))


# Word size of the simulated machine, and object header size in bytes.
WORD = 4
HEADER_WORDS = 2          # [lock word, meta word (class id or array length)]
HEADER_BYTES = HEADER_WORDS * WORD


class ClassDef:
    """A guest class: fields, methods, optional superclass."""

    def __init__(self, name, superclass=None):
        self.name = name
        self.superclass = superclass          # ClassDef or None
        self.fields = {}                      # name -> Field (own only)
        self.methods = {}                     # name -> Method (own only)
        self.class_id = None                  # assigned by Program.seal()
        self._layout_done = False
        self.instance_size = HEADER_BYTES     # bytes, set by layout()

    # -- construction -------------------------------------------------------
    def add_field(self, field):
        if field.name in self.fields:
            raise VerifyError("duplicate field %s.%s" % (self.name, field.name))
        field.owner = self
        self.fields[field.name] = field
        return field

    def add_method(self, method):
        if method.name in self.methods:
            raise VerifyError(
                "duplicate method %s.%s" % (self.name, method.name))
        method.owner = self
        self.methods[method.name] = method
        return method

    # -- lookup (walks the superclass chain) ---------------------------------
    def find_field(self, name):
        cls = self
        while cls is not None:
            field = cls.fields.get(name)
            if field is not None:
                return field
            cls = cls.superclass
        return None

    def find_method(self, name):
        cls = self
        while cls is not None:
            method = cls.methods.get(name)
            if method is not None:
                return method
            cls = cls.superclass
        return None

    def is_subclass_of(self, other):
        cls = self
        while cls is not None:
            if cls is other:
                return True
            cls = cls.superclass
        return False

    # -- layout ---------------------------------------------------------------
    def layout(self):
        """Assign word offsets to instance fields (after the header)."""
        if self._layout_done:
            return
        if self.superclass is not None:
            self.superclass.layout()
            offset = self.superclass.instance_size
        else:
            offset = HEADER_BYTES
        for field in self.fields.values():
            if field.is_static:
                continue
            field.offset = offset
            offset += WORD
        self.instance_size = offset
        self._layout_done = True

    def all_instance_fields(self):
        """Instance fields including inherited ones, in offset order."""
        chain = []
        cls = self
        while cls is not None:
            chain.append(cls)
            cls = cls.superclass
        fields = []
        for cls in reversed(chain):
            fields.extend(f for f in cls.fields.values() if not f.is_static)
        return fields

    def __repr__(self):
        return "<ClassDef %s>" % self.name


class Program:
    """A complete guest program: a set of classes plus an entry point."""

    def __init__(self):
        self.classes = {}
        self.entry_class = None
        self.entry_method = "main"
        self._sealed = False

    def add_class(self, cls):
        if cls.name in self.classes:
            raise VerifyError("duplicate class %s" % cls.name)
        self.classes[cls.name] = cls
        return cls

    def get_class(self, name):
        cls = self.classes.get(name)
        if cls is None:
            raise VerifyError("unknown class %s" % name)
        return cls

    def resolve_method(self, class_name, method_name):
        method = self.get_class(class_name).find_method(method_name)
        if method is None:
            raise VerifyError(
                "unknown method %s.%s" % (class_name, method_name))
        return method

    def resolve_field(self, class_name, field_name):
        field = self.get_class(class_name).find_field(field_name)
        if field is None:
            raise VerifyError(
                "unknown field %s.%s" % (class_name, field_name))
        return field

    def seal(self):
        """Finalize layouts and class ids; must run before execution."""
        if self._sealed:
            return self
        for class_id, cls in enumerate(sorted(self.classes.values(),
                                              key=lambda c: c.name), start=1):
            cls.class_id = class_id
            cls.layout()
        self._class_by_id = {c.class_id: c for c in self.classes.values()}
        if self.entry_class is None:
            for cls in self.classes.values():
                method = cls.methods.get(self.entry_method)
                if method is not None and method.is_static:
                    self.entry_class = cls.name
                    break
        self._sealed = True
        return self

    def class_by_id(self, class_id):
        return self._class_by_id[class_id]

    def entry(self):
        self.seal()
        if self.entry_class is None:
            raise VerifyError("program has no static main method")
        return self.resolve_method(self.entry_class, self.entry_method)

    def all_methods(self):
        for cls in sorted(self.classes.values(), key=lambda c: c.name):
            for name in sorted(cls.methods):
                yield cls.methods[name]

    def bytecode_size(self):
        return sum(len(m.code) for m in self.all_methods())
