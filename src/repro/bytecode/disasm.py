"""Bytecode and IR disassemblers (debugging / teaching aids)."""

from .opcodes import Op


def disassemble_method(method):
    """Render one bytecode method as readable text."""
    qualifiers = []
    if method.is_static:
        qualifiers.append("static")
    if method.is_synchronized:
        qualifiers.append("synchronized")
    qualifiers.append(method.qualified_name)
    lines = ["%s (%d locals)" % (" ".join(qualifiers), method.max_locals)]
    targets = {instr.arg for instr in method.code if instr.is_branch()}
    for pc, instr in enumerate(method.code):
        marker = ">" if pc in targets else " "
        name = method.local_names.get(instr.arg) \
            if instr.op in (Op.LOAD, Op.STORE) else None
        suffix = ("   ; %s" % name) if name else ""
        lines.append("%s %4d: %s%s" % (marker, pc, instr, suffix))
    return "\n".join(lines)


def disassemble_program(program):
    """Render every method of a program."""
    program.seal()
    chunks = []
    for cls in sorted(program.classes.values(), key=lambda c: c.name):
        fields = ", ".join(str(f) for f in cls.fields.values())
        header = "class %s" % cls.name
        if cls.superclass is not None:
            header += " extends %s" % cls.superclass.name
        if fields:
            header += "  { %s }" % fields
        chunks.append(header)
        for name in sorted(cls.methods):
            chunks.append(disassemble_method(cls.methods[name]))
            chunks.append("")
    return "\n".join(chunks)


def disassemble_ir(code, title="ir"):
    """Render finalized IR with branch-target markers."""
    from ..jit.ir import BRANCH_IR_OPS
    targets = {instr.target for instr in code
               if instr.op in BRANCH_IR_OPS
               and isinstance(instr.target, int)}
    lines = [title]
    for index, instr in enumerate(code):
        marker = ">" if index in targets else " "
        lines.append("%s %4d: %s" % (marker, index, instr))
    return "\n".join(lines)


def disassemble_stl(descriptor):
    """Render an STL descriptor: slots, plumbing, and thread code."""
    lines = ["STL %d in %s" % (descriptor.stl_id, descriptor.method_name),
             "  frame: %d words, fp=r%d, iter=r%d, warm entry @%d"
             % (descriptor.frame_words, descriptor.fp_reg,
                descriptor.iter_reg, descriptor.warm_entry)]
    if descriptor.general_slots:
        lines.append("  communicated locals: "
                     + ", ".join("r%d@+%d" % (reg, off)
                                 for reg, off
                                 in sorted(descriptor.general_slots.items())))
    if descriptor.reductions:
        lines.append("  reductions: "
                     + ", ".join("r%d (%s, tmp r%d)"
                                 % (s.acc_reg, s.op_name, s.tmp_reg)
                                 for s in descriptor.reductions))
    if descriptor.resetables:
        lines.append("  reset-able inductors: "
                     + ", ".join("r%d step %d" % (s.reg, s.step)
                                 for s in descriptor.resetables))
    if descriptor.sync_lock_off is not None:
        lines.append("  sync lock slot: +%d" % descriptor.sync_lock_off)
    lines.append(disassemble_ir(descriptor.thread_code, "  thread code:"))
    return "\n".join(lines)
