"""Structural bytecode verifier.

Checks performed per method:

* branch targets are in range,
* local indices are within ``max_locals``,
* referenced classes, fields, methods and intrinsics resolve,
* the operand stack has a consistent depth at every join point and is
  empty when the method returns ``void`` (depth 1 for value returns).

This mirrors (a small part of) JVM bytecode verification and protects
the microJIT's abstract-stack translator, which relies on consistent
depths to merge values at control-flow joins.
"""

from ..errors import VerifyError
from ..vm import intrinsics
from .opcodes import COND_BRANCH_OPS, Op, STACK_EFFECTS, TERMINATOR_OPS


def _stack_effect(program, instr):
    op = instr.op
    if op == Op.INVOKESTATIC:
        callee = program.resolve_method(*instr.arg)
        return -len(callee.param_types) + (
            0 if callee.return_type.is_void() else 1)
    if op == Op.INVOKEVIRTUAL:
        callee = program.resolve_method(*instr.arg)
        return -len(callee.param_types) - 1 + (
            0 if callee.return_type.is_void() else 1)
    if op == Op.INTRINSIC:
        name, nargs = instr.arg
        intrinsic = intrinsics.lookup(name)
        if intrinsic.nargs != nargs:
            raise VerifyError("intrinsic %s expects %d args, got %d"
                              % (name, intrinsic.nargs, nargs))
        return -nargs + (1 if intrinsic.has_result() else 0)
    return STACK_EFFECTS[op]


def verify_method(program, method):
    code = method.code
    if not code:
        raise VerifyError("%s has no code" % method.qualified_name)
    last = code[-1]
    if last.op not in TERMINATOR_OPS:
        raise VerifyError("%s does not end in a terminator"
                          % method.qualified_name)

    depths = [None] * len(code)
    worklist = [(0, 0)]
    while worklist:
        pc, depth = worklist.pop()
        while True:
            if pc < 0 or pc >= len(code):
                raise VerifyError("%s: pc %d out of range"
                                  % (method.qualified_name, pc))
            if depths[pc] is not None:
                if depths[pc] != depth:
                    raise VerifyError(
                        "%s: inconsistent stack depth at %d (%d vs %d)"
                        % (method.qualified_name, pc, depths[pc], depth))
                break
            depths[pc] = depth
            instr = code[pc]
            op = instr.op

            if op in (Op.LOAD, Op.STORE):
                if not 0 <= instr.arg < method.max_locals:
                    raise VerifyError("%s: local %d out of range at %d"
                                      % (method.qualified_name, instr.arg, pc))
            elif op == Op.IINC:
                index, _delta = instr.arg
                if not 0 <= index < method.max_locals:
                    raise VerifyError("%s: local %d out of range at %d"
                                      % (method.qualified_name, index, pc))
            elif op == Op.NEW:
                program.get_class(instr.arg)
            elif op in (Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC, Op.PUTSTATIC):
                field = program.resolve_field(*instr.arg)
                wants_static = op in (Op.GETSTATIC, Op.PUTSTATIC)
                if field.is_static != wants_static:
                    raise VerifyError(
                        "%s: field %s static mismatch at %d"
                        % (method.qualified_name, instr.arg, pc))

            effect = _stack_effect(program, instr)
            pops = max(0, -effect)
            if depth < pops and op not in (Op.DUP, Op.DUP_X1, Op.SWAP):
                raise VerifyError("%s: stack underflow at %d (%s)"
                                  % (method.qualified_name, pc, instr))
            if op == Op.DUP and depth < 1:
                raise VerifyError("%s: DUP on empty stack at %d"
                                  % (method.qualified_name, pc))
            if op in (Op.DUP_X1, Op.SWAP) and depth < 2:
                raise VerifyError("%s: %s needs two values at %d"
                                  % (method.qualified_name, op.name, pc))
            depth += effect

            if op == Op.RETURN:
                if depth != 0:
                    raise VerifyError(
                        "%s: non-empty stack (%d) at RETURN (pc %d)"
                        % (method.qualified_name, depth, pc))
                break
            if op == Op.RETURN_VALUE:
                if depth != 0:
                    raise VerifyError(
                        "%s: stack depth %d after RETURN_VALUE (pc %d)"
                        % (method.qualified_name, depth, pc))
                if method.return_type.is_void():
                    raise VerifyError("%s: value return from void method"
                                      % method.qualified_name)
                break
            if op == Op.GOTO:
                pc = instr.arg
                continue
            if op in COND_BRANCH_OPS:
                worklist.append((instr.arg, depth))
            pc += 1
    return depths


def verify_program(program):
    """Verify every method; returns the program for chaining."""
    program.seal()
    for method in program.all_methods():
        verify_method(program, method)
    return program
