"""Structural bytecode verifier and bytecode-level control-flow graphs.

Checks performed per method:

* branch targets are in range,
* local indices are within ``max_locals``,
* referenced classes, fields, methods and intrinsics resolve,
* the operand stack has a consistent depth at every join point and is
  empty when the method returns ``void`` (depth 1 for value returns).

This mirrors (a small part of) JVM bytecode verification and protects
the microJIT's abstract-stack translator, which relies on consistent
depths to merge values at control-flow joins.

The second half of the module is the **bytecode CFG**: basic blocks
over raw ``Instr`` lists, dominators, back edges and natural loops —
the structural substrate the static dependence analyzer
(:mod:`repro.analysis`) builds on.  It deliberately mirrors the IR-level
CFG in :mod:`repro.jit.cfg` (same loop-identification rules, same
unreachable-block discipline) so that bytecode loop ordinals line up
with the annotator's IR loop ordinals.
"""

from ..errors import VerifyError
from ..vm import intrinsics
from .opcodes import BRANCH_OPS, COND_BRANCH_OPS, Op, STACK_EFFECTS, \
    TERMINATOR_OPS


def _stack_effect(program, instr):
    op = instr.op
    if op == Op.INVOKESTATIC:
        callee = program.resolve_method(*instr.arg)
        return -len(callee.param_types) + (
            0 if callee.return_type.is_void() else 1)
    if op == Op.INVOKEVIRTUAL:
        callee = program.resolve_method(*instr.arg)
        return -len(callee.param_types) - 1 + (
            0 if callee.return_type.is_void() else 1)
    if op == Op.INTRINSIC:
        name, nargs = instr.arg
        intrinsic = intrinsics.lookup(name)
        if intrinsic.nargs != nargs:
            raise VerifyError("intrinsic %s expects %d args, got %d"
                              % (name, intrinsic.nargs, nargs))
        return -nargs + (1 if intrinsic.has_result() else 0)
    return STACK_EFFECTS[op]


def verify_method(program, method):
    code = method.code
    if not code:
        raise VerifyError("%s has no code" % method.qualified_name)
    last = code[-1]
    if last.op not in TERMINATOR_OPS:
        raise VerifyError("%s does not end in a terminator"
                          % method.qualified_name)

    depths = [None] * len(code)
    worklist = [(0, 0)]
    while worklist:
        pc, depth = worklist.pop()
        while True:
            if pc < 0 or pc >= len(code):
                raise VerifyError("%s: pc %d out of range"
                                  % (method.qualified_name, pc))
            if depths[pc] is not None:
                if depths[pc] != depth:
                    raise VerifyError(
                        "%s: inconsistent stack depth at %d (%d vs %d)"
                        % (method.qualified_name, pc, depths[pc], depth))
                break
            depths[pc] = depth
            instr = code[pc]
            op = instr.op

            if op in (Op.LOAD, Op.STORE):
                if not 0 <= instr.arg < method.max_locals:
                    raise VerifyError("%s: local %d out of range at %d"
                                      % (method.qualified_name, instr.arg, pc))
            elif op == Op.IINC:
                index, _delta = instr.arg
                if not 0 <= index < method.max_locals:
                    raise VerifyError("%s: local %d out of range at %d"
                                      % (method.qualified_name, index, pc))
            elif op == Op.NEW:
                program.get_class(instr.arg)
            elif op in (Op.GETFIELD, Op.PUTFIELD, Op.GETSTATIC, Op.PUTSTATIC):
                field = program.resolve_field(*instr.arg)
                wants_static = op in (Op.GETSTATIC, Op.PUTSTATIC)
                if field.is_static != wants_static:
                    raise VerifyError(
                        "%s: field %s static mismatch at %d"
                        % (method.qualified_name, instr.arg, pc))

            effect = _stack_effect(program, instr)
            pops = max(0, -effect)
            if depth < pops and op not in (Op.DUP, Op.DUP_X1, Op.SWAP):
                raise VerifyError("%s: stack underflow at %d (%s)"
                                  % (method.qualified_name, pc, instr))
            if op == Op.DUP and depth < 1:
                raise VerifyError("%s: DUP on empty stack at %d"
                                  % (method.qualified_name, pc))
            if op in (Op.DUP_X1, Op.SWAP) and depth < 2:
                raise VerifyError("%s: %s needs two values at %d"
                                  % (method.qualified_name, op.name, pc))
            depth += effect

            if op == Op.RETURN:
                if depth != 0:
                    raise VerifyError(
                        "%s: non-empty stack (%d) at RETURN (pc %d)"
                        % (method.qualified_name, depth, pc))
                break
            if op == Op.RETURN_VALUE:
                if depth != 0:
                    raise VerifyError(
                        "%s: stack depth %d after RETURN_VALUE (pc %d)"
                        % (method.qualified_name, depth, pc))
                if method.return_type.is_void():
                    raise VerifyError("%s: value return from void method"
                                      % method.qualified_name)
                break
            if op == Op.GOTO:
                pc = instr.arg
                continue
            if op in COND_BRANCH_OPS:
                worklist.append((instr.arg, depth))
            pc += 1
    return depths


def verify_program(program):
    """Verify every method; returns the program for chaining."""
    program.seal()
    for method in program.all_methods():
        verify_method(program, method)
    return program


# ---------------------------------------------------------------------------
# bytecode control-flow graph
# ---------------------------------------------------------------------------

#: Opcodes that may raise a guest exception (null dereference, division
#: by zero, out-of-bounds index, negative array size, unlocked monitor).
#: A trap abruptly completes the whole method — there is no handler
#: table in this ISA — so every trapping instruction is an *implicit
#: exception edge* out of its enclosing loops and method.
TRAP_OPS = frozenset({
    Op.IDIV, Op.IREM,
    Op.ARRAYLENGTH, Op.IALOAD, Op.IASTORE, Op.FALOAD, Op.FASTORE,
    Op.AALOAD, Op.AASTORE,
    Op.NEWARRAY_I, Op.NEWARRAY_F, Op.NEWARRAY_A,
    Op.GETFIELD, Op.PUTFIELD,
    Op.INVOKEVIRTUAL,
    Op.MONITORENTER, Op.MONITOREXIT,
})


class BasicBlock:
    """A maximal straight-line bytecode run ``code[start:end]``."""

    __slots__ = ("bid", "start", "end", "succs", "preds")

    def __init__(self, bid, start):
        self.bid = bid
        self.start = start          # pc of the first instruction
        self.end = start            # pc just past the last instruction
        self.succs = []
        self.preds = []

    def pcs(self):
        """The block's instruction pcs, in execution order."""
        return range(self.start, self.end)

    def __repr__(self):
        return "B%d[%d:%d]" % (self.bid, self.start, self.end)


class MethodCFG:
    """Control-flow graph of one bytecode method."""

    def __init__(self, method, blocks, block_at):
        self.method = method
        self.blocks = blocks
        self.block_at = block_at    # leader pc -> block id
        self.entry = 0

    def block_of(self, pc):
        """The block containing *pc* (bisect over sorted starts)."""
        lo, hi = 0, len(self.blocks) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self.blocks[mid].start <= pc:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def trap_pcs(self, block_ids=None):
        """pcs of potentially-trapping instructions (implicit exception
        edges) in the given blocks (default: the whole method)."""
        ids = range(len(self.blocks)) if block_ids is None else block_ids
        code = self.method.code
        return [pc for bid in sorted(ids)
                for pc in self.blocks[bid].pcs()
                if code[pc].op in TRAP_OPS]

    def __len__(self):
        return len(self.blocks)


class BytecodeLoop:
    """A natural loop over bytecode blocks.

    ``ordinal`` is the loop's stable position within its method —
    assigned by :func:`natural_loops` with the same sort rule the
    IR annotator uses (header position, then body size), so a bytecode
    loop and the annotator's :class:`~repro.jit.annotate.LoopMeta` for
    the same source loop share ``(method, ordinal)``.
    """

    __slots__ = ("header", "blocks", "backedges", "ordinal", "parent",
                 "depth", "exits", "trap_exits")

    def __init__(self, header, blocks, backedges):
        self.header = header        # block id
        self.blocks = blocks        # frozenset of block ids
        self.backedges = backedges  # [(tail bid, header bid)]
        self.ordinal = None
        self.parent = None          # enclosing BytecodeLoop or None
        self.depth = 1
        self.exits = []             # [(bid in loop, bid outside)]
        self.trap_exits = []        # pcs of trapping instrs inside

    def __repr__(self):
        return "<BytecodeLoop #%s hdr=B%d blocks=%d>" % (
            self.ordinal, self.header, len(self.blocks))


def build_cfg(method):
    """Partition a verified method's code into basic blocks.

    Leaders: pc 0, every branch target, and every instruction after a
    branch or terminator.  Blocks ending in a conditional branch get
    (branch target, fallthrough) successors in that order; ``GOTO``
    gets its target; returns get none.
    """
    code = method.code
    if not code:
        raise VerifyError("%s has no code" % method.qualified_name)
    leaders = {0}
    for pc, instr in enumerate(code):
        if instr.op in BRANCH_OPS:
            leaders.add(instr.arg)
            if pc + 1 < len(code):
                leaders.add(pc + 1)
        elif instr.op in TERMINATOR_OPS and pc + 1 < len(code):
            leaders.add(pc + 1)
    blocks = []
    block_at = {}
    for start in sorted(leaders):
        block = BasicBlock(len(blocks), start)
        block_at[start] = block.bid
        blocks.append(block)
    for block in blocks:
        nxt = block.bid + 1
        block.end = blocks[nxt].start if nxt < len(blocks) else len(code)
    for block in blocks:
        last = code[block.end - 1]
        if last.op == Op.GOTO:
            block.succs.append(block_at[last.arg])
        elif last.op in COND_BRANCH_OPS:
            block.succs.append(block_at[last.arg])
            if block.end < len(code):
                block.succs.append(block_at[block.end])
        elif last.op in (Op.RETURN, Op.RETURN_VALUE):
            pass
        elif block.end < len(code):
            block.succs.append(block_at[block.end])
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.bid)
    return MethodCFG(method, blocks, block_at)


def reachable_blocks(cfg):
    """Block ids reachable from the method entry."""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        for succ in cfg.blocks[bid].succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def compute_dominators(cfg):
    """Iterative dominator sets; one frozenset per block.

    Unreachable blocks get empty dominator sets so dead code (e.g. a
    block only reachable through a removed edge) can neither define
    back edges nor join loop bodies — the same discipline as the IR
    CFG in :mod:`repro.jit.cfg`.
    """
    reachable = reachable_blocks(cfg)
    everything = frozenset(reachable)
    dom = [everything if bid in reachable else frozenset()
           for bid in range(len(cfg.blocks))]
    dom[cfg.entry] = frozenset([cfg.entry])
    changed = True
    while changed:
        changed = False
        for bid in range(len(cfg.blocks)):
            if bid == cfg.entry or bid not in reachable:
                continue
            preds = [p for p in cfg.blocks[bid].preds if p in reachable]
            if not preds:
                continue
            new = None
            for pred in preds:
                new = dom[pred] if new is None else (new & dom[pred])
            new = (new or frozenset()) | {bid}
            if new != dom[bid]:
                dom[bid] = new
                changed = True
    return dom


def back_edges(cfg, dom=None):
    """``(tail, head)`` edges where the head dominates the tail."""
    if dom is None:
        dom = compute_dominators(cfg)
    edges = []
    for block in cfg.blocks:
        for succ in block.succs:
            if succ in dom[block.bid]:
                edges.append((block.bid, succ))
    return edges


def natural_loops(cfg):
    """Natural loops with stable ordinals (loops sharing a header are
    merged, exactly as in :func:`repro.jit.cfg.find_natural_loops`).

    Each loop also records its normal ``exits`` and its ``trap_exits``
    — pcs of instructions inside the body that can raise a guest
    exception and thereby leave the loop abruptly.
    """
    dom = compute_dominators(cfg)
    reachable = reachable_blocks(cfg)
    by_header = {}
    for tail, header in back_edges(cfg, dom):
        body = _loop_body(cfg, header, tail, reachable)
        loop = by_header.get(header)
        if loop is None:
            by_header[header] = BytecodeLoop(header, body,
                                             [(tail, header)])
        else:
            loop.blocks = loop.blocks | body
            loop.backedges.append((tail, header))
    loops = sorted(by_header.values(), key=lambda lp: len(lp.blocks))
    _assign_nesting(loops)
    ordered = sorted(loops, key=lambda lp: (cfg.blocks[lp.header].start,
                                            len(lp.blocks)))
    for ordinal, loop in enumerate(ordered):
        loop.ordinal = ordinal
        loop.exits = [(bid, succ) for bid in loop.blocks
                      for succ in cfg.blocks[bid].succs
                      if succ not in loop.blocks]
        loop.trap_exits = cfg.trap_pcs(loop.blocks)
    return ordered


def _loop_body(cfg, header, tail, reachable):
    body = {header, tail}
    stack = [tail]
    while stack:
        bid = stack.pop()
        if bid == header:
            continue
        for pred in cfg.blocks[bid].preds:
            if pred not in body and pred in reachable:
                body.add(pred)
                stack.append(pred)
    return frozenset(body)


def _assign_nesting(loops):
    # loops arrive sorted by size ascending: parent = smallest
    # strictly-larger loop containing this one.
    for index, loop in enumerate(loops):
        for candidate in loops[index + 1:]:
            if loop.blocks < candidate.blocks:
                loop.parent = candidate
                break
    for loop in loops:
        depth = 1
        parent = loop.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        loop.depth = depth
