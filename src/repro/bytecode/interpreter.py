"""Reference bytecode interpreter.

This is the correctness *oracle*: a straightforward, Python-object-based
interpreter with no notion of addresses, caches or cycles.  The Hydra
machine executing microJIT output must produce exactly the same printed
output and return value for every program (this invariant is enforced by
the property-based test suite).
"""

import math

from ..errors import (ArithmeticException, ArrayIndexException,
                      NullPointerException, VMError)
from ..vm import intrinsics
from .instructions import f2i, i32, idiv, irem, u32
from .opcodes import Op


class GuestObject:
    __slots__ = ("cls", "fields")

    def __init__(self, cls):
        self.cls = cls
        self.fields = {}
        for field in cls.all_instance_fields():
            if field.type.is_float():
                default = 0.0
            elif field.type.is_reference():
                default = None
            else:
                default = 0
            self.fields[field.name] = default

    def __repr__(self):
        return "<%s %s>" % (self.cls.name, self.fields)


class GuestArray:
    __slots__ = ("kind", "data")

    def __init__(self, kind, length):
        if length < 0:
            raise VMError("negative array size %d" % length)
        self.kind = kind  # "int" | "float" | "ref"
        fill = 0.0 if kind == "float" else (None if kind == "ref" else 0)
        self.data = [fill] * length

    def __len__(self):
        return len(self.data)


class _Frame:
    __slots__ = ("method", "locals", "stack", "pc")

    def __init__(self, method, args):
        self.method = method
        self.locals = list(args) + [0] * (method.max_locals - len(args))
        self.stack = []
        self.pc = 0


class InterpreterResult:
    def __init__(self, return_value, output, instructions):
        self.return_value = return_value
        self.output = output
        self.instructions = instructions


class Interpreter:
    """Executes a sealed :class:`Program` with Java semantics.

    *fastpath* (default True) routes execution through the predecoded
    dispatch engine (:mod:`repro.engine.bc_engine`): per-method handler
    tables with fused straight-line superinstruction blocks.  Printed
    output, return values, exception behaviour and the ``instructions``
    counter are identical to the legacy if/elif loop (``fastpath=
    False``), which stays available for debugging and as the
    differential-test baseline.
    """

    def __init__(self, program, max_instructions=200_000_000,
                 fastpath=True):
        self.program = program.seal()
        self.statics = {}
        self.output = []
        self.instructions = 0
        self.max_instructions = max_instructions
        self.fastpath = fastpath

    # -- public API -----------------------------------------------------------
    def run(self, *args):
        entry = self.program.entry()
        value = self.call(entry, list(args))
        return InterpreterResult(value, self.output, self.instructions)

    def call(self, method, args):
        frame = _Frame(method, args)
        if self.fastpath:
            from ..engine.bc_engine import execute_bytecode
            return execute_bytecode(self, frame)
        return self._execute(frame)

    # -- helpers ----------------------------------------------------------------
    def _static_key(self, class_name, field_name):
        field = self.program.resolve_field(class_name, field_name)
        return (field.owner.name, field.name), field

    def _check_ref(self, ref, what):
        if ref is None:
            raise NullPointerException(what)
        return ref

    def _check_index(self, array, index):
        if index < 0 or index >= len(array.data):
            raise ArrayIndexException("index %d, length %d"
                                      % (index, len(array.data)))

    # -- main loop ----------------------------------------------------------------
    def _execute(self, frame):
        code = frame.method.code
        stack = frame.stack
        local_vars = frame.locals
        while True:
            instr = code[frame.pc]
            frame.pc += 1
            self.instructions += 1
            if self.instructions > self.max_instructions:
                raise VMError("instruction budget exceeded")
            op = instr.op
            arg = instr.arg

            if op == Op.ICONST or op == Op.FCONST:
                stack.append(arg)
            elif op == Op.LOAD:
                stack.append(local_vars[arg])
            elif op == Op.STORE:
                local_vars[arg] = stack.pop()
            elif op == Op.IINC:
                index, delta = arg
                local_vars[index] = i32(local_vars[index] + delta)
            elif op == Op.IADD:
                b = stack.pop()
                stack[-1] = i32(stack[-1] + b)
            elif op == Op.ISUB:
                b = stack.pop()
                stack[-1] = i32(stack[-1] - b)
            elif op == Op.IMUL:
                b = stack.pop()
                stack[-1] = i32(stack[-1] * b)
            elif op == Op.IDIV:
                b = stack.pop()
                if b == 0:
                    raise ArithmeticException("/ by zero")
                stack[-1] = idiv(stack[-1], b)
            elif op == Op.IREM:
                b = stack.pop()
                if b == 0:
                    raise ArithmeticException("% by zero")
                stack[-1] = irem(stack[-1], b)
            elif op == Op.INEG:
                stack[-1] = i32(-stack[-1])
            elif op == Op.IAND:
                b = stack.pop()
                stack[-1] = i32(stack[-1] & b)
            elif op == Op.IOR:
                b = stack.pop()
                stack[-1] = i32(stack[-1] | b)
            elif op == Op.IXOR:
                b = stack.pop()
                stack[-1] = i32(stack[-1] ^ b)
            elif op == Op.ISHL:
                b = stack.pop() & 31
                stack[-1] = i32(stack[-1] << b)
            elif op == Op.ISHR:
                b = stack.pop() & 31
                stack[-1] = i32(stack[-1] >> b)
            elif op == Op.IUSHR:
                b = stack.pop() & 31
                stack[-1] = i32(u32(stack[-1]) >> b)
            elif op == Op.FADD:
                b = stack.pop()
                stack[-1] = stack[-1] + b
            elif op == Op.FSUB:
                b = stack.pop()
                stack[-1] = stack[-1] - b
            elif op == Op.FMUL:
                b = stack.pop()
                stack[-1] = stack[-1] * b
            elif op == Op.FDIV:
                b = stack.pop()
                stack[-1] = (stack[-1] / b if b != 0.0 else
                             _float_div_by_zero(stack[-1]))
            elif op == Op.FREM:
                b = stack.pop()
                stack[-1] = (_java_frem(stack[-1], b) if b != 0.0
                             else float("nan"))
            elif op == Op.FNEG:
                stack[-1] = -stack[-1]
            elif op == Op.I2F:
                stack[-1] = float(stack[-1])
            elif op == Op.F2I:
                stack[-1] = f2i(stack[-1])
            elif op == Op.FCMP:
                b = stack.pop()
                a = stack.pop()
                if a != a or b != b:
                    stack.append(-1)   # fcmpl: NaN compares as -1
                else:
                    stack.append((a > b) - (a < b))
            elif op == Op.GOTO:
                frame.pc = arg
            elif op == Op.IFEQ:
                if stack.pop() == 0:
                    frame.pc = arg
            elif op == Op.IFNE:
                if stack.pop() != 0:
                    frame.pc = arg
            elif op == Op.IFLT:
                if stack.pop() < 0:
                    frame.pc = arg
            elif op == Op.IFGE:
                if stack.pop() >= 0:
                    frame.pc = arg
            elif op == Op.IFGT:
                if stack.pop() > 0:
                    frame.pc = arg
            elif op == Op.IFLE:
                if stack.pop() <= 0:
                    frame.pc = arg
            elif op == Op.IF_ICMPEQ:
                b = stack.pop()
                if stack.pop() == b:
                    frame.pc = arg
            elif op == Op.IF_ICMPNE:
                b = stack.pop()
                if stack.pop() != b:
                    frame.pc = arg
            elif op == Op.IF_ICMPLT:
                b = stack.pop()
                if stack.pop() < b:
                    frame.pc = arg
            elif op == Op.IF_ICMPGE:
                b = stack.pop()
                if stack.pop() >= b:
                    frame.pc = arg
            elif op == Op.IF_ICMPGT:
                b = stack.pop()
                if stack.pop() > b:
                    frame.pc = arg
            elif op == Op.IF_ICMPLE:
                b = stack.pop()
                if stack.pop() <= b:
                    frame.pc = arg
            elif op == Op.IF_ACMPEQ:
                b = stack.pop()
                if stack.pop() is b:
                    frame.pc = arg
            elif op == Op.IF_ACMPNE:
                b = stack.pop()
                if stack.pop() is not b:
                    frame.pc = arg
            elif op == Op.IFNULL:
                if stack.pop() is None:
                    frame.pc = arg
            elif op == Op.IFNONNULL:
                if stack.pop() is not None:
                    frame.pc = arg
            elif op == Op.NEWARRAY_I:
                stack[-1] = GuestArray("int", stack[-1])
            elif op == Op.NEWARRAY_F:
                stack[-1] = GuestArray("float", stack[-1])
            elif op == Op.NEWARRAY_A:
                stack[-1] = GuestArray("ref", stack[-1])
            elif op == Op.ARRAYLENGTH:
                array = self._check_ref(stack.pop(), "arraylength")
                stack.append(len(array.data))
            elif op in (Op.IALOAD, Op.FALOAD, Op.AALOAD):
                index = stack.pop()
                array = self._check_ref(stack.pop(), "array load")
                self._check_index(array, index)
                stack.append(array.data[index])
            elif op in (Op.IASTORE, Op.FASTORE, Op.AASTORE):
                value = stack.pop()
                index = stack.pop()
                array = self._check_ref(stack.pop(), "array store")
                self._check_index(array, index)
                array.data[index] = value
            elif op == Op.NEW:
                stack.append(GuestObject(self.program.get_class(arg)))
            elif op == Op.GETFIELD:
                obj = self._check_ref(stack.pop(), "getfield %s" % (arg,))
                stack.append(obj.fields[arg[1]])
            elif op == Op.PUTFIELD:
                value = stack.pop()
                obj = self._check_ref(stack.pop(), "putfield %s" % (arg,))
                obj.fields[arg[1]] = value
            elif op == Op.GETSTATIC:
                key, field = self._static_key(*arg)
                default = 0.0 if field.type.is_float() else (
                    None if field.type.is_reference() else 0)
                stack.append(self.statics.get(key, default))
            elif op == Op.PUTSTATIC:
                key, _field = self._static_key(*arg)
                self.statics[key] = stack.pop()
            elif op == Op.INVOKESTATIC:
                callee = self.program.resolve_method(*arg)
                nargs = len(callee.param_types)
                args = stack[len(stack) - nargs:]
                del stack[len(stack) - nargs:]
                result = self.call(callee, args)
                if not callee.return_type.is_void():
                    stack.append(result)
            elif op == Op.INVOKEVIRTUAL:
                callee = self.program.resolve_method(*arg)
                nargs = len(callee.param_types)
                args = stack[len(stack) - nargs:]
                del stack[len(stack) - nargs:]
                receiver = self._check_ref(stack.pop(), "invoke %s" % (arg,))
                # Virtual dispatch on the receiver's runtime class.
                actual = receiver.cls.find_method(callee.name)
                result = self.call(actual, [receiver] + args)
                if not callee.return_type.is_void():
                    stack.append(result)
            elif op == Op.RETURN:
                return None
            elif op == Op.RETURN_VALUE:
                return stack.pop()
            elif op in (Op.MONITORENTER, Op.MONITOREXIT):
                self._check_ref(stack.pop(), "monitor")
            elif op == Op.INTRINSIC:
                name, nargs = arg
                intrinsic = intrinsics.lookup(name)
                args = stack[len(stack) - nargs:]
                del stack[len(stack) - nargs:]
                if intrinsic.is_output:
                    self.output.append(args[0])
                else:
                    result = intrinsic.fn(*args)
                    if intrinsic.has_result():
                        stack.append(result)
            elif op == Op.POP:
                stack.pop()
            elif op == Op.DUP:
                stack.append(stack[-1])
            elif op == Op.DUP_X1:
                stack.insert(-2, stack[-1])
            elif op == Op.SWAP:
                stack[-1], stack[-2] = stack[-2], stack[-1]
            elif op == Op.ACONST_NULL:
                stack.append(None)
            elif op == Op.NOP:
                pass
            else:
                raise VMError("unhandled opcode %s" % op)


def _float_div_by_zero(numerator):
    if numerator > 0.0:
        return float("inf")
    if numerator < 0.0:
        return float("-inf")
    return float("nan")


def _java_frem(a, b):
    # Java % on floats truncates toward zero (math.fmod semantics).
    return math.fmod(a, b)


def run_program(program, *args, fastpath=True):
    """Convenience: interpret *program* and return its result record."""
    return Interpreter(program, fastpath=fastpath).run(*args)
