"""JVM-like bytecode: ISA, containers, verifier, reference interpreter."""

from .instructions import Instr, f2i, i32, idiv, irem, u32
from .module import (BOOLEAN, ClassDef, Field, FLOAT, HEADER_BYTES,
                     HEADER_WORDS, INT, Method, Program, Type, VOID, WORD)
from .opcodes import Op
from .interpreter import Interpreter, run_program
from .verifier import (BasicBlock, BytecodeLoop, MethodCFG, TRAP_OPS,
                       back_edges, build_cfg, compute_dominators,
                       natural_loops, reachable_blocks, verify_method,
                       verify_program)

__all__ = [
    "Instr", "Op", "i32", "u32", "idiv", "irem", "f2i",
    "Program", "ClassDef", "Field", "Method", "Type",
    "INT", "FLOAT", "BOOLEAN", "VOID", "WORD", "HEADER_WORDS", "HEADER_BYTES",
    "Interpreter", "run_program", "verify_method", "verify_program",
    "BasicBlock", "BytecodeLoop", "MethodCFG", "TRAP_OPS",
    "back_edges", "build_cfg", "compute_dominators",
    "natural_loops", "reachable_blocks",
]
