"""The bytecode instruction set.

The ISA is a JVM-like stack machine: operands live on a per-frame operand
stack, locals in a per-frame local-variable array.  Values are 32-bit
signed integers (booleans are ints), floats, or references (represented
as heap addresses; ``null`` is address 0).
"""

from enum import IntEnum, unique


@unique
class Op(IntEnum):
    # -- stack / constants ------------------------------------------------
    NOP = 0
    POP = 1
    DUP = 2
    DUP_X1 = 3          # duplicate top value below the second value
    SWAP = 4
    ICONST = 5          # arg: int constant
    FCONST = 6          # arg: float constant
    ACONST_NULL = 7

    # -- locals -----------------------------------------------------------
    LOAD = 10           # arg: local index (untyped)
    STORE = 11          # arg: local index
    IINC = 12           # arg: (local index, signed increment)

    # -- integer arithmetic (32-bit wrapping, Java semantics) --------------
    IADD = 20
    ISUB = 21
    IMUL = 22
    IDIV = 23
    IREM = 24
    INEG = 25
    IAND = 26
    IOR = 27
    IXOR = 28
    ISHL = 29
    ISHR = 30
    IUSHR = 31

    # -- float arithmetic ---------------------------------------------------
    FADD = 40
    FSUB = 41
    FMUL = 42
    FDIV = 43
    FNEG = 44
    FREM = 45

    # -- conversions / comparison ------------------------------------------
    I2F = 50
    F2I = 51            # truncates toward zero (Java (int) cast)
    FCMP = 52           # pushes -1/0/1 like Java fcmpl

    # -- control flow (arg: target bytecode index) ---------------------------
    GOTO = 60
    IFEQ = 61           # branch if int == 0
    IFNE = 62
    IFLT = 63
    IFGE = 64
    IFGT = 65
    IFLE = 66
    IF_ICMPEQ = 67      # branch comparing two ints
    IF_ICMPNE = 68
    IF_ICMPLT = 69
    IF_ICMPGE = 70
    IF_ICMPGT = 71
    IF_ICMPLE = 72
    IF_ACMPEQ = 73      # branch comparing two refs
    IF_ACMPNE = 74
    IFNULL = 75
    IFNONNULL = 76

    # -- arrays -------------------------------------------------------------
    NEWARRAY_I = 80     # length on stack -> int[] ref
    NEWARRAY_F = 81
    NEWARRAY_A = 82     # array of references
    ARRAYLENGTH = 83
    IALOAD = 84         # arrayref, index -> value
    IASTORE = 85        # arrayref, index, value ->
    FALOAD = 86
    FASTORE = 87
    AALOAD = 88
    AASTORE = 89

    # -- objects ------------------------------------------------------------
    NEW = 90            # arg: class name
    GETFIELD = 91       # arg: (class name, field name); objref -> value
    PUTFIELD = 92       # arg: (class name, field name); objref, value ->
    GETSTATIC = 93      # arg: (class name, field name)
    PUTSTATIC = 94

    # -- calls --------------------------------------------------------------
    INVOKESTATIC = 100  # arg: (class name, method name)
    INVOKEVIRTUAL = 101  # arg: (class name, method name); receiver under args
    RETURN = 102        # return void
    RETURN_VALUE = 103  # return top of stack

    # -- synchronization -----------------------------------------------------
    MONITORENTER = 110  # objref ->
    MONITOREXIT = 111

    # -- intrinsics -----------------------------------------------------------
    INTRINSIC = 120     # arg: (name, nargs); pops nargs, pushes result or not


#: Branch opcodes whose argument is a bytecode target index.
BRANCH_OPS = frozenset({
    Op.GOTO, Op.IFEQ, Op.IFNE, Op.IFLT, Op.IFGE, Op.IFGT, Op.IFLE,
    Op.IF_ICMPEQ, Op.IF_ICMPNE, Op.IF_ICMPLT, Op.IF_ICMPGE,
    Op.IF_ICMPGT, Op.IF_ICMPLE, Op.IF_ACMPEQ, Op.IF_ACMPNE,
    Op.IFNULL, Op.IFNONNULL,
})

#: Conditional branches (fall through on the false path).
COND_BRANCH_OPS = BRANCH_OPS - {Op.GOTO}

#: Opcodes that never fall through to the next instruction.
TERMINATOR_OPS = frozenset({Op.GOTO, Op.RETURN, Op.RETURN_VALUE})

#: Comparisons taking two int operands, keyed to a python comparison tag.
ICMP_CONDITIONS = {
    Op.IF_ICMPEQ: "eq", Op.IF_ICMPNE: "ne", Op.IF_ICMPLT: "lt",
    Op.IF_ICMPGE: "ge", Op.IF_ICMPGT: "gt", Op.IF_ICMPLE: "le",
}

#: Comparisons of one int operand against zero.
IFZERO_CONDITIONS = {
    Op.IFEQ: "eq", Op.IFNE: "ne", Op.IFLT: "lt",
    Op.IFGE: "ge", Op.IFGT: "gt", Op.IFLE: "le",
}

#: Net operand-stack effect of each opcode (pops negative, pushes positive).
#: Call/intrinsic effects depend on the callee and are computed separately.
STACK_EFFECTS = {
    Op.NOP: 0, Op.POP: -1, Op.DUP: 1, Op.DUP_X1: 1, Op.SWAP: 0,
    Op.ICONST: 1, Op.FCONST: 1, Op.ACONST_NULL: 1,
    Op.LOAD: 1, Op.STORE: -1, Op.IINC: 0,
    Op.IADD: -1, Op.ISUB: -1, Op.IMUL: -1, Op.IDIV: -1, Op.IREM: -1,
    Op.INEG: 0, Op.IAND: -1, Op.IOR: -1, Op.IXOR: -1,
    Op.ISHL: -1, Op.ISHR: -1, Op.IUSHR: -1,
    Op.FADD: -1, Op.FSUB: -1, Op.FMUL: -1, Op.FDIV: -1, Op.FNEG: 0,
    Op.FREM: -1,
    Op.I2F: 0, Op.F2I: 0, Op.FCMP: -1,
    Op.GOTO: 0,
    Op.IFEQ: -1, Op.IFNE: -1, Op.IFLT: -1, Op.IFGE: -1,
    Op.IFGT: -1, Op.IFLE: -1,
    Op.IF_ICMPEQ: -2, Op.IF_ICMPNE: -2, Op.IF_ICMPLT: -2,
    Op.IF_ICMPGE: -2, Op.IF_ICMPGT: -2, Op.IF_ICMPLE: -2,
    Op.IF_ACMPEQ: -2, Op.IF_ACMPNE: -2,
    Op.IFNULL: -1, Op.IFNONNULL: -1,
    Op.NEWARRAY_I: 0, Op.NEWARRAY_F: 0, Op.NEWARRAY_A: 0,
    Op.ARRAYLENGTH: 0,
    Op.IALOAD: -1, Op.IASTORE: -3, Op.FALOAD: -1, Op.FASTORE: -3,
    Op.AALOAD: -1, Op.AASTORE: -3,
    Op.NEW: 1, Op.GETFIELD: 0, Op.PUTFIELD: -2,
    Op.GETSTATIC: 1, Op.PUTSTATIC: -1,
    Op.RETURN: 0, Op.RETURN_VALUE: -1,
    Op.MONITORENTER: -1, Op.MONITOREXIT: -1,
}
