"""Bytecode instruction objects and 32-bit integer helpers."""

from .opcodes import Op, BRANCH_OPS

_U32 = 0xFFFFFFFF
_SIGN = 0x80000000


def i32(value):
    """Wrap an arbitrary Python int to Java 32-bit signed semantics."""
    value &= _U32
    return value - 0x100000000 if value & _SIGN else value


def u32(value):
    """View a 32-bit value as unsigned (for IUSHR)."""
    return value & _U32


def idiv(a, b):
    """Java integer division: truncates toward zero."""
    q = abs(a) // abs(b)
    return i32(-q if (a < 0) != (b < 0) else q)


def irem(a, b):
    """Java integer remainder: sign follows the dividend."""
    r = abs(a) % abs(b)
    return i32(-r if a < 0 else r)


def f2i(value):
    """Java (int) cast of a float: truncate toward zero, saturate."""
    if value != value:  # NaN
        return 0
    if value >= 2147483647.0:
        return 2147483647
    if value <= -2147483648.0:
        return -2147483648
    return int(value)


class Instr:
    """One bytecode instruction: an opcode and an optional argument."""

    __slots__ = ("op", "arg", "line")

    def __init__(self, op, arg=None, line=None):
        self.op = op
        self.arg = arg
        self.line = line

    def is_branch(self):
        return self.op in BRANCH_OPS

    def __repr__(self):
        if self.arg is None:
            return self.op.name
        return "%s %r" % (self.op.name, self.arg)

    def __eq__(self, other):
        return (isinstance(other, Instr) and self.op == other.op
                and self.arg == other.arg)

    def __hash__(self):
        arg = self.arg
        if isinstance(arg, list):
            arg = tuple(arg)
        return hash((self.op, arg))


def make(op, arg=None, line=None):
    """Convenience constructor used by the code generator."""
    return Instr(Op(op), arg, line)
