"""MiniJava AST -> bytecode code generator.

Two passes: declare every class/field/method signature, then compile
method bodies.  Expression generation is type-directed: each ``_gen_*``
returns the static :class:`Type` of the value it left on the stack, and
int values are promoted to float (``I2F``) where Java would promote.
"""

from ..bytecode.instructions import Instr, i32
from ..bytecode.module import (BOOLEAN, ClassDef, Field, FLOAT, INT, Method,
                               NULL, Program, Type, VOID)
from ..bytecode.opcodes import Op
from ..errors import CompileError
from ..vm import intrinsics
from . import ast_nodes as ast
from .parser import parse

_INT_BINOPS = {"+": Op.IADD, "-": Op.ISUB, "*": Op.IMUL, "/": Op.IDIV,
               "%": Op.IREM, "&": Op.IAND, "|": Op.IOR, "^": Op.IXOR,
               "<<": Op.ISHL, ">>": Op.ISHR, ">>>": Op.IUSHR}
_FLOAT_BINOPS = {"+": Op.FADD, "-": Op.FSUB, "*": Op.FMUL, "/": Op.FDIV,
                 "%": Op.FREM}
_CMP_OPS = {"==": "eq", "!=": "ne", "<": "lt", "<=": "le",
            ">": "gt", ">=": "ge"}
_ICMP_BRANCH = {"eq": Op.IF_ICMPEQ, "ne": Op.IF_ICMPNE, "lt": Op.IF_ICMPLT,
                "ge": Op.IF_ICMPGE, "gt": Op.IF_ICMPGT, "le": Op.IF_ICMPLE}
_IFZ_BRANCH = {"eq": Op.IFEQ, "ne": Op.IFNE, "lt": Op.IFLT,
               "ge": Op.IFGE, "gt": Op.IFGT, "le": Op.IFLE}
_NEGATE = {"eq": "ne", "ne": "eq", "lt": "ge", "ge": "lt",
           "gt": "le", "le": "gt"}
_SWAP_CMP = {"eq": "eq", "ne": "ne", "lt": "gt", "gt": "lt",
             "le": "ge", "ge": "le"}


class _Label:
    """A branch target resolved during backpatching."""
    __slots__ = ("index",)

    def __init__(self):
        self.index = None


class _LocalScope:
    def __init__(self, parent=None):
        self.parent = parent
        self.names = {}

    def declare(self, name, slot, vtype, line):
        if self.lookup(name) is not None:
            # Java forbids shadowing a local with another local.
            raise CompileError("duplicate variable %r" % name, line)
        self.names[name] = (slot, vtype)

    def lookup(self, name):
        scope = self
        while scope is not None:
            entry = scope.names.get(name)
            if entry is not None:
                return entry
            scope = scope.parent
        return None


class _MethodContext:
    def __init__(self, method, cls):
        self.method = method
        self.cls = cls
        self.code = []
        self.scope = _LocalScope()
        self.next_slot = 0
        self.high_water = 0
        self.break_labels = []
        self.continue_labels = []

    def alloc_slot(self):
        slot = self.next_slot
        self.next_slot += 1
        self.high_water = max(self.high_water, self.next_slot)
        return slot

    def emit(self, op, arg=None, line=None):
        self.code.append(Instr(op, arg, line))
        return self.code[-1]

    def here(self):
        return len(self.code)

    def bind(self, label):
        label.index = len(self.code)


class CodeGenerator:
    def __init__(self, decl):
        self.decl = decl
        self.program = Program()
        self._class_decls = {}

    # -- driver ------------------------------------------------------------
    def generate(self):
        for class_decl in self.decl.classes:
            if class_decl.name in intrinsics.BUILTIN_CLASSES:
                raise CompileError("class %s shadows a builtin"
                                   % class_decl.name, class_decl.line)
            self._class_decls[class_decl.name] = class_decl
            self.program.add_class(ClassDef(class_decl.name))
        # Wire superclasses and declare members.
        for class_decl in self.decl.classes:
            cls = self.program.get_class(class_decl.name)
            if class_decl.superclass is not None:
                cls.superclass = self.program.get_class(class_decl.superclass)
            for field_decl in class_decl.fields:
                self._check_type(field_decl.type, field_decl.line)
                cls.add_field(Field(field_decl.name, field_decl.type,
                                    field_decl.is_static))
            for method_decl in class_decl.methods:
                for __, ptype in method_decl.params:
                    self._check_type(ptype, method_decl.line)
                if not method_decl.return_type.is_void():
                    self._check_type(method_decl.return_type,
                                     method_decl.line)
                cls.add_method(Method(
                    method_decl.name, cls,
                    [ptype for __, ptype in method_decl.params],
                    method_decl.return_type,
                    is_static=method_decl.is_static,
                    is_synchronized=method_decl.is_synchronized))
        for class_decl in self.decl.classes:
            cls = self.program.get_class(class_decl.name)
            for method_decl in class_decl.methods:
                self._compile_method(cls, method_decl)
        return self.program.seal()

    def _check_type(self, wanted, line):
        if wanted.base in ("int", "float", "boolean", "void"):
            return
        if wanted.base not in self._class_decls:
            raise CompileError("unknown type %r" % wanted.base, line)

    # -- method bodies -----------------------------------------------------
    def _compile_method(self, cls, method_decl):
        method = cls.methods[method_decl.name]
        ctx = _MethodContext(method, cls)
        self.ctx = ctx
        if not method.is_static:
            this_slot = ctx.alloc_slot()
            ctx.scope.declare("this", this_slot, Type(cls.name),
                              method_decl.line)
        for pname, ptype in method_decl.params:
            slot = ctx.alloc_slot()
            ctx.scope.declare(pname, slot, ptype, method_decl.line)
            method.local_names[slot] = pname

        self._gen_block(method_decl.body)

        # Implicit return at a fall-through end of the method.  A final
        # GOTO does not count: a loop's end label may be bound after it.
        if not ctx.code or ctx.code[-1].op not in (Op.RETURN,
                                                   Op.RETURN_VALUE):
            if method.return_type.is_void():
                ctx.emit(Op.RETURN)
            elif method.return_type.is_float():
                ctx.emit(Op.FCONST, 0.0)
                ctx.emit(Op.RETURN_VALUE)
            elif method.return_type.is_reference():
                ctx.emit(Op.ACONST_NULL)
                ctx.emit(Op.RETURN_VALUE)
            else:
                ctx.emit(Op.ICONST, 0)
                ctx.emit(Op.RETURN_VALUE)

        method.code = self._resolve_labels(ctx.code)
        method.max_locals = ctx.high_water

    @staticmethod
    def _resolve_labels(code):
        for instr in code:
            if isinstance(instr.arg, _Label):
                if instr.arg.index is None:
                    raise CompileError("unbound label in generated code")
                instr.arg = instr.arg.index
        return code

    # -- statements -----------------------------------------------------------
    def _gen_block(self, block):
        ctx = self.ctx
        saved_scope = ctx.scope
        saved_slot = ctx.next_slot
        ctx.scope = _LocalScope(saved_scope)
        for statement in block.statements:
            self._gen_statement(statement)
        ctx.scope = saved_scope
        ctx.next_slot = saved_slot

    def _gen_statement(self, stmt):
        ctx = self.ctx
        if isinstance(stmt, ast.Block):
            self._gen_block(stmt)
        elif isinstance(stmt, ast.VarDecl):
            self._check_type(stmt.type, stmt.line)
            slot = ctx.alloc_slot()
            ctx.scope.declare(stmt.name, slot, stmt.type, stmt.line)
            ctx.method.local_names[slot] = stmt.name
            if stmt.init is not None:
                value_type = self._gen_expr(stmt.init)
                self._convert(value_type, stmt.type, stmt.line)
            else:
                if stmt.type.is_float():
                    ctx.emit(Op.FCONST, 0.0, stmt.line)
                elif stmt.type.is_reference():
                    ctx.emit(Op.ACONST_NULL, None, stmt.line)
                else:
                    ctx.emit(Op.ICONST, 0, stmt.line)
            ctx.emit(Op.STORE, slot, stmt.line)
        elif isinstance(stmt, ast.If):
            self._gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self._gen_while(stmt)
        elif isinstance(stmt, ast.DoWhile):
            self._gen_do_while(stmt)
        elif isinstance(stmt, ast.For):
            self._gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            self._gen_return(stmt)
        elif isinstance(stmt, ast.Break):
            if not ctx.break_labels:
                raise CompileError("break outside loop", stmt.line)
            ctx.emit(Op.GOTO, ctx.break_labels[-1], stmt.line)
        elif isinstance(stmt, ast.Continue):
            if not ctx.continue_labels:
                raise CompileError("continue outside loop", stmt.line)
            ctx.emit(Op.GOTO, ctx.continue_labels[-1], stmt.line)
        elif isinstance(stmt, ast.ExprStmt):
            if isinstance(stmt.expr, (ast.Assign, ast.IncDec)):
                # Assignments with need_value=False leave nothing behind.
                self._gen_expr(stmt.expr, need_value=False)
            else:
                result = self._gen_expr(stmt.expr)
                if not result.is_void():
                    ctx.emit(Op.POP, None, stmt.line)
        else:
            raise CompileError("unhandled statement %r" % stmt, stmt.line)

    def _gen_if(self, stmt):
        ctx = self.ctx
        else_label = _Label()
        end_label = _Label()
        self._gen_cond(stmt.cond, else_label, jump_if=False)
        self._gen_statement(stmt.then)
        if stmt.otherwise is not None:
            ctx.emit(Op.GOTO, end_label, stmt.line)
            ctx.bind(else_label)
            self._gen_statement(stmt.otherwise)
            ctx.bind(end_label)
        else:
            ctx.bind(else_label)

    def _gen_while(self, stmt):
        ctx = self.ctx
        top = _Label()
        end = _Label()
        ctx.bind(top)
        self._gen_cond(stmt.cond, end, jump_if=False)
        ctx.break_labels.append(end)
        ctx.continue_labels.append(top)
        self._gen_statement(stmt.body)
        ctx.continue_labels.pop()
        ctx.break_labels.pop()
        ctx.emit(Op.GOTO, top, stmt.line)
        ctx.bind(end)

    def _gen_do_while(self, stmt):
        ctx = self.ctx
        top = _Label()
        cond_label = _Label()
        end = _Label()
        ctx.bind(top)
        ctx.break_labels.append(end)
        ctx.continue_labels.append(cond_label)
        self._gen_statement(stmt.body)
        ctx.continue_labels.pop()
        ctx.break_labels.pop()
        ctx.bind(cond_label)
        self._gen_cond(stmt.cond, top, jump_if=True)
        ctx.bind(end)

    def _gen_for(self, stmt):
        ctx = self.ctx
        saved_scope = ctx.scope
        saved_slot = ctx.next_slot
        ctx.scope = _LocalScope(saved_scope)
        if stmt.init is not None:
            self._gen_statement(stmt.init)
        top = _Label()
        update_label = _Label()
        end = _Label()
        ctx.bind(top)
        if stmt.cond is not None:
            self._gen_cond(stmt.cond, end, jump_if=False)
        ctx.break_labels.append(end)
        ctx.continue_labels.append(update_label)
        self._gen_statement(stmt.body)
        ctx.continue_labels.pop()
        ctx.break_labels.pop()
        ctx.bind(update_label)
        if stmt.update is not None:
            self._gen_statement(stmt.update)
        ctx.emit(Op.GOTO, top, stmt.line)
        ctx.bind(end)
        ctx.scope = saved_scope
        ctx.next_slot = saved_slot

    def _gen_return(self, stmt):
        ctx = self.ctx
        wanted = ctx.method.return_type
        if stmt.value is None:
            if not wanted.is_void():
                raise CompileError("missing return value", stmt.line)
            ctx.emit(Op.RETURN, None, stmt.line)
        else:
            if wanted.is_void():
                raise CompileError("void method returns a value", stmt.line)
            value_type = self._gen_expr(stmt.value)
            self._convert(value_type, wanted, stmt.line)
            ctx.emit(Op.RETURN_VALUE, None, stmt.line)

    # -- conditions ---------------------------------------------------------------
    def _gen_cond(self, expr, target, jump_if):
        """Emit a branch to *target* taken when *expr* == *jump_if*."""
        ctx = self.ctx
        if isinstance(expr, ast.BoolLit):
            if expr.value == jump_if:
                ctx.emit(Op.GOTO, target, expr.line)
            return
        if isinstance(expr, ast.Unary) and expr.op == "!":
            self._gen_cond(expr.operand, target, not jump_if)
            return
        if isinstance(expr, ast.Binary) and expr.op in ("&&", "||"):
            is_and = expr.op == "&&"
            if is_and != jump_if:
                # (&&, jump-if-false) or (||, jump-if-true): both arms branch.
                self._gen_cond(expr.left, target, jump_if)
                self._gen_cond(expr.right, target, jump_if)
            else:
                skip = _Label()
                self._gen_cond(expr.left, skip, not jump_if)
                self._gen_cond(expr.right, target, jump_if)
                ctx.bind(skip)
            return
        if isinstance(expr, ast.Binary) and expr.op in _CMP_OPS:
            self._gen_comparison_branch(expr, target, jump_if)
            return
        value_type = self._gen_expr(expr)
        if not value_type.is_int():
            if value_type.is_reference() or value_type == NULL:
                op = Op.IFNONNULL if jump_if else Op.IFNULL
                ctx.emit(op, target, expr.line)
                return
            raise CompileError("condition must be boolean/int", expr.line)
        ctx.emit(Op.IFNE if jump_if else Op.IFEQ, target, expr.line)

    def _gen_comparison_branch(self, expr, target, jump_if):
        ctx = self.ctx
        cond = _CMP_OPS[expr.op]
        left_type = self._type_of(expr.left)
        right_type = self._type_of(expr.right)
        if not jump_if:
            cond = _NEGATE[cond]
        if (left_type.is_reference() or right_type.is_reference()
                or left_type == NULL or right_type == NULL):
            if cond not in ("eq", "ne"):
                raise CompileError("references only compare ==/!=", expr.line)
            if isinstance(expr.right, ast.NullLit):
                self._gen_expr(expr.left)
                op = Op.IFNULL if cond == "eq" else Op.IFNONNULL
                ctx.emit(op, target, expr.line)
            elif isinstance(expr.left, ast.NullLit):
                self._gen_expr(expr.right)
                op = Op.IFNULL if cond == "eq" else Op.IFNONNULL
                ctx.emit(op, target, expr.line)
            else:
                self._gen_expr(expr.left)
                self._gen_expr(expr.right)
                op = Op.IF_ACMPEQ if cond == "eq" else Op.IF_ACMPNE
                ctx.emit(op, target, expr.line)
            return
        if left_type.is_float() or right_type.is_float():
            actual = self._gen_expr(expr.left)
            self._convert(actual, FLOAT, expr.line)
            actual = self._gen_expr(expr.right)
            self._convert(actual, FLOAT, expr.line)
            ctx.emit(Op.FCMP, None, expr.line)
            ctx.emit(_IFZ_BRANCH[cond], target, expr.line)
            return
        # int comparison; fold "x cmp 0" to an IFxx branch.
        if isinstance(expr.right, ast.IntLit) and expr.right.value == 0:
            self._gen_expr(expr.left)
            ctx.emit(_IFZ_BRANCH[cond], target, expr.line)
            return
        if isinstance(expr.left, ast.IntLit) and expr.left.value == 0:
            self._gen_expr(expr.right)
            ctx.emit(_IFZ_BRANCH[_SWAP_CMP[cond]], target, expr.line)
            return
        self._gen_expr(expr.left)
        self._gen_expr(expr.right)
        ctx.emit(_ICMP_BRANCH[cond], target, expr.line)

    # -- expression type inference (no emission) ---------------------------------
    def _type_of(self, expr):
        if isinstance(expr, ast.IntLit):
            return INT
        if isinstance(expr, ast.FloatLit):
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            return BOOLEAN
        if isinstance(expr, ast.NullLit):
            return NULL
        if isinstance(expr, ast.This):
            return Type(self.ctx.cls.name)
        if isinstance(expr, ast.Name):
            entry = self.ctx.scope.lookup(expr.ident)
            if entry is not None:
                return entry[1]
            field = self.ctx.cls.find_field(expr.ident)
            if field is not None:
                return field.type
            if (expr.ident in self.program.classes
                    or expr.ident in intrinsics.BUILTIN_CLASSES):
                return Type(expr.ident)   # class reference (static access)
            raise CompileError("unknown name %r" % expr.ident, expr.line)
        if isinstance(expr, ast.FieldAccess):
            target_type = self._type_of(expr.target)
            field = self._resolve_field(target_type, expr.name, expr.line)
            return field.type
        if isinstance(expr, ast.Index):
            return self._type_of(expr.target).element()
        if isinstance(expr, ast.ArrayLength):
            return INT
        if isinstance(expr, ast.Call):
            return self._resolve_call(expr)[2]
        if isinstance(expr, ast.New):
            return Type(expr.class_name)
        if isinstance(expr, ast.NewArray):
            return Type(expr.element_type.base,
                        expr.element_type.dims + len(expr.lengths))
        if isinstance(expr, ast.Unary):
            if expr.op == "!":
                return BOOLEAN
            return self._type_of(expr.operand)
        if isinstance(expr, ast.Cast):
            return expr.type
        if isinstance(expr, ast.Binary):
            if expr.op in _CMP_OPS or expr.op in ("&&", "||"):
                return BOOLEAN
            left = self._type_of(expr.left)
            right = self._type_of(expr.right)
            if expr.op in ("<<", ">>", ">>>", "&", "|", "^", "%") and \
                    left.is_int() and right.is_int():
                return INT
            if left.is_float() or right.is_float():
                return FLOAT
            return INT
        if isinstance(expr, ast.Assign):
            return self._type_of(expr.target)
        if isinstance(expr, ast.IncDec):
            return self._type_of(expr.target)
        if isinstance(expr, ast.Ternary):
            then_type = self._type_of(expr.then)
            else_type = self._type_of(expr.otherwise)
            if then_type.is_float() or else_type.is_float():
                return FLOAT
            return then_type
        raise CompileError("cannot type expression %r" % expr, expr.line)

    def _resolve_field(self, target_type, name, line):
        if not target_type.is_reference() or target_type.is_array():
            raise CompileError("field access on non-object", line)
        cls = self.program.classes.get(target_type.base)
        if cls is None:
            raise CompileError("unknown class %r" % target_type.base, line)
        field = cls.find_field(name)
        if field is None:
            raise CompileError("unknown field %s.%s"
                               % (target_type.base, name), line)
        return field

    def _resolve_call(self, expr):
        """Return (kind, payload, return_type) for a Call node.

        kind is one of "intrinsic", "static", "virtual".
        """
        target = expr.target
        if isinstance(target, ast.Name) and \
                target.ident in intrinsics.BUILTIN_CLASSES:
            key = (target.ident, expr.name)
            name = intrinsics.BUILTIN_METHODS.get(key)
            if name is None:
                raise CompileError("unknown builtin %s.%s" % key, expr.line)
            return ("intrinsic", intrinsics.lookup(name),
                    intrinsics.lookup(name).return_type)
        if isinstance(target, ast.Name) and target.ident in self.program.classes:
            if self.ctx.scope.lookup(target.ident) is None:
                cls = self.program.get_class(target.ident)
                method = cls.find_method(expr.name)
                if method is None:
                    raise CompileError("unknown method %s.%s"
                                       % (target.ident, expr.name), expr.line)
                if method.is_static:
                    return ("static", method, method.return_type)
                raise CompileError("instance method %s.%s called statically"
                                   % (target.ident, expr.name), expr.line)
        if target is None:
            method = self.ctx.cls.find_method(expr.name)
            if method is None:
                raise CompileError("unknown method %r" % expr.name, expr.line)
            if method.is_static:
                return ("static", method, method.return_type)
            if self.ctx.method.is_static:
                raise CompileError(
                    "instance method %r called from static context"
                    % expr.name, expr.line)
            return ("virtual", method, method.return_type)
        target_type = self._type_of(target)
        if not target_type.is_reference() or target_type.is_array():
            raise CompileError("method call on non-object", expr.line)
        cls = self.program.classes.get(target_type.base)
        if cls is None:
            raise CompileError("unknown class %r" % target_type.base,
                               expr.line)
        method = cls.find_method(expr.name)
        if method is None:
            raise CompileError("unknown method %s.%s"
                               % (target_type.base, expr.name), expr.line)
        return ("virtual", method, method.return_type)

    # -- conversions -----------------------------------------------------------------
    def _convert(self, actual, wanted, line):
        if actual == wanted:
            return
        if actual.is_int() and wanted.is_int():
            return
        if actual.is_int() and wanted.is_float():
            self.ctx.emit(Op.I2F, None, line)
            return
        if actual.is_float() and wanted.is_int():
            raise CompileError("cannot implicitly convert float to int; "
                               "use (int) cast", line)
        if actual == NULL and wanted.is_reference():
            return
        if actual.is_reference() and wanted.is_reference():
            if actual.is_array() or wanted.is_array():
                if actual == wanted:
                    return
                raise CompileError("array type mismatch: %s vs %s"
                                   % (actual, wanted), line)
            actual_cls = self.program.classes.get(actual.base)
            wanted_cls = self.program.classes.get(wanted.base)
            if (actual_cls is not None and wanted_cls is not None
                    and actual_cls.is_subclass_of(wanted_cls)):
                return
            raise CompileError("type mismatch: %s vs %s" % (actual, wanted),
                               line)
        raise CompileError("type mismatch: %s vs %s" % (actual, wanted), line)

    # -- expressions -----------------------------------------------------------------
    def _gen_expr(self, expr, need_value=True):
        ctx = self.ctx
        if isinstance(expr, ast.IntLit):
            ctx.emit(Op.ICONST, i32(expr.value), expr.line)
            return INT
        if isinstance(expr, ast.FloatLit):
            ctx.emit(Op.FCONST, float(expr.value), expr.line)
            return FLOAT
        if isinstance(expr, ast.BoolLit):
            ctx.emit(Op.ICONST, 1 if expr.value else 0, expr.line)
            return BOOLEAN
        if isinstance(expr, ast.NullLit):
            ctx.emit(Op.ACONST_NULL, None, expr.line)
            return NULL
        if isinstance(expr, ast.This):
            entry = ctx.scope.lookup("this")
            if entry is None:
                raise CompileError("'this' in static context", expr.line)
            ctx.emit(Op.LOAD, entry[0], expr.line)
            return entry[1]
        if isinstance(expr, ast.Name):
            return self._gen_name(expr)
        if isinstance(expr, ast.FieldAccess):
            return self._gen_field_access(expr)
        if isinstance(expr, ast.Index):
            return self._gen_index(expr)
        if isinstance(expr, ast.ArrayLength):
            target_type = self._gen_expr(expr.target)
            if not target_type.is_array():
                raise CompileError(".length on non-array", expr.line)
            ctx.emit(Op.ARRAYLENGTH, None, expr.line)
            return INT
        if isinstance(expr, ast.Call):
            return self._gen_call(expr, need_value)
        if isinstance(expr, ast.New):
            return self._gen_new(expr)
        if isinstance(expr, ast.NewArray):
            return self._gen_new_array(expr)
        if isinstance(expr, ast.Unary):
            return self._gen_unary(expr)
        if isinstance(expr, ast.Cast):
            return self._gen_cast(expr)
        if isinstance(expr, ast.Binary):
            return self._gen_binary(expr)
        if isinstance(expr, ast.Assign):
            return self._gen_assign(expr, need_value)
        if isinstance(expr, ast.IncDec):
            return self._gen_incdec(expr, need_value)
        if isinstance(expr, ast.Ternary):
            return self._gen_ternary(expr)
        raise CompileError("unhandled expression %r" % expr, expr.line)

    def _gen_name(self, expr):
        ctx = self.ctx
        entry = ctx.scope.lookup(expr.ident)
        if entry is not None:
            ctx.emit(Op.LOAD, entry[0], expr.line)
            return entry[1]
        field = ctx.cls.find_field(expr.ident)
        if field is not None:
            if field.is_static:
                ctx.emit(Op.GETSTATIC, (field.owner.name, field.name),
                         expr.line)
            else:
                if ctx.method.is_static:
                    raise CompileError("instance field %r in static context"
                                       % expr.ident, expr.line)
                this = ctx.scope.lookup("this")
                ctx.emit(Op.LOAD, this[0], expr.line)
                ctx.emit(Op.GETFIELD, (field.owner.name, field.name),
                         expr.line)
            return field.type
        raise CompileError("unknown name %r" % expr.ident, expr.line)

    def _gen_field_access(self, expr):
        ctx = self.ctx
        # Static access through a class name: `Config.limit`.
        if isinstance(expr.target, ast.Name) and \
                expr.target.ident in self.program.classes and \
                ctx.scope.lookup(expr.target.ident) is None:
            cls = self.program.get_class(expr.target.ident)
            field = cls.find_field(expr.name)
            if field is not None and field.is_static:
                ctx.emit(Op.GETSTATIC, (field.owner.name, field.name),
                         expr.line)
                return field.type
        target_type = self._gen_expr(expr.target)
        field = self._resolve_field(target_type, expr.name, expr.line)
        if field.is_static:
            ctx.emit(Op.POP, None, expr.line)
            ctx.emit(Op.GETSTATIC, (field.owner.name, field.name), expr.line)
        else:
            ctx.emit(Op.GETFIELD, (field.owner.name, field.name), expr.line)
        return field.type

    def _gen_index(self, expr):
        ctx = self.ctx
        array_type = self._gen_expr(expr.target)
        if not array_type.is_array():
            raise CompileError("indexing a non-array", expr.line)
        index_type = self._gen_expr(expr.index)
        if not index_type.is_int():
            raise CompileError("array index must be int", expr.line)
        element = array_type.element()
        ctx.emit(self._aload_op(element), None, expr.line)
        return element

    @staticmethod
    def _aload_op(element):
        if element.is_float():
            return Op.FALOAD
        if element.is_int():
            return Op.IALOAD
        return Op.AALOAD

    @staticmethod
    def _astore_op(element):
        if element.is_float():
            return Op.FASTORE
        if element.is_int():
            return Op.IASTORE
        return Op.AASTORE

    def _gen_call(self, expr, need_value=True):
        ctx = self.ctx
        kind, payload, return_type = self._resolve_call(expr)
        if kind == "intrinsic":
            intrinsic = payload
            if len(expr.args) != intrinsic.nargs:
                raise CompileError("%s expects %d args"
                                   % (intrinsic.name, intrinsic.nargs),
                                   expr.line)
            for arg, wanted in zip(expr.args, intrinsic.arg_types):
                actual = self._gen_expr(arg)
                self._convert(actual, wanted, expr.line)
            ctx.emit(Op.INTRINSIC, (intrinsic.name, intrinsic.nargs),
                     expr.line)
            return intrinsic.return_type
        method = payload
        if len(expr.args) != len(method.param_types):
            raise CompileError("%s expects %d args, got %d"
                               % (method.qualified_name,
                                  len(method.param_types), len(expr.args)),
                               expr.line)
        if kind == "virtual":
            if expr.target is None:
                this = ctx.scope.lookup("this")
                ctx.emit(Op.LOAD, this[0], expr.line)
            else:
                self._gen_expr(expr.target)
        for arg, wanted in zip(expr.args, method.param_types):
            actual = self._gen_expr(arg)
            self._convert(actual, wanted, expr.line)
        opcode = Op.INVOKESTATIC if kind == "static" else Op.INVOKEVIRTUAL
        ctx.emit(opcode, (method.owner.name, method.name), expr.line)
        return return_type

    def _gen_new(self, expr):
        ctx = self.ctx
        cls = self.program.classes.get(expr.class_name)
        if cls is None:
            raise CompileError("unknown class %r" % expr.class_name,
                               expr.line)
        ctx.emit(Op.NEW, cls.name, expr.line)
        ctor = cls.find_method("<init>")
        if ctor is None:
            if expr.args:
                raise CompileError("%s has no constructor" % cls.name,
                                   expr.line)
            return Type(cls.name)
        if len(expr.args) != len(ctor.param_types):
            raise CompileError("%s constructor expects %d args"
                               % (cls.name, len(ctor.param_types)), expr.line)
        ctx.emit(Op.DUP, None, expr.line)
        for arg, wanted in zip(expr.args, ctor.param_types):
            actual = self._gen_expr(arg)
            self._convert(actual, wanted, expr.line)
        ctx.emit(Op.INVOKEVIRTUAL, (ctor.owner.name, "<init>"), expr.line)
        return Type(cls.name)

    def _gen_new_array(self, expr):
        ctx = self.ctx
        result_type = Type(expr.element_type.base,
                           expr.element_type.dims + len(expr.lengths))
        self._gen_new_array_dims(expr, 0, result_type)
        return result_type

    def _newarray_op(self, element):
        if element.is_float():
            return Op.NEWARRAY_F
        if element.is_int():
            return Op.NEWARRAY_I
        return Op.NEWARRAY_A

    def _gen_new_array_dims(self, expr, dim, result_type):
        """Emit code creating dimension *dim* of a (possibly) nested array."""
        ctx = self.ctx
        length_type = self._gen_expr(expr.lengths[dim])
        if not length_type.is_int():
            raise CompileError("array length must be int", expr.line)
        element = Type(result_type.base, result_type.dims - 1)
        if dim == len(expr.lengths) - 1:
            ctx.emit(self._newarray_op(element), None, expr.line)
            return
        # Allocate the outer ref-array, then fill each slot in a loop.
        ctx.emit(Op.NEWARRAY_A, None, expr.line)
        array_slot = ctx.alloc_slot()
        index_slot = ctx.alloc_slot()
        ctx.emit(Op.STORE, array_slot, expr.line)
        ctx.emit(Op.ICONST, 0, expr.line)
        ctx.emit(Op.STORE, index_slot, expr.line)
        top = _Label()
        end = _Label()
        ctx.bind(top)
        ctx.emit(Op.LOAD, index_slot, expr.line)
        ctx.emit(Op.LOAD, array_slot, expr.line)
        ctx.emit(Op.ARRAYLENGTH, None, expr.line)
        ctx.emit(Op.IF_ICMPGE, end, expr.line)
        ctx.emit(Op.LOAD, array_slot, expr.line)
        ctx.emit(Op.LOAD, index_slot, expr.line)
        self._gen_new_array_dims(expr, dim + 1, element)
        ctx.emit(Op.AASTORE, None, expr.line)
        ctx.emit(Op.IINC, (index_slot, 1), expr.line)
        ctx.emit(Op.GOTO, top, expr.line)
        ctx.bind(end)
        ctx.emit(Op.LOAD, array_slot, expr.line)

    def _gen_unary(self, expr):
        ctx = self.ctx
        if expr.op == "-":
            operand_type = self._gen_expr(expr.operand)
            if operand_type.is_float():
                ctx.emit(Op.FNEG, None, expr.line)
                return FLOAT
            if operand_type.is_int():
                ctx.emit(Op.INEG, None, expr.line)
                return INT
            raise CompileError("negating a non-number", expr.line)
        if expr.op == "~":
            operand_type = self._gen_expr(expr.operand)
            if not operand_type.is_int():
                raise CompileError("~ on non-int", expr.line)
            ctx.emit(Op.ICONST, -1, expr.line)
            ctx.emit(Op.IXOR, None, expr.line)
            return INT
        if expr.op == "!":
            # Materialize the boolean via branches.
            true_label = _Label()
            end = _Label()
            self._gen_cond(expr.operand, true_label, jump_if=True)
            ctx.emit(Op.ICONST, 1, expr.line)
            ctx.emit(Op.GOTO, end, expr.line)
            ctx.bind(true_label)
            ctx.emit(Op.ICONST, 0, expr.line)
            ctx.bind(end)
            return BOOLEAN
        raise CompileError("unhandled unary %r" % expr.op, expr.line)

    def _gen_cast(self, expr):
        ctx = self.ctx
        operand_type = self._gen_expr(expr.operand)
        if expr.type.is_int():
            if operand_type.is_float():
                ctx.emit(Op.F2I, None, expr.line)
            elif not operand_type.is_int():
                raise CompileError("cannot cast %s to int" % operand_type,
                                   expr.line)
            return INT
        if expr.type.is_float():
            if operand_type.is_int():
                ctx.emit(Op.I2F, None, expr.line)
            elif not operand_type.is_float():
                raise CompileError("cannot cast %s to float" % operand_type,
                                   expr.line)
            return FLOAT
        raise CompileError("unsupported cast to %s" % expr.type, expr.line)

    def _gen_binary(self, expr):
        ctx = self.ctx
        if expr.op in ("&&", "||") or expr.op in _CMP_OPS:
            # Materialize boolean result via the condition generator.
            true_label = _Label()
            end = _Label()
            self._gen_cond(expr, true_label, jump_if=True)
            ctx.emit(Op.ICONST, 0, expr.line)
            ctx.emit(Op.GOTO, end, expr.line)
            ctx.bind(true_label)
            ctx.emit(Op.ICONST, 1, expr.line)
            ctx.bind(end)
            return BOOLEAN
        left_type = self._type_of(expr.left)
        right_type = self._type_of(expr.right)
        use_float = (left_type.is_float() or right_type.is_float())
        if expr.op in ("<<", ">>", ">>>"):
            actual = self._gen_expr(expr.left)
            if not actual.is_int():
                raise CompileError("shift on non-int", expr.line)
            actual = self._gen_expr(expr.right)
            if not actual.is_int():
                raise CompileError("shift count must be int", expr.line)
            ctx.emit(_INT_BINOPS[expr.op], None, expr.line)
            return INT
        if use_float:
            if expr.op not in _FLOAT_BINOPS:
                raise CompileError("operator %r not defined on float"
                                   % expr.op, expr.line)
            actual = self._gen_expr(expr.left)
            self._convert(actual, FLOAT, expr.line)
            actual = self._gen_expr(expr.right)
            self._convert(actual, FLOAT, expr.line)
            ctx.emit(_FLOAT_BINOPS[expr.op], None, expr.line)
            return FLOAT
        if expr.op not in _INT_BINOPS:
            raise CompileError("unhandled operator %r" % expr.op, expr.line)
        actual = self._gen_expr(expr.left)
        if not actual.is_int():
            raise CompileError("operator %r on non-int" % expr.op, expr.line)
        actual = self._gen_expr(expr.right)
        if not actual.is_int():
            raise CompileError("operator %r on non-int" % expr.op, expr.line)
        ctx.emit(_INT_BINOPS[expr.op], None, expr.line)
        return INT

    def _binop_for(self, op, value_type, line):
        if value_type.is_float():
            opcode = _FLOAT_BINOPS.get(op)
        else:
            opcode = _INT_BINOPS.get(op)
        if opcode is None:
            raise CompileError("operator %r not defined on %s"
                               % (op, value_type), line)
        return opcode

    def _gen_assign(self, expr, need_value=True):
        ctx = self.ctx
        target = expr.target

        # -- locals ---------------------------------------------------------
        if isinstance(target, ast.Name):
            entry = ctx.scope.lookup(target.ident)
            if entry is not None:
                slot, var_type = entry
                if expr.op:
                    ctx.emit(Op.LOAD, slot, expr.line)
                    self._gen_compound_value(expr, var_type)
                else:
                    actual = self._gen_expr(expr.value)
                    self._convert(actual, var_type, expr.line)
                if need_value:
                    ctx.emit(Op.DUP, None, expr.line)
                ctx.emit(Op.STORE, slot, expr.line)
                return var_type
            field = ctx.cls.find_field(target.ident)
            if field is None:
                raise CompileError("unknown name %r" % target.ident,
                                   expr.line)
            return self._gen_field_assign(expr, None, field, need_value)

        # -- fields --------------------------------------------------------
        if isinstance(target, ast.FieldAccess):
            if isinstance(target.target, ast.Name) and \
                    target.target.ident in self.program.classes and \
                    ctx.scope.lookup(target.target.ident) is None:
                cls = self.program.get_class(target.target.ident)
                field = cls.find_field(target.name)
                if field is not None and field.is_static:
                    return self._gen_field_assign(expr, None, field,
                                                  need_value)
            target_type = self._type_of(target.target)
            field = self._resolve_field(target_type, target.name, expr.line)
            return self._gen_field_assign(expr, target.target, field,
                                          need_value)

        # -- array elements --------------------------------------------------
        if isinstance(target, ast.Index):
            return self._gen_index_assign(expr, need_value)
        raise CompileError("invalid assignment target", expr.line)

    def _gen_compound_value(self, expr, var_type):
        """With the old value on the stack, emit rhs and the compound op."""
        ctx = self.ctx
        if var_type.is_float():
            rhs_type = self._gen_expr(expr.value)
            self._convert(rhs_type, FLOAT, expr.line)
        else:
            rhs_type = self._gen_expr(expr.value)
            if not rhs_type.is_int():
                raise CompileError("compound assignment type mismatch",
                                   expr.line)
        ctx.emit(self._binop_for(expr.op, var_type, expr.line), None,
                 expr.line)

    def _gen_field_assign(self, expr, target_expr, field, need_value):
        ctx = self.ctx
        key = (field.owner.name, field.name)
        if field.is_static:
            if expr.op:
                ctx.emit(Op.GETSTATIC, key, expr.line)
                self._gen_compound_value(expr, field.type)
            else:
                actual = self._gen_expr(expr.value)
                self._convert(actual, field.type, expr.line)
            if need_value:
                ctx.emit(Op.DUP, None, expr.line)
            ctx.emit(Op.PUTSTATIC, key, expr.line)
            return field.type
        # Instance field: put the receiver on the stack first.
        if target_expr is None:
            this = ctx.scope.lookup("this")
            if this is None:
                raise CompileError("instance field %r in static context"
                                   % field.name, expr.line)
            ctx.emit(Op.LOAD, this[0], expr.line)
        else:
            self._gen_expr(target_expr)
        if expr.op:
            ctx.emit(Op.DUP, None, expr.line)
            ctx.emit(Op.GETFIELD, key, expr.line)
            self._gen_compound_value(expr, field.type)
        else:
            actual = self._gen_expr(expr.value)
            self._convert(actual, field.type, expr.line)
        value_slot = None
        if need_value:
            value_slot = ctx.alloc_slot()
            ctx.emit(Op.DUP, None, expr.line)
            ctx.emit(Op.STORE, value_slot, expr.line)
        ctx.emit(Op.PUTFIELD, key, expr.line)
        if need_value:
            ctx.emit(Op.LOAD, value_slot, expr.line)
        return field.type

    def _gen_index_assign(self, expr, need_value):
        ctx = self.ctx
        target = expr.target
        array_type = self._type_of(target.target)
        if not array_type.is_array():
            raise CompileError("indexing a non-array", expr.line)
        element = array_type.element()

        if expr.op:
            # Stash array ref and index in scratch slots for the re-read.
            array_slot = ctx.alloc_slot()
            index_slot = ctx.alloc_slot()
            self._gen_expr(target.target)
            ctx.emit(Op.STORE, array_slot, expr.line)
            index_type = self._gen_expr(target.index)
            if not index_type.is_int():
                raise CompileError("array index must be int", expr.line)
            ctx.emit(Op.STORE, index_slot, expr.line)
            ctx.emit(Op.LOAD, array_slot, expr.line)
            ctx.emit(Op.LOAD, index_slot, expr.line)
            ctx.emit(Op.LOAD, array_slot, expr.line)
            ctx.emit(Op.LOAD, index_slot, expr.line)
            ctx.emit(self._aload_op(element), None, expr.line)
            self._gen_compound_value(expr, element)
        else:
            self._gen_expr(target.target)
            index_type = self._gen_expr(target.index)
            if not index_type.is_int():
                raise CompileError("array index must be int", expr.line)
            actual = self._gen_expr(expr.value)
            self._convert(actual, element, expr.line)
        value_slot = None
        if need_value:
            value_slot = ctx.alloc_slot()
            ctx.emit(Op.DUP, None, expr.line)
            ctx.emit(Op.STORE, value_slot, expr.line)
        ctx.emit(self._astore_op(element), None, expr.line)
        if need_value:
            ctx.emit(Op.LOAD, value_slot, expr.line)
        return element

    def _gen_incdec(self, expr, need_value):
        ctx = self.ctx
        target = expr.target
        # Fast path: ++/-- on an int local becomes IINC.
        if isinstance(target, ast.Name):
            entry = ctx.scope.lookup(target.ident)
            if entry is not None:
                slot, var_type = entry
                if var_type.is_int():
                    if need_value and not expr.is_prefix:
                        ctx.emit(Op.LOAD, slot, expr.line)
                    ctx.emit(Op.IINC, (slot, expr.delta), expr.line)
                    if need_value and expr.is_prefix:
                        ctx.emit(Op.LOAD, slot, expr.line)
                    return INT
        # General path: rewrite to a compound assignment.
        one = (ast.FloatLit(1.0, expr.line)
               if self._type_of(target).is_float()
               else ast.IntLit(1, expr.line))
        op = "+" if expr.delta > 0 else "-"
        rewritten = ast.Assign(target, op, one, expr.line)
        if not need_value:
            return self._gen_assign(rewritten, need_value=False)
        if expr.is_prefix:
            return self._gen_assign(rewritten, need_value=True)
        # Postfix with value: old value = new value - delta.
        value_type = self._gen_assign(rewritten, need_value=True)
        if value_type.is_float():
            ctx.emit(Op.FCONST, float(expr.delta), expr.line)
            ctx.emit(Op.FSUB, None, expr.line)
        else:
            ctx.emit(Op.ICONST, expr.delta, expr.line)
            ctx.emit(Op.ISUB, None, expr.line)
        return value_type

    def _gen_ternary(self, expr):
        ctx = self.ctx
        result_type = self._type_of(expr)
        false_label = _Label()
        end = _Label()
        self._gen_cond(expr.cond, false_label, jump_if=False)
        then_type = self._gen_expr(expr.then)
        self._convert(then_type, result_type, expr.line)
        ctx.emit(Op.GOTO, end, expr.line)
        ctx.bind(false_label)
        else_type = self._gen_expr(expr.otherwise)
        self._convert(else_type, result_type, expr.line)
        ctx.bind(end)
        return result_type


def compile_source(source):
    """Compile MiniJava source text into a sealed, verified Program."""
    from ..bytecode.verifier import verify_program
    program = CodeGenerator(parse(source)).generate()
    return verify_program(program)
