"""Tokenizer for the MiniJava dialect."""

from ..errors import CompileError

KEYWORDS = frozenset({
    "class", "extends", "static", "synchronized", "void", "int", "float",
    "boolean", "if", "else", "while", "for", "do", "return", "new", "this",
    "null", "true", "false", "break", "continue",
})

# Longest-match-first multi-character operators.
OPERATORS = [
    ">>>=", "<<=", ">>=", ">>>",
    "==", "!=", "<=", ">=", "&&", "||", "++", "--",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<", ">>",
    "+", "-", "*", "/", "%", "=", "<", ">", "!", "~", "&", "|", "^",
    "(", ")", "{", "}", "[", "]", ";", ",", ".", "?", ":",
]


class Token:
    __slots__ = ("kind", "value", "line")

    def __init__(self, kind, value, line):
        self.kind = kind      # "id", "kw", "int", "float", "op", "eof"
        self.value = value
        self.line = line

    def __repr__(self):
        return "Token(%s, %r, line %d)" % (self.kind, self.value, self.line)


def tokenize(source):
    tokens = []
    i = 0
    line = 1
    n = len(source)
    while i < n:
        ch = source[i]
        if ch == "\n":
            line += 1
            i += 1
            continue
        if ch in " \t\r":
            i += 1
            continue
        if source.startswith("//", i):
            end = source.find("\n", i)
            i = n if end < 0 else end
            continue
        if source.startswith("/*", i):
            end = source.find("*/", i + 2)
            if end < 0:
                raise CompileError("unterminated block comment", line)
            line += source.count("\n", i, end)
            i = end + 2
            continue
        if ch.isalpha() or ch == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            word = source[i:j]
            kind = "kw" if word in KEYWORDS else "id"
            tokens.append(Token(kind, word, line))
            i = j
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and source[i + 1].isdigit()):
            j = i
            is_float = False
            while j < n and source[j].isdigit():
                j += 1
            if j < n and source[j] == "." and not source.startswith("..", j):
                is_float = True
                j += 1
                while j < n and source[j].isdigit():
                    j += 1
            if j < n and source[j] in "eE":
                k = j + 1
                if k < n and source[k] in "+-":
                    k += 1
                if k < n and source[k].isdigit():
                    is_float = True
                    j = k
                    while j < n and source[j].isdigit():
                        j += 1
            if j < n and source[j] in "fF":
                is_float = True
                text = source[i:j]
                j += 1
            else:
                text = source[i:j]
            if source.startswith("0x", i) or source.startswith("0X", i):
                j = i + 2
                while j < n and source[j] in "0123456789abcdefABCDEF":
                    j += 1
                tokens.append(Token("int", int(source[i:j], 16), line))
                i = j
                continue
            if is_float:
                tokens.append(Token("float", float(text), line))
            else:
                tokens.append(Token("int", int(text), line))
            i = j
            continue
        for op in OPERATORS:
            if source.startswith(op, i):
                tokens.append(Token("op", op, line))
                i += len(op)
                break
        else:
            raise CompileError("unexpected character %r" % ch, line)
    tokens.append(Token("eof", None, line))
    return tokens
