"""MiniJava frontend: Java-subset source -> JVM-like bytecode."""

from .codegen import CodeGenerator, compile_source
from .lexer import Token, tokenize
from .parser import Parser, parse

__all__ = ["compile_source", "CodeGenerator", "parse", "Parser",
           "tokenize", "Token"]
