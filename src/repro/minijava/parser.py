"""Recursive-descent parser for MiniJava."""

from ..bytecode.module import Type
from ..errors import CompileError
from . import ast_nodes as ast
from .lexer import tokenize

# Binary operator precedence, lowest first.
_BINARY_LEVELS = [
    ["||"],
    ["&&"],
    ["|"],
    ["^"],
    ["&"],
    ["==", "!="],
    ["<", "<=", ">", ">="],
    ["<<", ">>", ">>>"],
    ["+", "-"],
    ["*", "/", "%"],
]

_ASSIGN_OPS = {"=": "", "+=": "+", "-=": "-", "*=": "*", "/=": "/",
               "%=": "%", "&=": "&", "|=": "|", "^=": "^",
               "<<=": "<<", ">>=": ">>", ">>>=": ">>>"}

_PRIMITIVE_TYPES = ("int", "float", "boolean", "void")


class Parser:
    def __init__(self, source):
        self.tokens = tokenize(source)
        self.pos = 0

    # -- token helpers ----------------------------------------------------
    @property
    def tok(self):
        return self.tokens[self.pos]

    def peek(self, offset=0):
        index = min(self.pos + offset, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self):
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def check(self, kind, value=None):
        token = self.tok
        return token.kind == kind and (value is None or token.value == value)

    def accept(self, kind, value=None):
        if self.check(kind, value):
            return self.advance()
        return None

    def expect(self, kind, value=None):
        token = self.accept(kind, value)
        if token is None:
            want = value if value is not None else kind
            raise CompileError("expected %r, found %r"
                               % (want, self.tok.value), self.tok.line)
        return token

    # -- types -------------------------------------------------------------
    def _at_type(self):
        token = self.tok
        if token.kind == "kw" and token.value in _PRIMITIVE_TYPES:
            return True
        # `Foo x` or `Foo[] x` where Foo is a class name.
        if token.kind == "id":
            after = self.peek(1)
            if after.kind == "id":
                return True
            if after.kind == "op" and after.value == "[":
                return self.peek(2).kind == "op" and self.peek(2).value == "]"
        return False

    def parse_type(self):
        token = self.tok
        if token.kind == "kw" and token.value in _PRIMITIVE_TYPES:
            base = self.advance().value
        elif token.kind == "id":
            base = self.advance().value
        else:
            raise CompileError("expected a type, found %r" % token.value,
                               token.line)
        dims = 0
        while self.check("op", "[") and self.peek(1).value == "]":
            self.advance()
            self.advance()
            dims += 1
        return Type(base, dims)

    # -- program / declarations ----------------------------------------------
    def parse_program(self):
        classes = []
        while not self.check("eof"):
            classes.append(self.parse_class())
        return ast.ProgramDecl(classes)

    def parse_class(self):
        line = self.expect("kw", "class").line
        name = self.expect("id").value
        superclass = None
        if self.accept("kw", "extends"):
            superclass = self.expect("id").value
        self.expect("op", "{")
        fields = []
        methods = []
        while not self.check("op", "}"):
            self._parse_member(name, fields, methods)
        self.expect("op", "}")
        return ast.ClassDecl(name, superclass, fields, methods, line)

    def _parse_member(self, class_name, fields, methods):
        line = self.tok.line
        is_static = bool(self.accept("kw", "static"))
        is_synchronized = bool(self.accept("kw", "synchronized"))
        if not is_static and self.accept("kw", "static"):
            is_static = True

        # Constructor: `ClassName ( ... )`.
        if (self.check("id", class_name) and self.peek(1).kind == "op"
                and self.peek(1).value == "("):
            self.advance()
            params = self._parse_params()
            body = self.parse_block()
            methods.append(ast.MethodDecl(
                "<init>", params, Type("void"), False, is_synchronized,
                body, line, is_constructor=True))
            return

        member_type = self.parse_type()
        name = self.expect("id").value
        if self.check("op", "("):
            params = self._parse_params()
            body = self.parse_block()
            methods.append(ast.MethodDecl(
                name, params, member_type, is_static, is_synchronized,
                body, line))
        else:
            if is_synchronized:
                raise CompileError("fields cannot be synchronized", line)
            fields.append(ast.FieldDecl(name, member_type, is_static, line))
            while self.accept("op", ","):
                extra = self.expect("id").value
                fields.append(ast.FieldDecl(extra, member_type, is_static,
                                            line))
            self.expect("op", ";")

    def _parse_params(self):
        self.expect("op", "(")
        params = []
        if not self.check("op", ")"):
            while True:
                ptype = self.parse_type()
                pname = self.expect("id").value
                params.append((pname, ptype))
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return params

    # -- statements -------------------------------------------------------------
    def parse_block(self):
        line = self.expect("op", "{").line
        statements = []
        while not self.check("op", "}"):
            statements.append(self.parse_statement())
        self.expect("op", "}")
        return ast.Block(statements, line)

    def parse_statement(self):
        token = self.tok
        if token.kind == "op" and token.value == "{":
            return self.parse_block()
        if token.kind == "kw":
            if token.value == "if":
                return self._parse_if()
            if token.value == "while":
                return self._parse_while()
            if token.value == "do":
                return self._parse_do_while()
            if token.value == "for":
                return self._parse_for()
            if token.value == "return":
                line = self.advance().line
                value = None
                if not self.check("op", ";"):
                    value = self.parse_expression()
                self.expect("op", ";")
                return ast.Return(value, line)
            if token.value == "break":
                line = self.advance().line
                self.expect("op", ";")
                return ast.Break(line)
            if token.value == "continue":
                line = self.advance().line
                self.expect("op", ";")
                return ast.Continue(line)
        if self._at_type():
            return self._parse_var_decl()
        line = token.line
        expr = self.parse_expression()
        self.expect("op", ";")
        return ast.ExprStmt(expr, line)

    def _parse_var_decl(self, terminated=True):
        line = self.tok.line
        vtype = self.parse_type()
        decls = []
        while True:
            name = self.expect("id").value
            init = None
            if self.accept("op", "="):
                init = self.parse_expression()
            decls.append(ast.VarDecl(name, vtype, init, line))
            if not self.accept("op", ","):
                break
        if terminated:
            self.expect("op", ";")
        if len(decls) == 1:
            return decls[0]
        return ast.Block(decls, line)

    def _parse_if(self):
        line = self.expect("kw", "if").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        then = self.parse_statement()
        otherwise = None
        if self.accept("kw", "else"):
            otherwise = self.parse_statement()
        return ast.If(cond, then, otherwise, line)

    def _parse_while(self):
        line = self.expect("kw", "while").line
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.While(cond, body, line)

    def _parse_do_while(self):
        line = self.expect("kw", "do").line
        body = self.parse_statement()
        self.expect("kw", "while")
        self.expect("op", "(")
        cond = self.parse_expression()
        self.expect("op", ")")
        self.expect("op", ";")
        return ast.DoWhile(cond, body, line)

    def _parse_for(self):
        line = self.expect("kw", "for").line
        self.expect("op", "(")
        init = None
        if not self.check("op", ";"):
            if self._at_type():
                init = self._parse_var_decl(terminated=False)
            else:
                init = ast.ExprStmt(self.parse_expression(), line)
        self.expect("op", ";")
        cond = None
        if not self.check("op", ";"):
            cond = self.parse_expression()
        self.expect("op", ";")
        update = None
        if not self.check("op", ")"):
            update = ast.ExprStmt(self.parse_expression(), self.tok.line)
        self.expect("op", ")")
        body = self.parse_statement()
        return ast.For(init, cond, update, body, line)

    # -- expressions -------------------------------------------------------------
    def parse_expression(self):
        return self._parse_assignment()

    def _parse_assignment(self):
        left = self._parse_ternary()
        token = self.tok
        if token.kind == "op" and token.value in _ASSIGN_OPS:
            op = self.advance().value
            value = self._parse_assignment()
            if not isinstance(left, (ast.Name, ast.FieldAccess, ast.Index)):
                raise CompileError("invalid assignment target", token.line)
            return ast.Assign(left, _ASSIGN_OPS[op], value, token.line)
        return left

    def _parse_ternary(self):
        cond = self._parse_binary(0)
        if self.check("op", "?"):
            line = self.advance().line
            then = self.parse_expression()
            self.expect("op", ":")
            otherwise = self._parse_ternary()
            return ast.Ternary(cond, then, otherwise, line)
        return cond

    def _parse_binary(self, level):
        if level >= len(_BINARY_LEVELS):
            return self._parse_unary()
        ops = _BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while self.tok.kind == "op" and self.tok.value in ops:
            token = self.advance()
            right = self._parse_binary(level + 1)
            left = ast.Binary(token.value, left, right, token.line)
        return left

    def _parse_unary(self):
        token = self.tok
        if token.kind == "op" and token.value in ("-", "!", "~"):
            self.advance()
            operand = self._parse_unary()
            return ast.Unary(token.value, operand, token.line)
        if token.kind == "op" and token.value in ("++", "--"):
            self.advance()
            target = self._parse_unary()
            delta = 1 if token.value == "++" else -1
            return ast.IncDec(target, delta, True, token.line)
        # Primitive cast: `(int) expr` / `(float) expr`.
        if (token.kind == "op" and token.value == "("
                and self.peek(1).kind == "kw"
                and self.peek(1).value in ("int", "float")
                and self.peek(2).kind == "op" and self.peek(2).value == ")"):
            self.advance()
            cast_type = Type(self.advance().value)
            self.advance()
            operand = self._parse_unary()
            return ast.Cast(cast_type, operand, token.line)
        return self._parse_postfix()

    def _parse_postfix(self):
        expr = self._parse_primary()
        while True:
            token = self.tok
            if token.kind != "op":
                break
            if token.value == ".":
                self.advance()
                name = self.expect("id").value
                if self.check("op", "("):
                    args = self._parse_args()
                    expr = ast.Call(expr, name, args, token.line)
                elif name == "length" and not self.check("op", "("):
                    expr = ast.ArrayLength(expr, token.line)
                else:
                    expr = ast.FieldAccess(expr, name, token.line)
            elif token.value == "[":
                self.advance()
                index = self.parse_expression()
                self.expect("op", "]")
                expr = ast.Index(expr, index, token.line)
            elif token.value in ("++", "--"):
                self.advance()
                delta = 1 if token.value == "++" else -1
                expr = ast.IncDec(expr, delta, False, token.line)
            else:
                break
        return expr

    def _parse_primary(self):
        token = self.tok
        if token.kind == "int":
            self.advance()
            return ast.IntLit(token.value, token.line)
        if token.kind == "float":
            self.advance()
            return ast.FloatLit(token.value, token.line)
        if token.kind == "kw":
            if token.value in ("true", "false"):
                self.advance()
                return ast.BoolLit(token.value == "true", token.line)
            if token.value == "null":
                self.advance()
                return ast.NullLit(token.line)
            if token.value == "this":
                self.advance()
                return ast.This(token.line)
            if token.value == "new":
                return self._parse_new()
        if token.kind == "op" and token.value == "(":
            self.advance()
            expr = self.parse_expression()
            self.expect("op", ")")
            return expr
        if token.kind == "id":
            self.advance()
            if self.check("op", "("):
                args = self._parse_args()
                return ast.Call(None, token.value, args, token.line)
            return ast.Name(token.value, token.line)
        raise CompileError("unexpected token %r" % (token.value,), token.line)

    def _parse_new(self):
        line = self.expect("kw", "new").line
        token = self.tok
        if token.kind == "kw" and token.value in ("int", "float", "boolean"):
            base = self.advance().value
            return self._parse_new_array(Type(base), line)
        name = self.expect("id").value
        if self.check("op", "["):
            return self._parse_new_array(Type(name), line)
        args = self._parse_args()
        return ast.New(name, args, line)

    def _parse_new_array(self, element_type, line):
        lengths = []
        self.expect("op", "[")
        lengths.append(self.parse_expression())
        self.expect("op", "]")
        extra_dims = 0
        while self.check("op", "["):
            if self.peek(1).kind == "op" and self.peek(1).value == "]":
                self.advance()
                self.advance()
                extra_dims += 1
            else:
                self.advance()
                lengths.append(self.parse_expression())
                self.expect("op", "]")
        total_type = Type(element_type.base,
                          element_type.dims + len(lengths) + extra_dims)
        __ = total_type
        element = Type(element_type.base, element_type.dims + extra_dims)
        return ast.NewArray(element, lengths, line)

    def _parse_args(self):
        self.expect("op", "(")
        args = []
        if not self.check("op", ")"):
            while True:
                args.append(self.parse_expression())
                if not self.accept("op", ","):
                    break
        self.expect("op", ")")
        return args


def parse(source):
    """Parse MiniJava source text into a :class:`ProgramDecl`."""
    return Parser(source).parse_program()
