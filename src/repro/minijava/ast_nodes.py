"""AST node classes for MiniJava.

Plain data holders; all behaviour lives in the parser and code generator.
Every node carries a source line for error messages.
"""


class Node:
    __slots__ = ("line",)

    def __init__(self, line):
        self.line = line


# -- declarations ------------------------------------------------------------

class ProgramDecl(Node):
    __slots__ = ("classes",)

    def __init__(self, classes):
        super().__init__(1)
        self.classes = classes


class ClassDecl(Node):
    __slots__ = ("name", "superclass", "fields", "methods")

    def __init__(self, name, superclass, fields, methods, line):
        super().__init__(line)
        self.name = name
        self.superclass = superclass
        self.fields = fields
        self.methods = methods


class FieldDecl(Node):
    __slots__ = ("name", "type", "is_static")

    def __init__(self, name, ftype, is_static, line):
        super().__init__(line)
        self.name = name
        self.type = ftype
        self.is_static = is_static


class MethodDecl(Node):
    __slots__ = ("name", "params", "return_type", "is_static",
                 "is_synchronized", "body", "is_constructor")

    def __init__(self, name, params, return_type, is_static,
                 is_synchronized, body, line, is_constructor=False):
        super().__init__(line)
        self.name = name
        self.params = params          # list[(name, Type)]
        self.return_type = return_type
        self.is_static = is_static
        self.is_synchronized = is_synchronized
        self.body = body              # Block
        self.is_constructor = is_constructor


# -- statements ------------------------------------------------------------

class Block(Node):
    __slots__ = ("statements",)

    def __init__(self, statements, line):
        super().__init__(line)
        self.statements = statements


class VarDecl(Node):
    __slots__ = ("name", "type", "init")

    def __init__(self, name, vtype, init, line):
        super().__init__(line)
        self.name = name
        self.type = vtype
        self.init = init


class If(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise


class While(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class DoWhile(Node):
    __slots__ = ("cond", "body")

    def __init__(self, cond, body, line):
        super().__init__(line)
        self.cond = cond
        self.body = body


class For(Node):
    __slots__ = ("init", "cond", "update", "body")

    def __init__(self, init, cond, update, body, line):
        super().__init__(line)
        self.init = init          # statement or None
        self.cond = cond          # expression or None
        self.update = update      # statement or None
        self.body = body


class Return(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class Break(Node):
    __slots__ = ()


class Continue(Node):
    __slots__ = ()


class ExprStmt(Node):
    __slots__ = ("expr",)

    def __init__(self, expr, line):
        super().__init__(line)
        self.expr = expr


# -- expressions -------------------------------------------------------------

class IntLit(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class FloatLit(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class BoolLit(Node):
    __slots__ = ("value",)

    def __init__(self, value, line):
        super().__init__(line)
        self.value = value


class NullLit(Node):
    __slots__ = ()


class Name(Node):
    """An identifier: local, parameter, field (implicit this), or class."""
    __slots__ = ("ident",)

    def __init__(self, ident, line):
        super().__init__(line)
        self.ident = ident


class This(Node):
    __slots__ = ()


class FieldAccess(Node):
    __slots__ = ("target", "name")

    def __init__(self, target, name, line):
        super().__init__(line)
        self.target = target
        self.name = name


class Index(Node):
    __slots__ = ("target", "index")

    def __init__(self, target, index, line):
        super().__init__(line)
        self.target = target
        self.index = index


class Call(Node):
    """Method call: target is None (implicit this/static), an expression,
    or a Name that resolves to a class (static call)."""
    __slots__ = ("target", "name", "args")

    def __init__(self, target, name, args, line):
        super().__init__(line)
        self.target = target
        self.name = name
        self.args = args


class New(Node):
    __slots__ = ("class_name", "args")

    def __init__(self, class_name, args, line):
        super().__init__(line)
        self.class_name = class_name
        self.args = args


class NewArray(Node):
    __slots__ = ("element_type", "lengths")

    def __init__(self, element_type, lengths, line):
        super().__init__(line)
        self.element_type = element_type   # Type of elements (innermost)
        self.lengths = lengths             # one expr per sized dimension


class ArrayLength(Node):
    __slots__ = ("target",)

    def __init__(self, target, line):
        super().__init__(line)
        self.target = target


class Unary(Node):
    __slots__ = ("op", "operand")

    def __init__(self, op, operand, line):
        super().__init__(line)
        self.op = op            # "-", "!", "~"
        self.operand = operand


class Cast(Node):
    __slots__ = ("type", "operand")

    def __init__(self, cast_type, operand, line):
        super().__init__(line)
        self.type = cast_type
        self.operand = operand


class Binary(Node):
    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right, line):
        super().__init__(line)
        self.op = op
        self.left = left
        self.right = right


class Assign(Node):
    """``target op= value`` where op is "" for plain assignment."""
    __slots__ = ("target", "op", "value")

    def __init__(self, target, op, value, line):
        super().__init__(line)
        self.target = target
        self.op = op
        self.value = value


class IncDec(Node):
    """``target++`` / ``target--`` (prefix and postfix)."""
    __slots__ = ("target", "delta", "is_prefix")

    def __init__(self, target, delta, is_prefix, line):
        super().__init__(line)
        self.target = target
        self.delta = delta
        self.is_prefix = is_prefix


class Ternary(Node):
    __slots__ = ("cond", "then", "otherwise")

    def __init__(self, cond, then, otherwise, line):
        super().__init__(line)
        self.cond = cond
        self.then = then
        self.otherwise = otherwise
