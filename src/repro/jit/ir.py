"""Register-machine IR — the microJIT's "native code".

The IR plays the role of the MIPS machine code in the paper: it is what
the simulated Hydra cores execute, what the TEST annotation instructions
are woven into, and what the STL recompiler transforms.

Registers are virtual (no spilling).  By convention register 0 holds the
constant zero; bytecode local *v* lives in register ``1 + v``; operand
stack depth *d* lives in ``1 + max_locals + d``; temporaries follow.
Branch targets are :class:`Label` objects until :func:`finalize` resolves
them to instruction indices (labels occupy no executable slot).
"""

from enum import IntEnum, unique


@unique
class IROp(IntEnum):
    LABEL = 0           # pseudo: target marker, removed by finalize()

    # -- moves / constants ------------------------------------------------
    LI = 1              # dst <- imm (int or float)
    MOV = 2             # dst <- a

    # -- integer ALU (Java 32-bit wrapping) ---------------------------------
    ADD = 10
    SUB = 11
    MUL = 12
    DIV = 13            # traps on zero divisor
    REM = 14
    NEG = 15
    AND = 16
    OR = 17
    XOR = 18
    SHL = 19
    SHR = 20
    USHR = 21
    ADDI = 22           # dst <- a + imm
    SLLI = 23           # dst <- a << imm

    # -- float ALU -----------------------------------------------------------
    FADD = 30
    FSUB = 31
    FMUL = 32
    FDIV = 33
    FNEG = 34
    FREM = 35

    # -- compares / conversions ------------------------------------------------
    SEQ = 40            # dst <- (a == b)
    SNE = 41
    SLT = 42
    SLE = 43
    SGT = 44
    SGE = 45
    FCMP = 46           # dst <- -1/0/1 (NaN -> -1)
    I2F = 47
    F2I = 48

    # -- control flow ------------------------------------------------------------
    J = 50              # jump to target
    BEQ = 51            # branch if a == b
    BNE = 52
    BLT = 53
    BGE = 54
    BGT = 55
    BLE = 56
    BEQZ = 57           # branch if a == 0
    BNEZ = 58

    # -- memory ---------------------------------------------------------------
    LW = 60             # dst <- mem[a + imm]   (a None -> absolute)
    SW = 61             # mem[b + imm] <- a     (b None -> absolute)
    LWNV = 62           # non-violating load (paper's lwnv)

    # -- runtime services ---------------------------------------------------------
    ALLOC = 70          # dst <- allocate a bytes; aux=AllocInfo
    CALL = 71           # dst <- call aux=(cls,name) with args (static)
    CALLV = 72          # dst <- virtual call, receiver = args[0]
    RET = 73            # return a (or None)
    INTRIN = 74         # dst <- intrinsic aux=name over args
    MONENTER = 75       # acquire object lock at a
    MONEXIT = 76
    NULLCHK = 77        # trap NullPointerException if a == 0
    BOUNDCHK = 78       # trap ArrayIndexOutOfBounds unless 0 <= a < b
    TRAP = 79           # raise guest exception aux=kind

    # -- TEST annotation instructions (Table 2) ----------------------------------
    SLOOP = 80          # start candidate loop aux=loop_id, imm=#local slots
    EOI = 81            # end of iteration for aux=loop_id
    ELOOP = 82          # end of candidate loop aux=loop_id
    LWL = 83            # local-variable load annotation, imm=slot, aux=loop_id
    SWL = 84            # local-variable store annotation, imm=slot, aux=loop_id

    # -- TLS pseudo-ops (STL-compiled code) ------------------------------------------
    STL_RUN = 90        # run speculative loop aux=StlDescriptor; dst <- exit id
    STL_EOI_END = 91    # end of one speculative thread (thread code only)
    STL_EXIT = 92       # leave the loop via exit aux=exit_id (thread code only)
    WAITLOCK = 93       # spin with lwnv on fp slot imm until it equals iteration
    SIGNAL = 94         # store iteration+1 to fp slot imm
    FORCE_RESET = 95    # reset-able inductor written unpredictably; aux=info


#: Branch-family ops (have a label/index target).
BRANCH_IR_OPS = frozenset({
    IROp.J, IROp.BEQ, IROp.BNE, IROp.BLT, IROp.BGE, IROp.BGT, IROp.BLE,
    IROp.BEQZ, IROp.BNEZ,
})

COND_IR_BRANCHES = BRANCH_IR_OPS - {IROp.J}

#: Ops after which control never falls through.
IR_TERMINATORS = frozenset({IROp.J, IROp.RET, IROp.TRAP, IROp.STL_EOI_END,
                            IROp.STL_EXIT})

_TWO_SRC = frozenset({
    IROp.ADD, IROp.SUB, IROp.MUL, IROp.DIV, IROp.REM, IROp.AND, IROp.OR,
    IROp.XOR, IROp.SHL, IROp.SHR, IROp.USHR,
    IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FDIV, IROp.FREM,
    IROp.SEQ, IROp.SNE, IROp.SLT, IROp.SLE, IROp.SGT, IROp.SGE, IROp.FCMP,
    IROp.BEQ, IROp.BNE, IROp.BLT, IROp.BGE, IROp.BGT, IROp.BLE,
    IROp.BOUNDCHK,
})

_ONE_SRC = frozenset({
    IROp.MOV, IROp.NEG, IROp.FNEG, IROp.ADDI, IROp.SLLI, IROp.I2F, IROp.F2I,
    IROp.BEQZ, IROp.BNEZ, IROp.RET, IROp.MONENTER, IROp.MONEXIT,
    IROp.NULLCHK, IROp.ALLOC,
})

#: Ops that write their ``dst`` register.
DEF_OPS = frozenset({
    IROp.LI, IROp.MOV, IROp.ADD, IROp.SUB, IROp.MUL, IROp.DIV, IROp.REM,
    IROp.NEG, IROp.AND, IROp.OR, IROp.XOR, IROp.SHL, IROp.SHR, IROp.USHR,
    IROp.ADDI, IROp.SLLI, IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FDIV,
    IROp.FNEG, IROp.FREM, IROp.SEQ, IROp.SNE, IROp.SLT, IROp.SLE, IROp.SGT,
    IROp.SGE, IROp.FCMP, IROp.I2F, IROp.F2I, IROp.LW, IROp.LWNV, IROp.ALLOC,
    IROp.CALL, IROp.CALLV, IROp.INTRIN, IROp.STL_RUN,
})


class Label:
    """Symbolic branch target; resolved to an index by finalize()."""

    __slots__ = ("name",)
    _counter = [0]

    def __init__(self, name=None):
        if name is None:
            Label._counter[0] += 1
            name = "L%d" % Label._counter[0]
        self.name = name

    def __repr__(self):
        return self.name


class AllocInfo:
    """Static metadata attached to an ALLOC instruction."""

    __slots__ = ("kind", "class_name", "class_id", "is_array", "elem_kind")

    def __init__(self, kind, class_name=None, class_id=None, is_array=False,
                 elem_kind=None):
        self.kind = kind                # "object" | "array"
        self.class_name = class_name
        self.class_id = class_id
        self.is_array = is_array
        self.elem_kind = elem_kind      # "int" | "float" | "ref"

    def __repr__(self):
        if self.is_array:
            return "array[%s]" % self.elem_kind
        return "object %s" % self.class_name


class IRInstr:
    """One IR instruction."""

    __slots__ = ("op", "dst", "a", "b", "imm", "target", "aux", "args",
                 "line")

    def __init__(self, op, dst=None, a=None, b=None, imm=None, target=None,
                 aux=None, args=None, line=None):
        self.op = op
        self.dst = dst
        self.a = a
        self.b = b
        self.imm = imm
        self.target = target
        self.aux = aux
        self.args = args
        self.line = line

    # -- dataflow accessors ---------------------------------------------------
    def defs(self):
        """Register written by this instruction, or None."""
        if self.op in DEF_OPS:
            return self.dst
        return None

    def uses(self):
        """Registers read by this instruction."""
        op = self.op
        used = []
        if op in _TWO_SRC:
            if self.a is not None:
                used.append(self.a)
            if self.b is not None:
                used.append(self.b)
        elif op in _ONE_SRC:
            if self.a is not None:
                used.append(self.a)
        elif op in (IROp.LW, IROp.LWNV):
            if self.a is not None:
                used.append(self.a)
        elif op == IROp.SW:
            used.append(self.a)
            if self.b is not None:
                used.append(self.b)
        elif op in (IROp.CALL, IROp.CALLV, IROp.INTRIN):
            used.extend(self.args or ())
        elif op == IROp.STL_RUN and self.aux is not None:
            # The TLS runtime reads these master registers at startup
            # (init values + reduction entry values); liveness must see
            # them or a sibling STL transform will fail to communicate
            # a value this region consumes.
            used.extend(reg for __, reg in self.aux.init_values)
            used.extend(spec.acc_reg for spec in self.aux.reductions)
        return used

    def is_branch(self):
        return self.op in BRANCH_IR_OPS

    def __repr__(self):
        parts = [self.op.name]
        if self.dst is not None:
            parts.append("r%d" % self.dst)
        for reg in (self.a, self.b):
            if reg is not None:
                parts.append("r%d" % reg)
        if self.imm is not None:
            parts.append("#%r" % (self.imm,))
        if self.target is not None:
            parts.append("->%r" % (self.target,))
        if self.aux is not None:
            parts.append("{%r}" % (self.aux,))
        if self.args:
            parts.append("(%s)" % ",".join("r%d" % r for r in self.args))
        return " ".join(parts)


class IRMethod:
    """A compiled method: label-form IR plus register bookkeeping."""

    def __init__(self, name, num_params, returns_value, nregs,
                 is_synchronized=False, sync_static_class=None):
        self.name = name
        self.num_params = num_params      # params arrive in regs 1..num_params
        self.returns_value = returns_value
        self.nregs = nregs
        self.is_synchronized = is_synchronized
        self.sync_static_class = sync_static_class
        self.code = []                    # label-form: IRInstr + LABEL markers
        self.finalized = None             # list[IRInstr] with int targets
        self.stls = {}                    # stl id -> StlDescriptor
        self.num_locals = 0               # bytecode locals live in r1..r(n)

    def new_reg(self):
        reg = self.nregs
        self.nregs += 1
        return reg

    def emit(self, op, **kwargs):
        instr = IRInstr(op, **kwargs)
        self.code.append(instr)
        return instr

    def finalize(self):
        """Resolve labels to indices and strip LABEL markers."""
        self.finalized = finalize(self.code)
        return self.finalized

    def __repr__(self):
        return "<IRMethod %s regs=%d len=%d>" % (
            self.name, self.nregs, len(self.code))


def finalize(code):
    """Resolve Label targets to integer indices; returns executable list."""
    return finalize_with_positions(code)[0]


def finalize_with_positions(code):
    """Like :func:`finalize` but also returns {Label: index}."""
    positions = {}
    out = []
    for instr in code:
        if instr.op == IROp.LABEL:
            positions[instr.aux] = len(out)
        else:
            out.append(instr)
    executable = []
    for instr in out:
        if isinstance(instr.target, Label):
            clone = IRInstr(instr.op, instr.dst, instr.a, instr.b, instr.imm,
                            positions[instr.target], instr.aux, instr.args,
                            instr.line)
            executable.append(clone)
        else:
            executable.append(instr)
    return executable, positions


def label_instr(label):
    return IRInstr(IROp.LABEL, aux=label)
