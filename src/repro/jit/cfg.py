"""Control-flow graph, dominators and natural loops over label-form IR.

The microJIT derives a CFG from compiled code to identify every natural
loop; each natural loop becomes a prospective speculative thread loop
(STL) exactly as in paper section 3.2 ("All natural loops identified
from the CFG are marked as prospective STLs").
"""

from ..errors import JitError
from .ir import COND_IR_BRANCHES, IR_TERMINATORS, IROp


class Block:
    __slots__ = ("bid", "labels", "instrs", "succs", "preds", "start", "end")

    def __init__(self, bid):
        self.bid = bid
        self.labels = []      # Label objects naming this block
        self.instrs = []      # IRInstr refs (shared with method.code)
        self.succs = []
        self.preds = []
        self.start = None     # index in the code list of the first element
        self.end = None       # index just past the last element

    def terminator(self):
        return self.instrs[-1] if self.instrs else None

    def __repr__(self):
        return "B%d" % self.bid


class Loop:
    """A natural loop: header block plus the body block set."""

    __slots__ = ("header", "blocks", "backedges", "parent", "depth",
                 "loop_id", "entries", "exits")

    def __init__(self, header, blocks, backedges):
        self.header = header          # block id
        self.blocks = blocks          # frozenset of block ids
        self.backedges = backedges    # list of (tail block id, header)
        self.parent = None            # enclosing Loop or None
        self.depth = 1
        self.loop_id = None
        self.entries = []             # (pred block id outside, header)
        self.exits = []               # (block id in loop, succ id outside)

    def contains(self, other):
        return other.blocks < self.blocks

    def __repr__(self):
        return "<Loop hdr=B%d depth=%d blocks=%d>" % (
            self.header, self.depth, len(self.blocks))


class CFG:
    def __init__(self, blocks, label_map, entry=0):
        self.blocks = blocks
        self.label_map = label_map    # Label -> block id
        self.entry = entry

    def __len__(self):
        return len(self.blocks)


def build_cfg(code):
    """Partition label-form IR into basic blocks and wire edges."""
    # Pass 1: find leaders.  A new block starts at each LABEL and after
    # each terminator/branch.  Consecutive labels share one block.
    blocks = []
    label_map = {}
    current = None

    def ensure_block():
        nonlocal current
        if current is None:
            current = Block(len(blocks))
            blocks.append(current)
        return current

    for pos, instr in enumerate(code):
        if instr.op == IROp.LABEL:
            if current is not None and current.instrs:
                current = None     # previous block falls through here
            block = ensure_block()
            if block.start is None:
                block.start = pos
            block.end = pos + 1
            block.labels.append(instr.aux)
            label_map[instr.aux] = block.bid
        else:
            block = ensure_block()
            if block.start is None:
                block.start = pos
            block.end = pos + 1
            block.instrs.append(instr)
            if instr.op in IR_TERMINATORS or instr.op in COND_IR_BRANCHES:
                current = None

    # Pass 2: successors.
    for index, block in enumerate(blocks):
        term = block.terminator()
        if term is None:
            # Empty block (labels only): falls through.
            if index + 1 < len(blocks):
                block.succs.append(index + 1)
            continue
        op = term.op
        if op == IROp.J:
            block.succs.append(label_map[_label_of(term.target)])
        elif op in COND_IR_BRANCHES:
            block.succs.append(label_map[_label_of(term.target)])
            if index + 1 < len(blocks):
                block.succs.append(index + 1)
        elif op in IR_TERMINATORS:
            pass  # RET / TRAP / STL_EOI_END / STL_EXIT: no successors
        else:
            if index + 1 < len(blocks):
                block.succs.append(index + 1)
    for block in blocks:
        for succ in block.succs:
            blocks[succ].preds.append(block.bid)
    return CFG(blocks, label_map)


def _label_of(target):
    if target is None:
        raise JitError("branch without a target in label-form IR")
    return target


def reachable_blocks(cfg):
    """Block ids reachable from the entry."""
    seen = {cfg.entry}
    stack = [cfg.entry]
    while stack:
        bid = stack.pop()
        for succ in cfg.blocks[bid].succs:
            if succ not in seen:
                seen.add(succ)
                stack.append(succ)
    return seen


def compute_dominators(cfg):
    """Iterative dominator computation; returns list of frozensets.

    Unreachable blocks get an empty dominator set — otherwise their
    never-updated "everything dominates me" initialization manufactures
    fake natural loops out of dead code left by STL rewrites.
    """
    nblocks = len(cfg.blocks)
    reachable = reachable_blocks(cfg)
    all_blocks = frozenset(reachable)
    dom = [all_blocks if bid in reachable else frozenset()
           for bid in range(nblocks)]
    dom[cfg.entry] = frozenset([cfg.entry])
    # Reverse-postorder would converge faster; simple iteration is fine
    # at our method sizes.
    changed = True
    while changed:
        changed = False
        for bid in range(nblocks):
            if bid == cfg.entry or bid not in reachable:
                continue
            preds = [p for p in cfg.blocks[bid].preds if p in reachable]
            if not preds:
                continue
            new = None
            for pred in preds:
                new = dom[pred] if new is None else (new & dom[pred])
            new = (new or frozenset()) | {bid}
            if new != dom[bid]:
                dom[bid] = new
                changed = True
    return dom


def find_natural_loops(cfg):
    """Identify natural loops [Muchnick]; merges loops sharing a header.

    Unreachable code (dead blocks left by STL host rewrites) is ignored
    entirely: it can neither define loops nor belong to their bodies.
    """
    dom = compute_dominators(cfg)
    reachable = reachable_blocks(cfg)
    loops_by_header = {}
    for block in cfg.blocks:
        if block.bid not in reachable:
            continue
        for succ in block.succs:
            if succ in dom[block.bid]:
                # backedge block.bid -> succ
                body = _loop_body(cfg, succ, block.bid, reachable)
                loop = loops_by_header.get(succ)
                if loop is None:
                    loops_by_header[succ] = Loop(succ, body,
                                                 [(block.bid, succ)])
                else:
                    loop.blocks = loop.blocks | body
                    loop.backedges.append((block.bid, succ))
    loops = sorted(loops_by_header.values(), key=lambda l: len(l.blocks))
    _assign_nesting(loops)
    for loop in loops:
        _compute_edges(cfg, loop)
    return loops


def _loop_body(cfg, header, tail, reachable):
    body = {header, tail}
    stack = [tail]
    while stack:
        bid = stack.pop()
        if bid == header:
            continue
        for pred in cfg.blocks[bid].preds:
            if pred not in body and pred in reachable:
                body.add(pred)
                stack.append(pred)
    return frozenset(body)


def _assign_nesting(loops):
    # loops sorted by size ascending: parent = smallest strictly-larger
    # loop containing this one.
    for index, loop in enumerate(loops):
        for candidate in loops[index + 1:]:
            if loop.blocks <= candidate.blocks and loop is not candidate:
                if loop.blocks == candidate.blocks:
                    continue
                loop.parent = candidate
                break
    for loop in loops:
        depth = 1
        parent = loop.parent
        while parent is not None:
            depth += 1
            parent = parent.parent
        loop.depth = depth


def _compute_edges(cfg, loop):
    loop.entries = []
    loop.exits = []
    for pred in cfg.blocks[loop.header].preds:
        if pred not in loop.blocks:
            loop.entries.append((pred, loop.header))
    for bid in loop.blocks:
        for succ in cfg.blocks[bid].succs:
            if succ not in loop.blocks:
                loop.exits.append((bid, succ))


def loop_nest_depth(loops):
    return max((loop.depth for loop in loops), default=0)
