"""microJIT optimizer.

The paper's microJIT performs common sub-expression elimination, copy
propagation, constant propagation and dead-code elimination while
interleaving compilation stages.  We run the same local optimizations
over the label-form IR; they matter here because the translator's
slot-pinned register scheme produces many redundant MOVs.
"""

from ..bytecode.instructions import i32
from .cfg import build_cfg
from .ir import DEF_OPS, IRInstr, IROp

#: Pure ops whose result can be deleted when dead / reused by CSE.
_PURE_OPS = frozenset({
    IROp.LI, IROp.MOV, IROp.ADD, IROp.SUB, IROp.MUL, IROp.NEG, IROp.AND,
    IROp.OR, IROp.XOR, IROp.SHL, IROp.SHR, IROp.USHR, IROp.ADDI, IROp.SLLI,
    IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FNEG, IROp.SEQ, IROp.SNE,
    IROp.SLT, IROp.SLE, IROp.SGT, IROp.SGE, IROp.FCMP, IROp.I2F, IROp.F2I,
})

#: Dead defs of these can be removed even though they touch memory: a
#: dead LW's only architectural effect is its latency.
_REMOVABLE_IF_DEAD = _PURE_OPS | {IROp.LW, IROp.FDIV, IROp.FREM}

_CSE_OPS = frozenset({
    IROp.ADD, IROp.SUB, IROp.MUL, IROp.AND, IROp.OR, IROp.XOR, IROp.SHL,
    IROp.SHR, IROp.USHR, IROp.ADDI, IROp.SLLI, IROp.SEQ, IROp.SNE,
    IROp.SLT, IROp.SLE, IROp.SGT, IROp.SGE, IROp.I2F,
})

_FOLDABLE = {
    IROp.ADD: lambda a, b: i32(a + b),
    IROp.SUB: lambda a, b: i32(a - b),
    IROp.MUL: lambda a, b: i32(a * b),
    IROp.AND: lambda a, b: i32(a & b),
    IROp.OR: lambda a, b: i32(a | b),
    IROp.XOR: lambda a, b: i32(a ^ b),
    IROp.SHL: lambda a, b: i32(a << (b & 31)),
    IROp.SHR: lambda a, b: i32(a >> (b & 31)),
    IROp.USHR: lambda a, b: i32((a & 0xFFFFFFFF) >> (b & 31)),
    IROp.SEQ: lambda a, b: int(a == b),
    IROp.SNE: lambda a, b: int(a != b),
    IROp.SLT: lambda a, b: int(a < b),
    IROp.SLE: lambda a, b: int(a <= b),
    IROp.SGT: lambda a, b: int(a > b),
    IROp.SGE: lambda a, b: int(a >= b),
}


def optimize(ir_method, passes=2):
    """Run the local optimization pipeline *passes* times."""
    for __ in range(passes):
        _local_propagation(ir_method)
        _coalesce_moves(ir_method)
        _dead_code_elimination(ir_method)
    return ir_method


def _coalesce_moves(ir_method):
    """Fold ``op s, ...`` immediately followed by ``MOV r, s`` into
    ``op r, ...`` when s is dead afterwards.  This restores direct defs
    of bytecode locals (``ADD r_sum, r_sum, x``), which the carried-local
    pattern matcher depends on."""
    cfg = build_cfg(ir_method.code)
    __, live_out = liveness(cfg)
    removed = set()
    for block in cfg.blocks:
        instrs = block.instrs
        for index in range(1, len(instrs)):
            move = instrs[index]
            if move.op != IROp.MOV or move.a == move.dst:
                continue
            prev = instrs[index - 1]
            if id(prev) in removed or prev.defs() != move.a:
                continue
            src = move.a
            if src in live_out[block.bid]:
                continue
            # src must not be read (or kept) after the MOV in this block.
            conflict = False
            for later in instrs[index + 1:]:
                if src in later.uses():
                    conflict = True
                    break
                if later.defs() == src:
                    break
            if conflict:
                continue
            prev.dst = move.dst
            removed.add(id(move))
    if removed:
        ir_method.code = [instr for instr in ir_method.code
                          if id(instr) not in removed]


# ---------------------------------------------------------------------------
# copy/constant propagation + folding + local CSE (per basic block)
# ---------------------------------------------------------------------------

def _local_propagation(ir_method):
    cfg = build_cfg(ir_method.code)
    for block in cfg.blocks:
        _propagate_block(block.instrs)


def _propagate_block(instrs):
    copies = {}      # reg -> source reg (still valid)
    consts = {}      # reg -> int constant (float consts not propagated)
    cse = {}         # (op, a, b, imm) -> dst reg holding the value

    def resolve(reg):
        seen = set()
        while reg in copies and reg not in seen:
            seen.add(reg)
            reg = copies[reg]
        return reg

    def invalidate(reg):
        copies.pop(reg, None)
        consts.pop(reg, None)
        for key, other in list(copies.items()):
            if other == reg:
                del copies[key]
        for key in [k for k, v in cse.items()
                    if v == reg or k[1] == reg or k[2] == reg]:
            del cse[key]

    for instr in instrs:
        # Rewrite uses through the copy map.
        if instr.a is not None and instr.op not in (IROp.LI,):
            instr.a = resolve(instr.a)
        if instr.b is not None:
            instr.b = resolve(instr.b)
        if instr.args:
            instr.args = [resolve(reg) for reg in instr.args]

        # Constant-fold integer ALU ops with known operands.
        op = instr.op
        if op in _FOLDABLE and instr.a in consts and instr.b in consts:
            value = _FOLDABLE[op](consts[instr.a], consts[instr.b])
            instr.op = IROp.LI
            instr.imm = value
            instr.a = instr.b = None
            op = IROp.LI
        elif op == IROp.ADDI and instr.a in consts:
            instr.op = IROp.LI
            instr.imm = i32(consts[instr.a] + instr.imm)
            instr.a = None
            op = IROp.LI
        elif op == IROp.SLLI and instr.a in consts:
            instr.op = IROp.LI
            instr.imm = i32(consts[instr.a] << (instr.imm & 31))
            instr.a = None
            op = IROp.LI
        # Strength-reduce ADD/SUB with a known constant operand to ADDI.
        elif op == IROp.ADD and instr.b in consts:
            instr.op = IROp.ADDI
            instr.imm = consts[instr.b]
            instr.b = None
            op = IROp.ADDI
        elif op == IROp.ADD and instr.a in consts:
            instr.op = IROp.ADDI
            instr.imm = consts[instr.a]
            instr.a = instr.b
            instr.b = None
            op = IROp.ADDI
        elif op == IROp.SUB and instr.b in consts:
            instr.op = IROp.ADDI
            instr.imm = i32(-consts[instr.b])
            instr.b = None
            op = IROp.ADDI
        elif op == IROp.SHL and instr.b in consts:
            instr.op = IROp.SLLI
            instr.imm = consts[instr.b] & 31
            instr.b = None
            op = IROp.SLLI

        # Local CSE.
        if op in _CSE_OPS:
            key = (op, instr.a, instr.b, instr.imm)
            prior = cse.get(key)
            if prior is not None and prior != instr.dst:
                instr.op = IROp.MOV
                instr.a = prior
                instr.b = None
                instr.imm = None
                op = IROp.MOV

        # Update value-tracking state.
        dst = instr.defs()
        if dst is not None:
            invalidate(dst)
            if op == IROp.LI and isinstance(instr.imm, int):
                consts[dst] = instr.imm
            elif op == IROp.MOV and instr.a != dst:
                copies[dst] = instr.a
                if instr.a in consts:
                    consts[dst] = consts[instr.a]
            elif op in _CSE_OPS:
                cse[(op, instr.a, instr.b, instr.imm)] = dst


# ---------------------------------------------------------------------------
# global liveness + dead-code elimination
# ---------------------------------------------------------------------------

def block_use_def(block):
    use = set()
    defined = set()
    for instr in block.instrs:
        for reg in instr.uses():
            if reg not in defined:
                use.add(reg)
        dst = instr.defs()
        if dst is not None:
            defined.add(dst)
    return use, defined


def liveness(cfg):
    """Backward liveness dataflow; returns (live_in, live_out) lists."""
    nblocks = len(cfg.blocks)
    use = [None] * nblocks
    defined = [None] * nblocks
    for block in cfg.blocks:
        use[block.bid], defined[block.bid] = block_use_def(block)
    live_in = [set() for __ in range(nblocks)]
    live_out = [set() for __ in range(nblocks)]
    changed = True
    while changed:
        changed = False
        for bid in range(nblocks - 1, -1, -1):
            block = cfg.blocks[bid]
            out = set()
            for succ in block.succs:
                out |= live_in[succ]
            new_in = use[bid] | (out - defined[bid])
            if out != live_out[bid] or new_in != live_in[bid]:
                live_out[bid] = out
                live_in[bid] = new_in
                changed = True
    return live_in, live_out


def _dead_code_elimination(ir_method):
    cfg = build_cfg(ir_method.code)
    __, live_out = liveness(cfg)
    dead = set()
    for block in cfg.blocks:
        live = set(live_out[block.bid])
        for instr in reversed(block.instrs):
            dst = instr.defs()
            if (dst is not None and dst not in live
                    and instr.op in _REMOVABLE_IF_DEAD):
                dead.add(id(instr))
                continue
            if dst is not None:
                live.discard(dst)
            live.update(instr.uses())
            # Self-moves are dead even when the register is live.
            if instr.op == IROp.MOV and instr.a == instr.dst:
                dead.add(id(instr))
    if dead:
        ir_method.code = [instr for instr in ir_method.code
                          if id(instr) not in dead]
