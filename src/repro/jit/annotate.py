"""TEST annotation pass (paper §3.2, Table 2, Figure 3).

Every natural loop without an obvious serializing construct becomes a
prospective STL.  The pass inserts:

* ``SLOOP n`` on each loop-entry edge (allocates *n* local-variable
  timestamp slots),
* ``EOI`` on each backedge (thread boundary),
* ``ELOOP`` on each loop-exit edge (frees the bank, reads statistics),
* ``LWL``/``SWL`` around reads/writes of loop-carried candidate locals.

Loops are identified by a stable ordinal within their method so the STL
recompiler (which re-translates from bytecode) can find the same loop.
"""

from ..vm import intrinsics
from .cfg import build_cfg, find_natural_loops
from .ir import IRInstr, IROp, Label, label_instr
from .patterns import KIND_GENERAL, classify_carried_locals


class LoopMeta:
    """Static facts about one prospective STL."""

    __slots__ = ("loop_id", "method_name", "ordinal", "depth", "parent_id",
                 "body_size", "carried_slots", "candidate", "reject_reason",
                 "line", "num_slots", "carried_kinds")

    def __init__(self, loop_id, method_name, ordinal, depth, body_size,
                 carried_slots, candidate, reject_reason, line,
                 carried_kinds=None):
        self.loop_id = loop_id
        self.method_name = method_name
        self.ordinal = ordinal
        self.depth = depth
        self.parent_id = None
        self.body_size = body_size
        self.carried_slots = carried_slots   # local reg -> slot index
        self.candidate = candidate
        self.reject_reason = reject_reason
        self.line = line
        self.num_slots = len(carried_slots)
        self.carried_kinds = carried_kinds or {}   # reg -> CarriedLocal

    def __repr__(self):
        return "<LoopMeta %d %s#%d depth=%d%s>" % (
            self.loop_id, self.method_name, self.ordinal, self.depth,
            "" if self.candidate else " (rejected: %s)" % self.reject_reason)

    def to_dict(self):
        """JSON-safe dict (carried-local classifications included)."""
        return {
            "loop_id": self.loop_id,
            "method_name": self.method_name,
            "ordinal": self.ordinal,
            "depth": self.depth,
            "parent_id": self.parent_id,
            "body_size": self.body_size,
            "carried_slots": {str(reg): slot for reg, slot
                              in self.carried_slots.items()},
            "candidate": self.candidate,
            "reject_reason": self.reject_reason,
            "line": self.line,
            "carried_kinds": {str(reg): info.to_dict() for reg, info
                              in self.carried_kinds.items()},
        }

    @staticmethod
    def from_dict(data):
        from .patterns import CarriedLocal
        meta = LoopMeta(
            data["loop_id"], data["method_name"], data["ordinal"],
            data["depth"], data["body_size"],
            {int(reg): slot for reg, slot
             in data["carried_slots"].items()},
            data["candidate"], data["reject_reason"], data["line"],
            carried_kinds={int(reg): CarriedLocal.from_dict(info)
                           for reg, info in data["carried_kinds"].items()})
        meta.parent_id = data["parent_id"]
        return meta


def identify_loops(ir_method):
    """Find natural loops with stable ordinals.

    Returns (cfg, [(ordinal, Loop)]) ordered by position of the header.
    Ordinals are deterministic across recompilations because the
    translate+optimize pipeline is deterministic.
    """
    cfg = build_cfg(ir_method.code)
    loops = find_natural_loops(cfg)
    keyed = sorted(loops, key=lambda lp: (cfg.blocks[lp.header].start,
                                          len(lp.blocks)))
    return cfg, list(enumerate(keyed))


def loop_instructions(cfg, loop):
    for bid in loop.blocks:
        for instr in cfg.blocks[bid].instrs:
            yield instr


def serializing_reason(cfg, loop):
    """Why this loop cannot be a candidate STL, or None if it can.

    Paper §6.1: loops with system calls in critical code (here: output
    intrinsics) cannot be speculated; loops containing a method return
    have an irregular exit we do not decompose.
    """
    for instr in loop_instructions(cfg, loop):
        if instr.op == IROp.INTRIN and intrinsics.lookup(instr.aux).is_output:
            return "system call in loop body"
        if instr.op == IROp.RET:
            return "method return inside loop"
        if instr.op == IROp.STL_RUN:
            return "contains an STL region"
    return None


def carried_locals(cfg, loop, num_locals, all_loops=None):
    """Annotation slots for the loop's carried locals.

    Returns (slots, kinds): ``slots`` maps only *general* carried locals
    (those the recompiler cannot optimize away) to lwl/swl slot indices;
    inductors, reset-able inductors and reductions produce no
    annotations ("compiler optimizations to eliminate unnecessary
    annotations", paper §3.2).  ``kinds`` maps every carried local to
    its :class:`CarriedLocal` classification.
    """
    kinds = classify_carried_locals(cfg, loop, num_locals, all_loops)
    general = sorted(reg for reg, info in kinds.items()
                     if info.kind == KIND_GENERAL)
    slots = {reg: slot for slot, reg in enumerate(general)}
    return slots, kinds


class Annotator:
    """Applies the annotation pass to one IR method."""

    def __init__(self, ir_method, loop_table, loop_id_counter,
                 prune=None):
        self.ir = ir_method
        self.loop_table = loop_table        # global: loop_id -> LoopMeta
        self.counter = loop_id_counter      # single-element list
        self.prune = prune or {}            # (method, ordinal) -> decision

    def annotate(self):
        cfg, ordered = identify_loops(self.ir)
        if not ordered:
            return []
        inserts = []        # (position, [instrs]) applied in one rebuild
        appends = []        # stub blocks appended at the end
        metas = []
        loop_by_obj = {}
        for ordinal, loop in ordered:
            loop_id = self.counter[0]
            self.counter[0] += 1
            reason = serializing_reason(cfg, loop)
            all_loops = [lp for __, lp in ordered]
            slots, kinds = carried_locals(cfg, loop, self.ir.num_locals,
                                          all_loops)
            body_size = sum(len(cfg.blocks[bid].instrs)
                            for bid in loop.blocks)
            line = self._header_line(cfg, loop)
            meta = LoopMeta(loop_id, self.ir.name, ordinal, loop.depth,
                            body_size, slots, reason is None, reason, line,
                            carried_kinds=kinds)
            if meta.candidate:
                self._apply_prune(meta)
            self.loop_table[loop_id] = meta
            metas.append(meta)
            loop_by_obj[id(loop)] = meta

        # Parent links (loops ordered smallest-first by find_natural_loops
        # are re-ordered here, so match via the Loop.parent pointers).
        for __, loop in ordered:
            meta = loop_by_obj[id(loop)]
            if loop.parent is not None:
                meta.parent_id = loop_by_obj[id(loop.parent)].loop_id

        for __, loop in ordered:
            meta = loop_by_obj[id(loop)]
            if not meta.candidate:
                continue
            self._annotate_loop(cfg, loop, meta, inserts, appends)

        self._rebuild(inserts, appends)
        return metas

    def _apply_prune(self, meta):
        """Demote a candidate the static analyzer ruled out — but only
        when its evidence survives the IR's own view of the loop.

        The decision is ``(header_line, reason, locals)`` keyed by
        ``(method, ordinal)``.  Two guards keep a stale or mistaken
        static verdict from removing a loop the dynamic selector could
        commit: the header line must match (ordinal drift between the
        bytecode and IR CFGs voids the join), and every bytecode local
        the must-dependences rely on must be a *general* carried local
        here too — if the IR classifier proved one an inductor,
        resetable or reduction, the recompiler eliminates that
        dependence and the static bound is wrong, so the prune is
        ignored.
        """
        decision = self.prune.get((self.ir.name, meta.ordinal))
        if decision is None:
            return
        line, reason, locals_involved = decision
        if line != meta.line:
            return
        for local in locals_involved:
            info = meta.carried_kinds.get(local + 1)
            if info is None or info.kind != KIND_GENERAL:
                return
        meta.candidate = False
        meta.reject_reason = reason

    @staticmethod
    def _header_line(cfg, loop):
        for instr in cfg.blocks[loop.header].instrs:
            if instr.line is not None:
                return instr.line
        return None

    # -- edge annotation -------------------------------------------------------
    def _annotate_loop(self, cfg, loop, meta, inserts, appends):
        for edge in loop.entries:
            self._annotate_edge(cfg, edge, IRInstr(
                IROp.SLOOP, imm=meta.num_slots, aux=meta.loop_id),
                inserts, appends)
        for edge in loop.backedges:
            self._annotate_edge(cfg, edge,
                                IRInstr(IROp.EOI, aux=meta.loop_id),
                                inserts, appends)
        for edge in loop.exits:
            self._annotate_edge(cfg, edge,
                                IRInstr(IROp.ELOOP, aux=meta.loop_id),
                                inserts, appends)
        self._annotate_locals(cfg, loop, meta, inserts)

    def _annotate_edge(self, cfg, edge, ann, inserts, appends):
        tail_id, head_id = edge
        tail = cfg.blocks[tail_id]
        head = cfg.blocks[head_id]
        term = tail.terminator()
        branch_to_head = (term is not None and term.is_branch()
                          and cfg.label_map.get(term.target) == head_id)
        if branch_to_head:
            # Retarget the branch through a stub carrying the annotation.
            stub_label = Label()
            head_label = self._ensure_label(cfg, head, inserts)
            term.target = stub_label
            appends.append([label_instr(stub_label), ann,
                            IRInstr(IROp.J, target=head_label)])
        else:
            # Fallthrough edge: insert right after the tail block.
            inserts.append((tail.end, [ann]))

    def _ensure_label(self, cfg, block, inserts):
        if block.labels:
            return block.labels[0]
        label = Label()
        block.labels.append(label)
        cfg.label_map[label] = block.bid
        inserts.append((block.start, [label_instr(label)]))
        return label

    # -- local variable annotations ------------------------------------------------
    def _annotate_locals(self, cfg, loop, meta, inserts):
        if not meta.carried_slots:
            return
        positions = {id(instr): pos
                     for pos, instr in enumerate(self.ir.code)}
        slots = meta.carried_slots
        for bid in loop.blocks:
            seen_read = set()
            for instr in cfg.blocks[bid].instrs:
                pos = positions[id(instr)]
                for reg in instr.uses():
                    if reg in slots and reg not in seen_read:
                        seen_read.add(reg)
                        inserts.append((pos, [IRInstr(
                            IROp.LWL, imm=slots[reg], aux=meta.loop_id)]))
                dst = instr.defs()
                if dst in slots:
                    seen_read.add(dst)  # value now locally produced
                    inserts.append((pos + 1, [IRInstr(
                        IROp.SWL, imm=slots[dst], aux=meta.loop_id)]))

    # -- rebuild -----------------------------------------------------------------
    def _rebuild(self, inserts, appends):
        if not inserts and not appends:
            return
        by_pos = {}
        for pos, instrs in inserts:
            by_pos.setdefault(pos, []).extend(instrs)
        new_code = []
        for pos, instr in enumerate(self.ir.code):
            if pos in by_pos:
                new_code.extend(by_pos[pos])
            new_code.append(instr)
        tail_pos = len(self.ir.code)
        if tail_pos in by_pos:
            new_code.extend(by_pos[tail_pos])
        for stub in appends:
            new_code.extend(stub)
        self.ir.code = new_code


def annotate_method(ir_method, loop_table, loop_id_counter, prune=None):
    """Annotate one method in place; returns its LoopMeta list.

    ``prune`` optionally carries the static analyzer's
    ``{(method, ordinal): (line, reason, locals)}`` decisions (see
    :meth:`Annotator._apply_prune` for the guards).
    """
    return Annotator(ir_method, loop_table, loop_id_counter,
                     prune=prune).annotate()
