"""microJIT driver: whole-program compilation to executable IR.

Three entry points mirroring the Jrpm pipeline (paper Fig. 1):

* :func:`compile_program` — plain native code (baseline sequential run).
* :func:`compile_annotated` — native code + TEST annotation instructions
  (step 1: run sequentially while the profiler collects statistics).
* ``repro.jit.stl.recompile_with_stls`` — native TLS code for selected
  thread decompositions (step 4).
"""

from ..hydra.config import STATICS_BASE
from .annotate import annotate_method
from .ir import IROp
from .optimize import optimize
from .translate import StaticLayout, Translator


class CompiledMethod:
    """Executable form of one method."""

    __slots__ = ("name", "code", "nregs", "ir", "owner", "simple_name",
                 "stls", "_dispatch", "_dispatch_step", "_tls_events",
                 "_tls_costs")

    def __init__(self, ir_method, owner, simple_name):
        self.ir = ir_method
        self.name = ir_method.name
        self.code = ir_method.finalize()
        self.nregs = ir_method.nregs
        self.owner = owner
        self.simple_name = simple_name
        self.stls = ir_method.stls
        #: predecoded handler table, built lazily at first execution by
        #: :func:`repro.engine.ir_engine.dispatch_table` ("code-install
        #: time" predecoding — rebuilt never, shared by every Frame)
        self._dispatch = None
        self._dispatch_step = None
        #: per-pc scheduler-event bitmap for the event-driven TLS
        #: scheduler (repro.engine.ir_engine.tls_event_map), same lazy
        #: caching discipline as the dispatch tables
        self._tls_events = None
        #: per-pc worst-case single-dispatch cycle cost (see
        #: tls_cost_map)
        self._tls_costs = None

    def __repr__(self):
        return "<CompiledMethod %s (%d instrs)>" % (self.name, len(self.code))


class CompiledProgram:
    """A fully compiled program ready to run on the Hydra machine."""

    def __init__(self, program, layout, config, mode):
        self.program = program
        self.layout = layout
        self.config = config
        self.mode = mode                      # "plain"|"annotated"|"tls"
        self.methods = {}                     # qualified name -> Compiled
        self.loop_table = {}                  # loop_id -> LoopMeta
        self.compile_cycles = 0
        self.selected_stls = {}               # loop_id -> StlPlan (tls mode)

    def add(self, compiled):
        self.methods[compiled.name] = compiled

    def resolve(self, class_name, method_name):
        method = self.program.resolve_method(class_name, method_name)
        return self.methods[method.qualified_name]

    def dispatch(self, class_id, method_name):
        cls = self.program.class_by_id(class_id)
        method = cls.find_method(method_name)
        return self.methods[method.qualified_name]

    def entry(self):
        return self.methods[self.program.entry().qualified_name]

    def total_instructions(self):
        return sum(len(m.code) for m in self.methods.values())


def _compile(program, config, annotate, prune=None):
    program.seal()
    layout = StaticLayout(program, STATICS_BASE)
    compiled = CompiledProgram(program, layout, config,
                               "annotated" if annotate else "plain")
    translator = Translator(program, layout)
    counter = [1]
    for method in program.all_methods():
        ir_method = translator.translate(method)
        optimize(ir_method)
        if annotate:
            annotate_method(ir_method, compiled.loop_table, counter,
                            prune=prune)
        compiled.add(CompiledMethod(ir_method, method.owner.name,
                                    method.name))
        compiled.compile_cycles += (config.compile_cycles_per_bytecode
                                    * len(method.code))
    return compiled


def compile_program(program, config):
    """Compile without annotations (the sequential baseline)."""
    return _compile(program, config, annotate=False)


def compile_annotated(program, config, prune=None):
    """Compile with TEST annotation instructions inserted.

    ``prune`` is an optional ``{(method, ordinal): (line, reason,
    locals)}`` decision set from the static dependence analyzer
    (:meth:`repro.analysis.AnalysisReport.prune_set`): matching loops
    are demoted to non-candidates before annotation, so the TEST
    profiler never tracks them.
    """
    return _compile(program, config, annotate=True, prune=prune)


def annotation_count(compiled):
    """Number of annotation instructions in a compiled program."""
    annotation_ops = (IROp.SLOOP, IROp.EOI, IROp.ELOOP, IROp.LWL, IROp.SWL)
    count = 0
    for method in compiled.methods.values():
        count += sum(1 for instr in method.code
                     if instr.op in annotation_ops)
    return count
