"""Static classification of loop-carried locals (paper §4.2.2–4.2.5).

The STL compiler can eliminate the inter-thread communication of three
kinds of carried locals:

* **inductors** — stepped by a loop-constant amount exactly once per
  iteration; each CPU computes its own value locally (non-communicating
  loop inductors, §4.2.2),
* **reset-able inductors** — look like inductors but are occasionally
  written unpredictably; handled with a forced violation on reset
  (§4.2.3),
* **reductions** — only ever combined with one associative operator
  (sum, product, and/or/xor, min/max); computed privately per CPU and
  merged at commit/shutdown (§4.2.5).

Everything else is a **general** carried local that must travel through
memory ($fp-relative loads/stores) and can cause RAW violations.

The annotator uses the same classification to eliminate unnecessary
lwl/swl annotations: TEST does not measure dependencies the recompiler
is guaranteed to remove.
"""

from .cfg import compute_dominators
from .ir import IROp

#: Associative/commutative reduction operators and their identities.
REDUCTION_OPS = {
    IROp.ADD: ("add", 0),
    IROp.FADD: ("fadd", 0.0),
    IROp.MUL: ("mul", 1),
    IROp.FMUL: ("fmul", 1.0),
    IROp.AND: ("and", -1),
    IROp.OR: ("or", 0),
    IROp.XOR: ("xor", 0),
}

#: min/max reductions arrive as INTRIN imin/imax/fmin/fmax calls.
REDUCTION_INTRINSIC_IDENTITY = {
    "imin": 2147483647,
    "imax": -2147483648,
    "fmin": float("inf"),
    "fmax": float("-inf"),
}

KIND_INDUCTOR = "inductor"
KIND_RESETABLE = "resetable"
KIND_REDUCTION = "reduction"
KIND_GENERAL = "general"


class CarriedLocal:
    """Classification result for one loop-carried local register."""

    __slots__ = ("reg", "kind", "step_imm", "step_reg", "is_float",
                 "reduce_op", "identity", "reset_sites", "step_instr",
                 "mask")

    def __init__(self, reg, kind, step_imm=None, step_reg=None,
                 is_float=False, reduce_op=None, identity=None,
                 reset_sites=None, step_instr=None, mask=None):
        self.reg = reg
        self.kind = kind
        self.step_imm = step_imm
        self.step_reg = step_reg
        self.is_float = is_float
        self.reduce_op = reduce_op          # "add"|"fadd"|...|"addmask"|...
        self.identity = identity
        self.reset_sites = reset_sites or []
        self.step_instr = step_instr
        self.mask = mask                    # for "addmask": (a+b) & mask

    def __repr__(self):
        extra = ""
        if self.step_imm is not None:
            extra = " step=%r" % self.step_imm
        elif self.step_reg is not None:
            extra = " step=r%d" % self.step_reg
        if self.reduce_op:
            extra += " op=%s" % self.reduce_op
        return "<r%d %s%s>" % (self.reg, self.kind, extra)

    def to_dict(self):
        """JSON-safe dict of the classification facts.

        ``step_instr``/``reset_sites`` are live IR-instruction handles
        consumed by the recompiler only; they are intentionally dropped
        — a deserialized CarriedLocal describes a finished run and is
        never fed back into :mod:`repro.jit.stl`.
        """
        identity = self.identity
        if isinstance(identity, float) and (identity != identity
                                            or identity in (float("inf"),
                                                            float("-inf"))):
            identity = repr(identity)       # JSON has no inf/nan literals
        return {"reg": self.reg, "kind": self.kind,
                "step_imm": self.step_imm, "step_reg": self.step_reg,
                "is_float": self.is_float, "reduce_op": self.reduce_op,
                "identity": identity, "mask": self.mask}

    @staticmethod
    def from_dict(data):
        identity = data["identity"]
        if isinstance(identity, str):
            identity = float(identity)
        return CarriedLocal(
            data["reg"], data["kind"], step_imm=data["step_imm"],
            step_reg=data["step_reg"], is_float=data["is_float"],
            reduce_op=data["reduce_op"], identity=identity,
            mask=data["mask"])


class _LoopFacts:
    """Shared context for classifying one loop's carried locals."""

    def __init__(self, cfg, loop, all_loops=None):
        self.cfg = cfg
        self.loop = loop
        self.block_of = {}          # id(instr) -> bid
        self.index_in_block = {}    # id(instr) -> position within block
        self.defs_by_reg = {}       # any reg -> [instr] (defs inside loop)
        self.uses_by_reg = {}
        for bid in loop.blocks:
            for index, instr in enumerate(cfg.blocks[bid].instrs):
                self.block_of[id(instr)] = bid
                self.index_in_block[id(instr)] = index
                dst = instr.defs()
                if dst is not None:
                    self.defs_by_reg.setdefault(dst, []).append(instr)
                for reg in instr.uses():
                    self.uses_by_reg.setdefault(reg, []).append(instr)
        self.defined_in_loop = set(self.defs_by_reg)
        self._live_out = None
        # Blocks executing exactly once per iteration: in this loop, in
        # no strictly-nested loop, and dominating every backedge tail.
        inner_blocks = set()
        for other in (all_loops or []):
            if other is not loop and other.blocks < loop.blocks:
                inner_blocks |= set(other.blocks)
        dom = compute_dominators(cfg)
        tails = [tail for tail, __ in loop.backedges]
        self.once_blocks = {
            bid for bid in loop.blocks
            if bid not in inner_blocks
            and all(bid in dom[tail] for tail in tails)
        }

    def once_per_iteration(self, instr):
        return self.block_of.get(id(instr)) in self.once_blocks

    # -- block-local value tracking ---------------------------------------
    # Stack-slot registers are reused for every expression, so global
    # single-def checks are useless; resolve feeders within the block.
    def live_out(self, bid):
        if self._live_out is None:
            from .optimize import liveness
            __, self._live_out = liveness(self.cfg)
        return self._live_out[bid]

    def local_reaching_def(self, consumer, reg):
        """The latest def of *reg* before *consumer* in the same block."""
        bid = self.block_of.get(id(consumer))
        if bid is None:
            return None
        instrs = self.cfg.blocks[bid].instrs
        for index in range(self.index_in_block[id(consumer)] - 1, -1, -1):
            if instrs[index].defs() == reg:
                return instrs[index]
        return None

    def local_private_feeder(self, consumer, reg):
        """Like local_reaching_def, but additionally require that the
        value flows *only* into *consumer*: no other use between the def
        and the consumer, no use after it before a redefinition, and
        dead at block end if never redefined."""
        bid = self.block_of.get(id(consumer))
        if bid is None:
            return None
        instrs = self.cfg.blocks[bid].instrs
        cidx = self.index_in_block[id(consumer)]
        feeder = None
        fidx = None
        for index in range(cidx - 1, -1, -1):
            if instrs[index].defs() == reg:
                feeder = instrs[index]
                fidx = index
                break
        if feeder is None:
            return None
        for index in range(fidx + 1, cidx):
            if reg in instrs[index].uses() or instrs[index].defs() == reg:
                return None
        if consumer.defs() == reg:
            # The consumer overwrites the register: the fed value
            # cannot escape past it.
            return feeder
        for index in range(cidx + 1, len(instrs)):
            if reg in instrs[index].uses():
                return None
            if instrs[index].defs() == reg:
                return feeder
        if reg in self.live_out(bid):
            return None
        return feeder

    def loop_constant_step(self, instr):
        """If *instr* steps its dst by a loop-constant amount, return
        (step_imm, step_reg, is_float); else None.

        Handles both the direct form (``ADDI r, r, k``) and the MOV form
        the translator sometimes leaves (``ADD t, r, k; MOV r, t``).
        """
        reg = instr.dst
        step = self._direct_step(instr, reg)
        if step is not None:
            return step
        if instr.op == IROp.MOV:
            # The temp need not be private (the body is kept as-is for
            # inductors) — but reg must not be clobbered between the
            # step computation and the MOV.
            buried = self.local_reaching_def(instr, instr.a)
            if buried is not None and self.once_per_iteration(buried) \
                    and not self._defined_between(buried, instr, reg):
                return self._direct_step(buried, reg, dst=instr.a)
        return None

    def _defined_between(self, first, second, reg):
        bid = self.block_of.get(id(first))
        if bid is None or bid != self.block_of.get(id(second)):
            return True
        instrs = self.cfg.blocks[bid].instrs
        lo = self.index_in_block[id(first)] + 1
        hi = self.index_in_block[id(second)]
        return any(instrs[k].defs() == reg for k in range(lo, hi))

    def _direct_step(self, instr, reg, dst=None):
        dst = instr.dst if dst is None else dst
        if instr.dst != dst:
            return None
        if instr.op == IROp.ADDI and instr.a == reg:
            return (instr.imm, None, False)
        if instr.op in (IROp.ADD, IROp.FADD):
            if instr.a == reg and instr.b != reg:
                other = instr.b
            elif instr.b == reg and instr.a != reg:
                other = instr.a
            else:
                return None
            is_float = instr.op == IROp.FADD
            if other not in self.defs_by_reg:
                # Step register is loop-invariant.
                return (None, other, is_float)
            reaching = self.local_reaching_def(instr, other)
            if reaching is not None and reaching.op == IROp.LI:
                return (reaching.imm, None, is_float)
        return None


def classify_carried_locals(cfg, loop, num_locals, all_loops=None):
    """Classify every carried local of *loop*.

    Returns {reg: CarriedLocal} for locals (regs 1..num_locals) that are
    both defined and used inside the loop.
    """
    facts = _LoopFacts(cfg, loop, all_loops)
    local_limit = num_locals + 1
    carried = {}
    for reg in sorted(facts.defined_in_loop & set(facts.uses_by_reg)):
        if not 1 <= reg < local_limit:
            continue
        carried[reg] = _classify(facts, reg)
    return carried


def _classify(facts, reg):
    def_list = facts.defs_by_reg[reg]
    use_list = facts.uses_by_reg[reg]

    step_defs = []
    other_defs = []
    for instr in def_list:
        step = facts.loop_constant_step(instr)
        if step is not None and facts.once_per_iteration(instr):
            step_defs.append((instr, step))
        else:
            other_defs.append(instr)

    if len(step_defs) == 1 and not other_defs:
        instr, (imm, step_reg, is_float) = step_defs[0]
        return CarriedLocal(reg, KIND_INDUCTOR, step_imm=imm,
                            step_reg=step_reg, is_float=is_float,
                            step_instr=instr)

    reduction = _classify_reduction(facts, reg, def_list, use_list)
    if reduction is not None:
        return reduction

    if len(step_defs) == 1 and other_defs:
        instr, (imm, step_reg, is_float) = step_defs[0]
        if not is_float and imm is not None:
            # Reset-able non-communicating inductor (§4.2.3).  Restrict
            # to integer immediate steps; anything fancier is general.
            return CarriedLocal(reg, KIND_RESETABLE, step_imm=imm,
                                reset_sites=other_defs, step_instr=instr)
    return CarriedLocal(reg, KIND_GENERAL)


def _accumulate_name(instr, reg, dst):
    """Name of the associative op if *instr* computes ``dst = reg op x``."""
    if instr.dst != dst:
        return None
    if instr.op in REDUCTION_OPS and ((instr.a == reg) != (instr.b == reg)):
        return REDUCTION_OPS[instr.op][0]
    if instr.op == IROp.ADDI and instr.a == reg:
        return "add"
    if instr.op == IROp.INTRIN \
            and instr.aux in REDUCTION_INTRINSIC_IDENTITY \
            and instr.args and instr.args.count(reg) == 1:
        return instr.aux
    return None


def _classify_reduction(facts, reg, def_list, use_list):
    """A reduction: every def combines reg with an independent value via
    one associative operator, and reg is used nowhere else in the loop.

    Recognizes ``ADD r, r, x``, the MOV form ``ADD t, r, x; MOV r, t``
    (with t used only by that MOV), and masked-add accumulation
    ``r = (r + x) & M`` with M = 2^k - 1 (addition mod 2^k is
    associative, so checksum-style accumulators parallelize).
    """
    op_seen = None
    mask_seen = None
    chain_ids = set()           # instructions allowed to use reg
    for instr in def_list:
        name = None
        mask = None
        direct = _accumulate_name(instr, reg, reg)
        if direct is not None:
            name = direct
            chain_ids.add(id(instr))
        else:
            target = instr
            extra_ids = [id(instr)]
            if instr.op == IROp.MOV:
                buried = facts.local_private_feeder(instr, instr.a)
                if buried is None:
                    return None
                target = buried
                extra_ids.append(id(buried))
            buried_name = _accumulate_name(target, reg, target.dst)
            if buried_name is not None and target is not instr:
                name = buried_name
            else:
                masked = _masked_add(facts, reg, target)
                if masked is None:
                    return None
                name, mask, masked_ids = masked
                extra_ids.extend(masked_ids)
            chain_ids.update(extra_ids)
        if op_seen not in (None, name):
            return None
        if name == "addmask":
            if mask_seen not in (None, mask):
                return None
            mask_seen = mask
        op_seen = name
    if op_seen is None:
        return None
    # Every use of reg must be inside the accumulation chain.
    for instr in use_list:
        if id(instr) not in chain_ids:
            return None
    identity = _identity_for(op_seen)
    return CarriedLocal(
        reg, KIND_REDUCTION, reduce_op=op_seen, identity=identity,
        mask=mask_seen,
        is_float=op_seen in ("fadd", "fmul", "fmin", "fmax"))


def _add_chain_instrs(facts, reg, instr, depth=5):
    """Match a tree of private ADD/ADDI temps computing ``reg + ...``.

    Returns the chain's instruction list (containing *reg* as an
    operand exactly once) or None.
    """
    if depth == 0:
        return None
    if instr.op == IROp.ADDI:
        if instr.a == reg:
            return [instr]
        feeder = facts.local_private_feeder(instr, instr.a)
        if feeder is None:
            return None
        sub = _add_chain_instrs(facts, reg, feeder, depth - 1)
        return [instr] + sub if sub else None
    if instr.op == IROp.ADD:
        if instr.a == reg and instr.b == reg:
            return None
        if (instr.a == reg) != (instr.b == reg):
            return [instr]
        for operand in (instr.a, instr.b):
            feeder = facts.local_private_feeder(instr, operand)
            if feeder is not None:
                sub = _add_chain_instrs(facts, reg, feeder, depth - 1)
                if sub:
                    return [instr] + sub
        return None
    return None


def _masked_add(facts, reg, instr):
    """Match ``dst = (reg + x [+ y ...]) & M`` with M = 2^k - 1.

    Returns ("addmask", M, [chain instr ids]) or None.  The mask must be
    resolvable to an LI constant so its value is statically known.
    """
    if instr.op != IROp.AND:
        return None
    for add_reg, mask_reg in ((instr.a, instr.b), (instr.b, instr.a)):
        mask_def = facts.local_reaching_def(instr, mask_reg)
        if mask_def is None or mask_def.op != IROp.LI:
            continue
        mask = mask_def.imm
        if not isinstance(mask, int) or mask <= 0 or (mask & (mask + 1)):
            continue        # not 2^k - 1
        adder = facts.local_private_feeder(instr, add_reg)
        if adder is None:
            continue
        chain = _add_chain_instrs(facts, reg, adder)
        if chain is None:
            continue
        # The accumulator must appear exactly once across the chain,
        # or the per-thread substitution would double-count it.
        references = sum((1 if c.a == reg else 0) + (1 if c.b == reg else 0)
                         for c in chain)
        if references != 1:
            continue
        return ("addmask", mask, [id(c) for c in chain])
    return None


def _identity_for(op_name):
    if op_name in REDUCTION_INTRINSIC_IDENTITY:
        return REDUCTION_INTRINSIC_IDENTITY[op_name]
    if op_name == "addmask":
        return 0
    for __, (name, identity) in REDUCTION_OPS.items():
        if name == op_name:
            return identity
    raise KeyError(op_name)


def merge_reduction(op_name, left, right, mask=None):
    """Merge two partial reduction values (used by the TLS runtime)."""
    from ..bytecode.instructions import i32
    if op_name == "addmask":
        return i32((left + right) & mask)
    if op_name == "add":
        return i32(left + right)
    if op_name == "fadd":
        return left + right
    if op_name == "mul":
        return i32(left * right)
    if op_name == "fmul":
        return left * right
    if op_name == "and":
        return i32(left & right)
    if op_name == "or":
        return i32(left | right)
    if op_name == "xor":
        return i32(left ^ right)
    if op_name in ("imin", "fmin"):
        return min(left, right)
    if op_name in ("imax", "fmax"):
        return max(left, right)
    raise KeyError(op_name)
