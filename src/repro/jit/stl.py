"""STL recompilation: transform selected loops into speculative threads.

For every loop the selector chose, this pass (paper §4, Figure 4/5/6):

* extracts one loop iteration into *thread code* with a cold entry
  (invariant loads + inductor recompute after startup/violation) and a
  warm entry (communicated-local loads only),
* communicates general carried locals through $fp-relative stack slots,
* applies the §4.2 optimizations — loop-invariant register allocation,
  non-communicating (and reset-able) loop inductors, private reductions
  merged at commit, thread synchronizing locks,
* rewrites the host method so the loop entry jumps to an ``STL_RUN``
  pseudo-instruction followed by an exit-id dispatch.

Which optimizations apply is controlled by :class:`StlOptions` so the
benchmark harness can regenerate the paper's ablation columns.
"""

from dataclasses import dataclass

from ..bytecode.module import WORD
from ..errors import JitError
from .annotate import identify_loops
from .cfg import build_cfg, compute_dominators, find_natural_loops
from .ir import (IRInstr, IROp, Label, finalize_with_positions, label_instr)
from .optimize import liveness
from .patterns import (KIND_GENERAL, KIND_INDUCTOR, KIND_REDUCTION,
                       KIND_RESETABLE, classify_carried_locals)


@dataclass
class StlOptions:
    """Which §4.2 optimizations the recompiler may apply."""

    invariant_regalloc: bool = True       # §4.2.1
    noncomm_inductors: bool = True        # §4.2.2
    resetable_inductors: bool = True      # §4.2.3
    sync_locks: bool = True               # §4.2.4
    reductions: bool = True               # §4.2.5
    multilevel: bool = True               # §4.2.6
    hoisting: bool = True                 # §4.2.7

    def to_dict(self):
        from dataclasses import asdict
        return asdict(self)

    @staticmethod
    def from_dict(data):
        return StlOptions(**data)


class ReductionSpec:
    __slots__ = ("acc_reg", "tmp_reg", "op_name", "identity", "is_float",
                 "mask")

    def __init__(self, acc_reg, tmp_reg, op_name, identity, is_float,
                 mask=None):
        self.acc_reg = acc_reg
        self.tmp_reg = tmp_reg
        self.op_name = op_name
        self.identity = identity
        self.is_float = is_float
        self.mask = mask


class ResetableSpec:
    __slots__ = ("reg", "slot_value", "slot_iter", "step")

    def __init__(self, reg, slot_value, slot_iter, step):
        self.reg = reg
        self.slot_value = slot_value
        self.slot_iter = slot_iter
        self.step = step


class StlDescriptor:
    """Everything the TLS runtime needs to run one speculative loop."""

    __slots__ = ("stl_id", "method_name", "thread_code", "nregs",
                 "warm_entry", "fp_reg", "iter_reg", "frame_words",
                 "init_values", "init_consts", "exit_values", "reductions",
                 "resetables", "num_exits", "sync_lock_off", "hoist",
                 "multilevel_inner", "plan", "options", "general_slots")

    def __init__(self, stl_id, method_name):
        self.stl_id = stl_id
        self.method_name = method_name
        self.thread_code = None
        self.nregs = 0
        self.warm_entry = 0
        self.fp_reg = None
        self.iter_reg = None
        self.frame_words = 0
        self.init_values = []       # (slot_off, master_reg)
        self.init_consts = []       # (slot_off, constant)
        self.exit_values = []       # (master_reg, slot_off)
        self.reductions = []        # ReductionSpec
        self.resetables = []        # ResetableSpec
        self.num_exits = 0
        self.sync_lock_off = None
        self.hoist = False
        self.multilevel_inner = False
        self.plan = None
        self.options = None
        self.general_slots = {}

    def __repr__(self):
        return "<StlDescriptor %d in %s (%d slots, %d exits)>" % (
            self.stl_id, self.method_name, self.frame_words, self.num_exits)


class _SlotAllocator:
    def __init__(self):
        self.next_off = 0

    def alloc(self):
        off = self.next_off
        self.next_off += WORD
        return off


class StlCompiler:
    """Transforms one selected loop of one IR method."""

    def __init__(self, ir_method, config, options):
        self.ir = ir_method
        self.config = config
        self.options = options

    # ------------------------------------------------------------------
    def transform(self, loop_header_label, plan):
        ir = self.ir
        cfg = build_cfg(ir.code)
        header_bid = cfg.label_map.get(loop_header_label)
        if header_bid is None:
            raise JitError("lost STL header label in %s" % ir.name)
        loops = find_natural_loops(cfg)
        loop = next((lp for lp in loops if lp.header == header_bid), None)
        if loop is None:
            raise JitError("loop for STL %d vanished in %s"
                           % (plan.loop_id, ir.name))

        options = self.options
        kinds = classify_carried_locals(cfg, loop, ir.num_locals, loops)
        live_in, live_out = liveness(cfg)

        used, defined = set(), set()
        for bid in loop.blocks:
            for instr in cfg.blocks[bid].instrs:
                used.update(instr.uses())
                dst = instr.defs()
                if dst is not None:
                    defined.add(dst)
        used.discard(0)
        self._reads_in_loop = frozenset(used)

        exit_succs = sorted({succ for __, succ in loop.exits})
        live_at_exits = set()
        for succ in exit_succs:
            live_at_exits |= live_in[succ]

        invariants = sorted(used - defined)
        carried = sorted(defined & (live_in[header_bid] | live_at_exits))

        # Partition carried regs by classification (respecting options).
        generals, inductors, resetables, reductions = [], [], [], []
        for reg in carried:
            info = kinds.get(reg)
            kind = info.kind if info is not None else KIND_GENERAL
            if kind == KIND_INDUCTOR and not options.noncomm_inductors:
                kind = KIND_GENERAL
            if kind == KIND_RESETABLE and not options.resetable_inductors:
                kind = KIND_GENERAL
            if kind == KIND_REDUCTION and not options.reductions:
                kind = KIND_GENERAL
            if kind == KIND_INDUCTOR:
                inductors.append(info)
            elif kind == KIND_RESETABLE:
                resetables.append(info)
            elif kind == KIND_REDUCTION:
                reductions.append(info)
            else:
                generals.append(reg)

        descriptor = StlDescriptor(plan.loop_id, ir.name)
        descriptor.plan = plan
        descriptor.options = options
        descriptor.hoist = bool(plan.hoist and options.hoisting)
        descriptor.multilevel_inner = bool(plan.multilevel_inner
                                           and options.multilevel)
        descriptor.fp_reg = ir.new_reg()
        descriptor.iter_reg = ir.new_reg()

        # -- slot layout ----------------------------------------------------
        slots = _SlotAllocator()
        invariant_slots = {reg: slots.alloc() for reg in invariants}
        general_slots = {reg: slots.alloc() for reg in generals}
        inductor_slots = {info.reg: slots.alloc() for info in inductors}
        resetable_specs = []
        for info in resetables:
            spec = ResetableSpec(info.reg, slots.alloc(), slots.alloc(),
                                 info.step_imm)
            resetable_specs.append(spec)
        descriptor.resetables = resetable_specs
        descriptor.general_slots = dict(general_slots)

        sync_plan = plan.sync if options.sync_locks else None
        sync_local_reg = None
        if sync_plan is not None and sync_plan.local_slot is not None:
            # Map the profiled (loop, slot) back to the carried local reg.
            slot_index = sync_plan.local_slot[1]
            ordered_general = sorted(
                reg for reg, info in kinds.items()
                if info.kind == KIND_GENERAL and reg in general_slots)
            if slot_index < len(ordered_general):
                sync_local_reg = ordered_general[slot_index]
            else:
                sync_plan = None
        # Commit to the lock only if WAITLOCK/SIGNAL can actually be
        # placed (single once-per-iteration region); otherwise fall back
        # to plain communication for the variable.
        sync_points = None
        if sync_plan is not None:
            sync_points = self._plan_sync_points(
                cfg, loop, sync_plan, sync_local_reg, general_slots, kinds)
            if sync_points is None:
                sync_plan = None
                sync_local_reg = None
        if sync_plan is not None:
            descriptor.sync_lock_off = slots.alloc()
        self._sync_points = sync_points

        # -- init / exit value plumbing -----------------------------------------
        for reg, off in invariant_slots.items():
            descriptor.init_values.append((off, reg))
        for reg, off in general_slots.items():
            descriptor.init_values.append((off, reg))
        for info in inductors:
            descriptor.init_values.append((inductor_slots[info.reg],
                                           info.reg))
        for spec in resetable_specs:
            descriptor.init_values.append((spec.slot_value, spec.reg))
            descriptor.init_consts.append((spec.slot_iter, 0))
        if descriptor.sync_lock_off is not None:
            descriptor.init_consts.append((descriptor.sync_lock_off, 0))

        # Exit values: generals come from their stack slot (last
        # committed def-site store); inductors and reset-ables come from
        # the exiting thread's register file — publishing them through
        # speculative exit-path stores would violate every thread whose
        # cold init read the slot.
        for reg in generals:
            if reg in live_at_exits:
                descriptor.exit_values.append(
                    (reg, ("slot", general_slots[reg])))
        for reg in ([info.reg for info in inductors]
                    + [spec.reg for spec in resetable_specs]):
            if reg in live_at_exits:
                descriptor.exit_values.append((reg, ("reg", reg)))

        for info in reductions:
            tmp = ir.new_reg()
            descriptor.reductions.append(ReductionSpec(
                info.reg, tmp, info.reduce_op, info.identity, info.is_float,
                mask=info.mask))

        descriptor.frame_words = slots.next_off // WORD

        # -- build thread code --------------------------------------------------
        self._build_thread_code(descriptor, cfg, loop, invariant_slots,
                                general_slots, inductors, inductor_slots,
                                resetable_specs, kinds, sync_plan,
                                sync_local_reg, exit_succs)

        # -- rewrite the host method ----------------------------------------------
        self._rewrite_host(descriptor, cfg, loop, exit_succs)
        ir.stls[plan.loop_id] = descriptor
        return descriptor

    # ------------------------------------------------------------------
    def _build_thread_code(self, descriptor, cfg, loop, invariant_slots,
                           general_slots, inductors, inductor_slots,
                           resetable_specs, kinds, sync_plan,
                           sync_local_reg, exit_succs):
        ir = self.ir
        config = self.config
        options = self.options
        fp = descriptor.fp_reg
        iter_reg = descriptor.iter_reg
        code = []

        warm_label = Label("warm")
        eoi_label = Label("eoi")
        exit_labels = {succ: Label("exit%d" % k)
                       for k, succ in enumerate(exit_succs)}
        exit_ids = {succ: k for k, succ in enumerate(exit_succs)}
        descriptor.num_exits = len(exit_succs)

        def emit(op, **kw):
            instr = IRInstr(op, **kw)
            code.append(instr)
            return instr

        # ---- cold entry: runs at startup and after a violation ----
        if options.invariant_regalloc:
            for reg, off in invariant_slots.items():
                emit(IROp.LW, dst=reg, a=fp, imm=off)
        for info in inductors:
            self._emit_inductor_cold(emit, info, inductor_slots[info.reg],
                                     fp, iter_reg)
        for spec in resetable_specs:
            # r = slot_value + (iteration - slot_iter) * step
            t = ir.new_reg()
            emit(IROp.LW, dst=spec.reg, a=fp, imm=spec.slot_value)
            emit(IROp.LW, dst=t, a=fp, imm=spec.slot_iter)
            emit(IROp.SUB, dst=t, a=iter_reg, b=t)
            if spec.step != 1:
                step_reg = ir.new_reg()
                emit(IROp.LI, dst=step_reg, imm=spec.step)
                emit(IROp.MUL, dst=t, a=t, b=step_reg)
            emit(IROp.ADD, dst=spec.reg, a=spec.reg, b=t)
        # Reduction accumulators are NOT initialized here: they hold the
        # CPU's committed partial across restarts, so the runtime seeds
        # them once at startup (a cold re-init would lose partials).

        # ---- warm entry: runs at every thread start ----
        code.append(label_instr(warm_label))
        if not options.invariant_regalloc:
            for reg, off in invariant_slots.items():
                emit(IROp.LW, dst=reg, a=fp, imm=off)
        # Forced loads of communicated locals (paper §4.1) — only locals
        # the body actually *reads*; write-only live-outs need no load.
        read_in_body = self._reads_in_loop
        for reg, off in general_slots.items():
            if reg == sync_local_reg:
                continue            # loaded inside the synchronized region
            if reg in read_in_body:
                emit(IROp.LW, dst=reg, a=fp, imm=off)
        for spec in descriptor.reductions:
            emit(IROp.LI, dst=spec.tmp_reg, imm=spec.identity)

        # ---- body: cloned loop blocks ----
        self._clone_body(code, cfg, loop, descriptor, general_slots,
                         resetable_specs, kinds, sync_plan, sync_local_reg,
                         eoi_label, exit_labels)

        # ---- EOI ----
        # General carried locals are stored at their natural def sites
        # inside the body (forced stores), not here: an unconditional
        # EOI store would manufacture dependencies for locals the
        # iteration never actually wrote.
        code.append(label_instr(eoi_label))
        for info in inductors:
            self._emit_inductor_advance(code, info)
        for spec in resetable_specs:
            extra = config.num_cpus - 1
            if extra:
                code.append(IRInstr(IROp.ADDI, dst=spec.reg, a=spec.reg,
                                    imm=spec.step * extra))
        code.append(IRInstr(IROp.STL_EOI_END))

        # ---- exits ----
        # Nothing is stored here: general slots already hold the latest
        # committed def-site store, and inductor finals are published by
        # the runtime from the exiting thread's registers.
        for succ in exit_succs:
            code.append(label_instr(exit_labels[succ]))
            code.append(IRInstr(IROp.STL_EXIT, aux=exit_ids[succ]))

        thread_code, positions = finalize_with_positions(code)
        descriptor.thread_code = thread_code
        descriptor.warm_entry = positions[warm_label]
        descriptor.nregs = ir.nregs

    def _emit_inductor_cold(self, emit, info, slot, fp, iter_reg):
        """r = base + iteration * step (paper Fig. 5 right column)."""
        ir = self.ir
        reg = info.reg
        base = ir.new_reg()
        emit(IROp.LW, dst=base, a=fp, imm=slot)
        t = ir.new_reg()
        if info.is_float:
            emit(IROp.I2F, dst=t, a=iter_reg)
            step = self._step_operand(emit, info, float_ok=True)
            emit(IROp.FMUL, dst=t, a=t, b=step)
            emit(IROp.FADD, dst=reg, a=base, b=t)
        else:
            step = self._step_operand(emit, info, float_ok=False)
            emit(IROp.MUL, dst=t, a=iter_reg, b=step)
            emit(IROp.ADD, dst=reg, a=base, b=t)

    def _step_operand(self, emit, info, float_ok):
        if info.step_reg is not None:
            return info.step_reg
        t = self.ir.new_reg()
        emit(IROp.LI, dst=t, imm=info.step_imm)
        return t

    def _emit_inductor_advance(self, code, info):
        """At EOI the body already stepped once; add (num_cpus-1) more
        steps so the register holds the value for iteration i+N."""
        extra = self.config.num_cpus - 1
        if extra == 0:
            return
        ir = self.ir
        reg = info.reg
        if info.step_reg is None and not info.is_float:
            code.append(IRInstr(IROp.ADDI, dst=reg, a=reg,
                                imm=info.step_imm * extra))
            return
        t = ir.new_reg()
        if info.step_imm is not None:
            code.append(IRInstr(IROp.LI, dst=t,
                                imm=(float(info.step_imm * extra)
                                     if info.is_float
                                     else info.step_imm * extra)))
            step_total = t
        else:
            count = ir.new_reg()
            if info.is_float:
                code.append(IRInstr(IROp.LI, dst=count, imm=float(extra)))
                code.append(IRInstr(IROp.FMUL, dst=t, a=info.step_reg,
                                    b=count))
            else:
                code.append(IRInstr(IROp.LI, dst=count, imm=extra))
                code.append(IRInstr(IROp.MUL, dst=t, a=info.step_reg,
                                    b=count))
            step_total = t
        op = IROp.FADD if info.is_float else IROp.ADD
        code.append(IRInstr(op, dst=reg, a=reg, b=step_total))

    # ------------------------------------------------------------------
    def _clone_body(self, code, cfg, loop, descriptor, general_slots,
                    resetable_specs, kinds, sync_plan, sync_local_reg,
                    eoi_label, exit_labels):
        ir = self.ir
        fp = descriptor.fp_reg
        header = loop.header
        blocks = sorted(loop.blocks,
                        key=lambda bid: (bid != header,
                                         cfg.blocks[bid].start))
        thread_label = {bid: Label("b%d" % bid) for bid in blocks}
        reset_site_ids = {}
        for spec, info in zip(resetable_specs,
                              [kinds[s.reg] for s in resetable_specs]):
            for site in info.reset_sites:
                reset_site_ids[id(site)] = spec
        reduction_subst = {spec.acc_reg: spec.tmp_reg
                           for spec in descriptor.reductions}

        sync_points = self._sync_points if sync_plan is not None else None

        for bid in blocks:
            block = cfg.blocks[bid]
            code.append(label_instr(thread_label[bid]))
            for instr in block.instrs:
                key = id(instr)
                if sync_points and key in sync_points.get("before", ()):
                    code.append(IRInstr(IROp.WAITLOCK,
                                        imm=descriptor.sync_lock_off))
                    if sync_local_reg is not None:
                        code.append(IRInstr(
                            IROp.LW, dst=sync_local_reg, a=fp,
                            imm=general_slots[sync_local_reg]))
                clone = self._clone_instr(instr, reduction_subst)
                if clone.is_branch():
                    clone.target = self._map_target(
                        cfg, loop, clone.target, thread_label, eoi_label,
                        exit_labels)
                code.append(clone)
                # Forced store at the natural def site of a communicated
                # local (paper §4.1): only iterations that really write
                # the variable create the inter-thread dependency.
                dst = clone.defs()
                if dst is not None and dst in general_slots \
                        and dst != sync_local_reg:
                    code.append(IRInstr(IROp.SW, a=dst, b=fp,
                                        imm=general_slots[dst]))
                if key in reset_site_ids:
                    code.append(IRInstr(IROp.FORCE_RESET,
                                        aux=reset_site_ids[key]))
                if sync_points and key in sync_points.get("after", ()):
                    if sync_local_reg is not None:
                        code.append(IRInstr(
                            IROp.SW, a=sync_local_reg, b=fp,
                            imm=general_slots[sync_local_reg]))
                    code.append(IRInstr(IROp.SIGNAL,
                                        imm=descriptor.sync_lock_off))
            # Materialize the fallthrough edge explicitly.
            term = block.terminator()
            falls = term is None or not (
                term.op == IROp.J
                or term.op in (IROp.RET, IROp.TRAP))
            if falls:
                succ = bid + 1
                if succ < len(cfg.blocks) and succ in cfg.blocks[bid].succs:
                    target = self._edge_label(loop, succ, thread_label,
                                              eoi_label, exit_labels)
                    code.append(IRInstr(IROp.J, target=target))

    def _map_target(self, cfg, loop, label, thread_label, eoi_label,
                    exit_labels):
        bid = cfg.label_map[label]
        return self._edge_label(loop, bid, thread_label, eoi_label,
                                exit_labels)

    def _edge_label(self, loop, bid, thread_label, eoi_label, exit_labels):
        if bid == loop.header:
            return eoi_label
        if bid in loop.blocks:
            return thread_label[bid]
        return exit_labels[bid]

    def _clone_instr(self, instr, reduction_subst):
        """Clone an instruction, substituting reduction accumulators by
        their per-thread temporaries everywhere (the classification
        guarantees the accumulator only appears inside its chain)."""
        clone = IRInstr(instr.op, instr.dst, instr.a, instr.b, instr.imm,
                        instr.target, instr.aux,
                        list(instr.args) if instr.args else None, instr.line)
        if reduction_subst:
            if clone.dst in reduction_subst:
                clone.dst = reduction_subst[clone.dst]
            if clone.a in reduction_subst:
                clone.a = reduction_subst[clone.a]
            if clone.b in reduction_subst:
                clone.b = reduction_subst[clone.b]
            if clone.args:
                clone.args = [reduction_subst.get(reg, reg)
                              for reg in clone.args]
        return clone

    # ------------------------------------------------------------------
    def _plan_sync_points(self, cfg, loop, sync_plan, sync_local_reg,
                          general_slots, kinds):
        """Decide where WAITLOCK / SIGNAL go.  Returns {"before": {ids},
        "after": {ids}} or None if the sync lock cannot be placed."""
        if sync_plan is None:
            return None
        dom = compute_dominators(cfg)
        tails = [tail for tail, __ in loop.backedges]

        def once(bid):
            return all(bid in dom[tail] for tail in tails)

        if sync_local_reg is not None:
            # Region = [first touch, last def] of the protected local.
            # Every touch must be in a once-per-iteration block; such
            # blocks all dominate the backedge tails, so they form a
            # dominance chain and the region is well ordered.
            touches_by_block = {}
            for bid in loop.blocks:
                for instr in cfg.blocks[bid].instrs:
                    if sync_local_reg in instr.uses() \
                            or instr.defs() == sync_local_reg:
                        touches_by_block.setdefault(bid, []).append(instr)
            if not touches_by_block:
                return None
            if not all(once(bid) for bid in touches_by_block):
                return None
            ordered = sorted(touches_by_block,
                             key=lambda bid: len(dom[bid]))
            for first, second in zip(ordered, ordered[1:]):
                if first not in dom[second]:
                    return None     # not a dominance chain
            first_block = ordered[0]
            # SIGNAL goes after the dynamically-last def; touches after
            # it can only be reads of the already-loaded register.
            last_def = None
            for bid in reversed(ordered):
                for instr in touches_by_block[bid]:
                    if instr.defs() == sync_local_reg:
                        last_def = instr
                if last_def is not None:
                    break
            if last_def is None:
                return None
            return {"before": {id(touches_by_block[first_block][0])},
                    "after": {id(last_def)}}

        # Heap dependency: match profiled sites (method, line, op, imm).
        load_instr = store_instr = None
        load_bid = store_bid = None
        for bid in loop.blocks:
            for instr in cfg.blocks[bid].instrs:
                key = (self.ir.name, instr.line, int(instr.op), instr.imm)
                if load_instr is None and key == sync_plan.load_site:
                    load_instr, load_bid = instr, bid
                if key == sync_plan.store_site:
                    store_instr, store_bid = instr, bid
        if load_instr is None or store_instr is None:
            return None
        if not (once(load_bid) and once(store_bid)):
            return None
        return {"before": {id(load_instr)}, "after": {id(store_instr)}}

    # ------------------------------------------------------------------
    def _rewrite_host(self, descriptor, cfg, loop, exit_succs):
        ir = self.ir
        exit_reg = ir.new_reg()
        stl_label = Label("stl%d" % descriptor.stl_id)

        inserts = []
        # Exit targets need labels the dispatch can jump to.
        exit_target_labels = {}
        for succ in exit_succs:
            block = cfg.blocks[succ]
            if block.labels:
                exit_target_labels[succ] = block.labels[0]
            else:
                label = Label()
                block.labels.append(label)
                cfg.label_map[label] = succ
                inserts.append((block.start, [label_instr(label)]))
                exit_target_labels[succ] = label

        # Retarget entry edges to the STL stub.
        for tail_id, head_id in loop.entries:
            tail = cfg.blocks[tail_id]
            term = tail.terminator()
            if term is not None and term.is_branch() \
                    and cfg.label_map.get(term.target) == head_id:
                term.target = stl_label
            else:
                inserts.append((tail.end,
                                [IRInstr(IROp.J, target=stl_label)]))

        # Append the stub: STL_RUN + exit dispatch.
        stub = [label_instr(stl_label),
                IRInstr(IROp.STL_RUN, dst=exit_reg, aux=descriptor)]
        for k, succ in enumerate(exit_succs[1:], start=1):
            t = ir.new_reg()
            stub.append(IRInstr(IROp.LI, dst=t, imm=k))
            stub.append(IRInstr(IROp.BEQ, a=exit_reg, b=t,
                                target=exit_target_labels[succ]))
        if exit_succs:
            stub.append(IRInstr(IROp.J,
                                target=exit_target_labels[exit_succs[0]]))
        else:
            # A loop with no exits can only be left via exception.
            stub.append(IRInstr(IROp.TRAP, aux="InfiniteLoop"))

        by_pos = {}
        for pos, instrs in inserts:
            by_pos.setdefault(pos, []).extend(instrs)
        new_code = []
        for pos, instr in enumerate(ir.code):
            if pos in by_pos:
                new_code.extend(by_pos[pos])
            new_code.append(instr)
        tail_pos = len(ir.code)
        if tail_pos in by_pos:
            new_code.extend(by_pos[tail_pos])
        new_code.extend(stub)
        ir.code = new_code


def recompile_with_stls(program, config, plans, options=None):
    """Recompile *program* turning every planned loop into an STL.

    *plans* maps loop_id -> StlPlan (from the selector).  Returns a
    CompiledProgram in "tls" mode whose methods contain STL_RUN regions.
    """
    from .compiler import CompiledMethod, CompiledProgram
    from .optimize import optimize
    from .translate import StaticLayout, Translator
    from ..hydra.config import STATICS_BASE

    options = options or StlOptions()
    program.seal()
    layout = StaticLayout(program, STATICS_BASE)
    compiled = CompiledProgram(program, layout, config, "tls")
    compiled.selected_stls = dict(plans)
    translator = Translator(program, layout)

    plans_by_method = {}
    for plan in plans.values():
        if plan.multilevel_inner and not options.multilevel:
            continue        # ablation: no multilevel decompositions
        plans_by_method.setdefault(plan.meta.method_name, []).append(plan)

    for method in program.all_methods():
        ir_method = translator.translate(method)
        optimize(ir_method)
        method_plans = plans_by_method.get(method.qualified_name)
        if method_plans:
            _transform_method(ir_method, config, method_plans, options)
        compiled.add(CompiledMethod(ir_method, method.owner.name,
                                    method.name))
        compiled.compile_cycles += (config.recompile_cycles_per_bytecode
                                    * len(method.code))
    return compiled


def _transform_method(ir_method, config, method_plans, options):
    """Apply STL transforms innermost-first using stable header labels."""
    cfg, ordered = identify_loops(ir_method)
    by_ordinal = {ordinal: loop for ordinal, loop in ordered}
    labeled = []
    pending_label_inserts = []
    for plan in sorted(method_plans, key=lambda p: -p.meta.depth):
        loop = by_ordinal.get(plan.meta.ordinal)
        if loop is None:
            continue
        header_block = cfg.blocks[loop.header]
        if header_block.labels:
            label = header_block.labels[0]
        else:
            label = Label()
            header_block.labels.append(label)
            pending_label_inserts.append((header_block.start, label))
        labeled.append((label, plan))
    # Apply label inserts from the highest position down so earlier
    # positions stay valid.
    for pos, label in sorted(pending_label_inserts, key=lambda x: -x[0]):
        ir_method.code.insert(pos, label_instr(label))

    compiler = StlCompiler(ir_method, config, options)
    for label, plan in labeled:
        compiler.transform(label, plan)
        # Drop the now-unreachable original loop body so later sibling
        # transforms (and the executable) don't carry dead clones.
        _prune_unreachable(ir_method)


def _prune_unreachable(ir_method):
    from .cfg import reachable_blocks
    cfg = build_cfg(ir_method.code)
    reachable = reachable_blocks(cfg)
    if len(reachable) == len(cfg.blocks):
        return
    keep = [False] * len(ir_method.code)
    for block in cfg.blocks:
        if block.bid in reachable:
            for pos in range(block.start, block.end):
                keep[pos] = True
    ir_method.code = [instr for pos, instr in enumerate(ir_method.code)
                      if keep[pos]]
