"""Bytecode -> IR translation (the microJIT's front half).

Translation abstract-interprets the operand stack: the verifier
guarantees a consistent stack depth at every pc, so stack slot *d* can
be pinned to register ``1 + max_locals + d`` and control-flow joins need
no merge code.  Register 0 always holds zero; bytecode local *v* lives
in register ``1 + v``.
"""

from ..bytecode.module import HEADER_BYTES, WORD
from ..bytecode.opcodes import Op
from ..bytecode.verifier import verify_method
from ..errors import JitError
from .ir import AllocInfo, IRInstr, IRMethod, IROp, Label, label_instr

ZERO_REG = 0

_INT_BINOP = {Op.IADD: IROp.ADD, Op.ISUB: IROp.SUB, Op.IMUL: IROp.MUL,
              Op.IDIV: IROp.DIV, Op.IREM: IROp.REM, Op.IAND: IROp.AND,
              Op.IOR: IROp.OR, Op.IXOR: IROp.XOR, Op.ISHL: IROp.SHL,
              Op.ISHR: IROp.SHR, Op.IUSHR: IROp.USHR}
_FLOAT_BINOP = {Op.FADD: IROp.FADD, Op.FSUB: IROp.FSUB, Op.FMUL: IROp.FMUL,
                Op.FDIV: IROp.FDIV, Op.FREM: IROp.FREM}
_ICMP_BRANCH = {Op.IF_ICMPEQ: IROp.BEQ, Op.IF_ICMPNE: IROp.BNE,
                Op.IF_ICMPLT: IROp.BLT, Op.IF_ICMPGE: IROp.BGE,
                Op.IF_ICMPGT: IROp.BGT, Op.IF_ICMPLE: IROp.BLE,
                Op.IF_ACMPEQ: IROp.BEQ, Op.IF_ACMPNE: IROp.BNE}
_IFZ_BRANCH = {Op.IFEQ: IROp.BEQZ, Op.IFNE: IROp.BNEZ,
               Op.IFNULL: IROp.BEQZ, Op.IFNONNULL: IROp.BNEZ}
_IFZ_CMP_BRANCH = {Op.IFLT: IROp.BLT, Op.IFGE: IROp.BGE,
                   Op.IFGT: IROp.BGT, Op.IFLE: IROp.BLE}
_ARRAY_LOADS = frozenset({Op.IALOAD, Op.FALOAD, Op.AALOAD})
_ARRAY_STORES = frozenset({Op.IASTORE, Op.FASTORE, Op.AASTORE})
_NEWARRAY_KIND = {Op.NEWARRAY_I: "int", Op.NEWARRAY_F: "float",
                  Op.NEWARRAY_A: "ref"}


class StaticLayout:
    """Assigns absolute word addresses to static fields and class locks."""

    def __init__(self, program, base):
        self.base = base
        self.field_addr = {}
        self.class_lock_addr = {}
        addr = base
        for cls in sorted(program.classes.values(), key=lambda c: c.name):
            self.class_lock_addr[cls.name] = addr
            addr += WORD
            for field in sorted(cls.fields.values(), key=lambda f: f.name):
                if field.is_static:
                    self.field_addr[(cls.name, field.name)] = addr
                    addr += WORD
        self.limit = addr

    def static_address(self, class_name, field_name, program):
        field = program.resolve_field(class_name, field_name)
        return self.field_addr[(field.owner.name, field.name)]


class Translator:
    """Translates one bytecode method into label-form IR."""

    def __init__(self, program, layout):
        self.program = program
        self.layout = layout

    def translate(self, method):
        depths = verify_method(self.program, method)
        max_stack = max((d for d in depths if d is not None), default=0) + 4
        base_stack = 1 + method.max_locals
        ir = IRMethod(
            method.qualified_name,
            num_params=method.num_params,
            returns_value=not method.return_type.is_void(),
            nregs=base_stack + max_stack,
            is_synchronized=method.is_synchronized,
            sync_static_class=(method.owner.name
                               if method.is_synchronized and method.is_static
                               else None),
        )
        ir.num_locals = method.max_locals
        self.ir = ir
        self.base_stack = base_stack
        self.method = method

        targets = {instr.arg for instr in method.code if instr.is_branch()}
        labels = {pc: Label("bc%d" % pc) for pc in targets}

        self._emit_prologue(method, ir)

        for pc, instr in enumerate(method.code):
            if pc in labels:
                ir.code.append(label_instr(labels[pc]))
            depth = depths[pc]
            if depth is None:
                continue   # unreachable
            self._translate_instr(instr, depth, labels)
        return ir

    # -- helpers -----------------------------------------------------------
    def _emit_prologue(self, method, ir):
        if method.is_synchronized:
            if method.is_static:
                addr = self.layout.class_lock_addr[method.owner.name]
                ir.emit(IROp.MONENTER, a=None, imm=addr)
            else:
                ir.emit(IROp.MONENTER, a=1)   # receiver in r1

    def _emit_unlock(self):
        method = self.method
        if method.is_synchronized:
            if method.is_static:
                addr = self.layout.class_lock_addr[method.owner.name]
                self.ir.emit(IROp.MONEXIT, a=None, imm=addr)
            else:
                self.ir.emit(IROp.MONEXIT, a=1)

    def _local(self, index):
        return 1 + index

    def _slot(self, depth):
        return self.base_stack + depth

    def _temp(self):
        return self.ir.new_reg()

    # -- the big dispatch ----------------------------------------------------
    def _translate_instr(self, instr, depth, labels):
        ir = self.ir
        op = instr.op
        arg = instr.arg
        line = instr.line
        slot = self._slot

        if op in (Op.ICONST, Op.FCONST):
            ir.emit(IROp.LI, dst=slot(depth), imm=arg, line=line)
        elif op == Op.ACONST_NULL:
            ir.emit(IROp.LI, dst=slot(depth), imm=0, line=line)
        elif op == Op.LOAD:
            ir.emit(IROp.MOV, dst=slot(depth), a=self._local(arg), line=line)
        elif op == Op.STORE:
            ir.emit(IROp.MOV, dst=self._local(arg), a=slot(depth - 1),
                    line=line)
        elif op == Op.IINC:
            index, delta = arg
            reg = self._local(index)
            ir.emit(IROp.ADDI, dst=reg, a=reg, imm=delta, line=line)
        elif op in _INT_BINOP:
            ir.emit(_INT_BINOP[op], dst=slot(depth - 2), a=slot(depth - 2),
                    b=slot(depth - 1), line=line)
        elif op in _FLOAT_BINOP:
            ir.emit(_FLOAT_BINOP[op], dst=slot(depth - 2), a=slot(depth - 2),
                    b=slot(depth - 1), line=line)
        elif op == Op.INEG:
            ir.emit(IROp.NEG, dst=slot(depth - 1), a=slot(depth - 1),
                    line=line)
        elif op == Op.FNEG:
            ir.emit(IROp.FNEG, dst=slot(depth - 1), a=slot(depth - 1),
                    line=line)
        elif op == Op.I2F:
            ir.emit(IROp.I2F, dst=slot(depth - 1), a=slot(depth - 1),
                    line=line)
        elif op == Op.F2I:
            ir.emit(IROp.F2I, dst=slot(depth - 1), a=slot(depth - 1),
                    line=line)
        elif op == Op.FCMP:
            ir.emit(IROp.FCMP, dst=slot(depth - 2), a=slot(depth - 2),
                    b=slot(depth - 1), line=line)
        elif op == Op.GOTO:
            ir.emit(IROp.J, target=labels[arg], line=line)
        elif op in _ICMP_BRANCH:
            ir.emit(_ICMP_BRANCH[op], a=slot(depth - 2), b=slot(depth - 1),
                    target=labels[arg], line=line)
        elif op in _IFZ_BRANCH:
            ir.emit(_IFZ_BRANCH[op], a=slot(depth - 1), target=labels[arg],
                    line=line)
        elif op in _IFZ_CMP_BRANCH:
            ir.emit(_IFZ_CMP_BRANCH[op], a=slot(depth - 1), b=ZERO_REG,
                    target=labels[arg], line=line)
        elif op in _NEWARRAY_KIND:
            self._translate_newarray(_NEWARRAY_KIND[op], depth, line)
        elif op == Op.ARRAYLENGTH:
            aref = slot(depth - 1)
            ir.emit(IROp.NULLCHK, a=aref, line=line)
            ir.emit(IROp.LW, dst=aref, a=aref, imm=WORD, line=line)
        elif op in _ARRAY_LOADS:
            self._translate_array_load(depth, line)
        elif op in _ARRAY_STORES:
            self._translate_array_store(depth, line)
        elif op == Op.NEW:
            cls = self.program.get_class(arg)
            ir.emit(IROp.ALLOC, dst=slot(depth), a=None,
                    imm=cls.instance_size,
                    aux=AllocInfo("object", class_name=cls.name,
                                  class_id=cls.class_id), line=line)
        elif op == Op.GETFIELD:
            field = self.program.resolve_field(*arg)
            obj = slot(depth - 1)
            ir.emit(IROp.NULLCHK, a=obj, line=line)
            ir.emit(IROp.LW, dst=obj, a=obj, imm=field.offset, line=line)
        elif op == Op.PUTFIELD:
            field = self.program.resolve_field(*arg)
            obj = slot(depth - 2)
            value = slot(depth - 1)
            ir.emit(IROp.NULLCHK, a=obj, line=line)
            ir.emit(IROp.SW, a=value, b=obj, imm=field.offset, line=line)
        elif op == Op.GETSTATIC:
            addr = self.layout.static_address(arg[0], arg[1], self.program)
            ir.emit(IROp.LW, dst=slot(depth), a=None, imm=addr, line=line)
        elif op == Op.PUTSTATIC:
            addr = self.layout.static_address(arg[0], arg[1], self.program)
            ir.emit(IROp.SW, a=slot(depth - 1), b=None, imm=addr, line=line)
        elif op == Op.INVOKESTATIC:
            callee = self.program.resolve_method(*arg)
            nargs = len(callee.param_types)
            args = [slot(depth - nargs + k) for k in range(nargs)]
            dst = slot(depth - nargs) if not callee.return_type.is_void() \
                else None
            ir.emit(IROp.CALL, dst=dst, aux=(callee.owner.name, callee.name),
                    args=args, line=line)
        elif op == Op.INVOKEVIRTUAL:
            callee = self.program.resolve_method(*arg)
            nargs = len(callee.param_types)
            recv = slot(depth - nargs - 1)
            args = [recv] + [slot(depth - nargs + k) for k in range(nargs)]
            ir.emit(IROp.NULLCHK, a=recv, line=line)
            dst = recv if not callee.return_type.is_void() else None
            ir.emit(IROp.CALLV, dst=dst, aux=(callee.owner.name, callee.name),
                    args=args, line=line)
        elif op == Op.RETURN:
            self._emit_unlock()
            ir.emit(IROp.RET, a=None, line=line)
        elif op == Op.RETURN_VALUE:
            self._emit_unlock()
            ir.emit(IROp.RET, a=slot(depth - 1), line=line)
        elif op == Op.MONITORENTER:
            ir.emit(IROp.MONENTER, a=slot(depth - 1), line=line)
        elif op == Op.MONITOREXIT:
            ir.emit(IROp.MONEXIT, a=slot(depth - 1), line=line)
        elif op == Op.INTRINSIC:
            name, nargs = arg
            from ..vm import intrinsics
            intrinsic = intrinsics.lookup(name)
            args = [slot(depth - nargs + k) for k in range(nargs)]
            dst = slot(depth - nargs) if intrinsic.has_result() else None
            ir.emit(IROp.INTRIN, dst=dst, aux=name, args=args, line=line)
        elif op == Op.POP:
            pass
        elif op == Op.DUP:
            ir.emit(IROp.MOV, dst=slot(depth), a=slot(depth - 1), line=line)
        elif op == Op.DUP_X1:
            ir.emit(IROp.MOV, dst=slot(depth), a=slot(depth - 1), line=line)
            ir.emit(IROp.MOV, dst=slot(depth - 1), a=slot(depth - 2),
                    line=line)
            ir.emit(IROp.MOV, dst=slot(depth - 2), a=slot(depth), line=line)
        elif op == Op.SWAP:
            temp = self._temp()
            ir.emit(IROp.MOV, dst=temp, a=slot(depth - 2), line=line)
            ir.emit(IROp.MOV, dst=slot(depth - 2), a=slot(depth - 1),
                    line=line)
            ir.emit(IROp.MOV, dst=slot(depth - 1), a=temp, line=line)
        elif op == Op.NOP:
            pass
        else:
            raise JitError("untranslatable opcode %s" % op)

    def _translate_newarray(self, kind, depth, line):
        ir = self.ir
        length = self._slot(depth - 1)
        size = self._temp()
        ir.emit(IROp.SLLI, dst=size, a=length, imm=2, line=line)
        ir.emit(IROp.ADDI, dst=size, a=size, imm=HEADER_BYTES, line=line)
        ir.emit(IROp.ALLOC, dst=length, a=size,
                aux=AllocInfo("array", is_array=True, elem_kind=kind),
                line=line)

    def _translate_array_load(self, depth, line):
        ir = self.ir
        aref = self._slot(depth - 2)
        index = self._slot(depth - 1)
        ir.emit(IROp.NULLCHK, a=aref, line=line)
        length = self._temp()
        ir.emit(IROp.LW, dst=length, a=aref, imm=WORD, line=line)
        ir.emit(IROp.BOUNDCHK, a=index, b=length, line=line)
        addr = self._temp()
        ir.emit(IROp.SLLI, dst=addr, a=index, imm=2, line=line)
        ir.emit(IROp.ADD, dst=addr, a=aref, b=addr, line=line)
        ir.emit(IROp.LW, dst=aref, a=addr, imm=HEADER_BYTES, line=line)

    def _translate_array_store(self, depth, line):
        ir = self.ir
        aref = self._slot(depth - 3)
        index = self._slot(depth - 2)
        value = self._slot(depth - 1)
        ir.emit(IROp.NULLCHK, a=aref, line=line)
        length = self._temp()
        ir.emit(IROp.LW, dst=length, a=aref, imm=WORD, line=line)
        ir.emit(IROp.BOUNDCHK, a=index, b=length, line=line)
        addr = self._temp()
        ir.emit(IROp.SLLI, dst=addr, a=index, imm=2, line=line)
        ir.emit(IROp.ADD, dst=addr, a=aref, b=addr, line=line)
        ir.emit(IROp.SW, a=value, b=addr, imm=HEADER_BYTES, line=line)
