"""microJIT: bytecode -> IR compiler with TEST annotation and STL support."""

from .compiler import (CompiledMethod, CompiledProgram, compile_annotated,
                       compile_program)
from .ir import IRInstr, IRMethod, IROp, Label

__all__ = ["compile_program", "compile_annotated", "CompiledProgram",
           "CompiledMethod", "IROp", "IRInstr", "IRMethod", "Label"]
