"""The Hydra machine: simulated CPUs executing microJIT IR.

Execution advances per-CPU clocks.  Sequential runs drive one
:class:`CpuContext` to completion through batched superinstruction
blocks; the TLS runtime drives four of them under a scheduler that
totally orders memory/sync/commit events on the simulated clock, which
makes violation detection exact.  The reference (stepwise) scheduler
realizes that order by always stepping the smallest-clock CPU one
instruction at a time; the default event-driven scheduler batches the
straight-line work between events and charges the identical cycles at
event boundaries (``HydraConfig.scheduler``, docs/performance.md).
"""

import math

from ..bytecode.instructions import f2i, i32, idiv, irem, u32
from ..bytecode.module import WORD
from ..engine.ir_engine import dispatch_table, step_table
from ..errors import (ArithmeticException, ArrayIndexException,
                      GuestException, NullPointerException, VMError)
from ..jit.ir import IROp
from ..vm import intrinsics
from ..vm.gc import GarbageCollector
from ..vm.heap import Allocator
from ..vm.locks import LockManager
from .cache import MemoryHierarchy
from .config import STACK_BASE
from .memory import Memory

# step() signals returned to whoever drives the context
SIG_DONE = "done"
SIG_EOI = "eoi"
SIG_EXIT = "exit"
SIG_WAIT = "wait"
SIG_SWITCH = "switch"


class Frame:
    __slots__ = ("code", "pc", "regs", "ret_reg", "name", "compiled",
                 "handlers")

    def __init__(self, compiled, args, ret_reg=None):
        self.compiled = compiled
        self.code = compiled.code
        #: predecoded dispatch table (built once per code unit, cached
        #: on it) — the fast engine indexes this by pc instead of
        #: walking the if/elif chain in :meth:`CpuContext.step_legacy`
        self.handlers = dispatch_table(compiled)
        self.pc = 0
        self.regs = [0] * compiled.nregs
        for index, value in enumerate(args, start=1):
            self.regs[index] = value
        self.ret_reg = ret_reg
        self.name = compiled.name


class PlainMemoryInterface:
    """Direct memory access with cache-latency accounting (no speculation)."""

    __slots__ = ("ctx", "machine")

    def __init__(self, ctx):
        self.ctx = ctx
        self.machine = ctx.machine

    def load(self, addr):
        machine = self.machine
        latency = machine.hierarchy.load_latency(self.ctx.cpu_id, addr)
        value = machine.memory.load(addr)
        if machine.profiler is not None:
            machine.profiler.on_load(addr, self.ctx.time,
                                     self.ctx.current_site)
        return value, latency

    def store(self, addr, value):
        machine = self.machine
        latency = machine.hierarchy.store_latency(self.ctx.cpu_id, addr)
        machine.memory.store(addr, value)
        if machine.profiler is not None:
            machine.profiler.on_store(addr, self.ctx.time,
                                      self.ctx.current_site)
        return latency

    def lwnv(self, addr):
        return self.load(addr)


class CpuContext:
    """One simulated CPU: a frame stack, a clock and a memory interface."""

    __slots__ = ("machine", "cpu_id", "time", "frames", "mem", "status",
                 "return_value", "spec", "output_buffer", "instret",
                 "current_site", "compute_cycles", "fast")

    def __init__(self, machine, cpu_id):
        self.machine = machine
        self.cpu_id = cpu_id
        self.fast = getattr(machine.config, "fastpath", True)
        self.time = 0
        self.frames = []
        self.mem = PlainMemoryInterface(self)
        self.status = "idle"
        self.return_value = None
        self.spec = None               # SpecThreadState while speculating
        self.output_buffer = None      # buffered prints during speculation
        self.instret = 0
        self.current_site = None
        self.compute_cycles = 0

    # -- frame management ---------------------------------------------------
    def push_entry(self, compiled, args):
        self.frames = [Frame(compiled, args)]
        self.status = "running"
        self.return_value = None

    def reset_for_thread(self, compiled, fp_reg, fp_addr, iter_reg,
                         iteration, seed_regs=None):
        """Arrange the context to run one speculative thread iteration."""
        frame = Frame(compiled, [])
        if seed_regs is not None:
            regs = frame.regs
            for reg, value in seed_regs.items():
                regs[reg] = value
        frame.regs[fp_reg] = fp_addr
        frame.regs[iter_reg] = iteration
        self.frames = [frame]
        self.status = "running"

    # -- the interpreter ------------------------------------------------------
    def step(self):
        """Execute one dispatch unit; returns a signal or None.

        Fast path (the default): index the frame's predecoded handler
        table by pc — one dispatch may execute a whole straight-line
        block of instructions (see :mod:`repro.engine.ir_engine`), but
        every memory access, signal and runtime service is still its
        own dispatch, so the TLS event loop's view of the simulated
        clock is unchanged.  ``HydraConfig.fastpath = False`` routes
        through :meth:`step_legacy`, the original single-instruction
        if/elif dispatcher.
        """
        if self.fast:
            frame = self.frames[-1]
            return step_table(frame.compiled)[frame.pc](self, frame)
        return self.step_legacy()

    def step_legacy(self):
        """Execute one instruction the legacy way (if/elif chain)."""
        frame = self.frames[-1]
        code = frame.code
        instr = code[frame.pc]
        frame.pc += 1
        self.instret += 1
        regs = frame.regs
        op = instr.op
        cost = 1

        if op == IROp.LI:
            regs[instr.dst] = instr.imm
        elif op == IROp.MOV:
            regs[instr.dst] = regs[instr.a]
        elif op == IROp.ADD:
            regs[instr.dst] = i32(regs[instr.a] + regs[instr.b])
        elif op == IROp.ADDI:
            regs[instr.dst] = i32(regs[instr.a] + instr.imm)
        elif op == IROp.SUB:
            regs[instr.dst] = i32(regs[instr.a] - regs[instr.b])
        elif op == IROp.MUL:
            regs[instr.dst] = i32(regs[instr.a] * regs[instr.b])
            cost = 2
        elif op == IROp.DIV:
            divisor = regs[instr.b]
            if divisor == 0:
                raise ArithmeticException("/ by zero")
            regs[instr.dst] = idiv(regs[instr.a], divisor)
            cost = 12
        elif op == IROp.REM:
            divisor = regs[instr.b]
            if divisor == 0:
                raise ArithmeticException("% by zero")
            regs[instr.dst] = irem(regs[instr.a], divisor)
            cost = 12
        elif op == IROp.NEG:
            regs[instr.dst] = i32(-regs[instr.a])
        elif op == IROp.AND:
            regs[instr.dst] = i32(regs[instr.a] & regs[instr.b])
        elif op == IROp.OR:
            regs[instr.dst] = i32(regs[instr.a] | regs[instr.b])
        elif op == IROp.XOR:
            regs[instr.dst] = i32(regs[instr.a] ^ regs[instr.b])
        elif op == IROp.SHL:
            regs[instr.dst] = i32(regs[instr.a] << (regs[instr.b] & 31))
        elif op == IROp.SHR:
            regs[instr.dst] = i32(regs[instr.a] >> (regs[instr.b] & 31))
        elif op == IROp.USHR:
            regs[instr.dst] = i32(u32(regs[instr.a]) >> (regs[instr.b] & 31))
        elif op == IROp.SLLI:
            regs[instr.dst] = i32(regs[instr.a] << (instr.imm & 31))
        elif op == IROp.FADD:
            regs[instr.dst] = regs[instr.a] + regs[instr.b]
        elif op == IROp.FSUB:
            regs[instr.dst] = regs[instr.a] - regs[instr.b]
        elif op == IROp.FMUL:
            regs[instr.dst] = regs[instr.a] * regs[instr.b]
            cost = 3
        elif op == IROp.FDIV:
            divisor = regs[instr.b]
            numerator = regs[instr.a]
            if divisor == 0.0:
                regs[instr.dst] = (float("nan") if numerator == 0.0 else
                                   (float("inf") if numerator > 0.0
                                    else float("-inf")))
            else:
                regs[instr.dst] = numerator / divisor
            cost = 12
        elif op == IROp.FNEG:
            regs[instr.dst] = -regs[instr.a]
        elif op == IROp.FREM:
            divisor = regs[instr.b]
            regs[instr.dst] = (math.fmod(regs[instr.a], divisor)
                               if divisor != 0.0 else float("nan"))
            cost = 12
        elif op == IROp.SEQ:
            regs[instr.dst] = int(regs[instr.a] == regs[instr.b])
        elif op == IROp.SNE:
            regs[instr.dst] = int(regs[instr.a] != regs[instr.b])
        elif op == IROp.SLT:
            regs[instr.dst] = int(regs[instr.a] < regs[instr.b])
        elif op == IROp.SLE:
            regs[instr.dst] = int(regs[instr.a] <= regs[instr.b])
        elif op == IROp.SGT:
            regs[instr.dst] = int(regs[instr.a] > regs[instr.b])
        elif op == IROp.SGE:
            regs[instr.dst] = int(regs[instr.a] >= regs[instr.b])
        elif op == IROp.FCMP:
            a = regs[instr.a]
            b = regs[instr.b]
            if a != a or b != b:
                regs[instr.dst] = -1
            else:
                regs[instr.dst] = (a > b) - (a < b)
        elif op == IROp.I2F:
            regs[instr.dst] = float(regs[instr.a])
        elif op == IROp.F2I:
            regs[instr.dst] = f2i(regs[instr.a])
        elif op == IROp.J:
            frame.pc = instr.target
        elif op == IROp.BEQ:
            if regs[instr.a] == regs[instr.b]:
                frame.pc = instr.target
        elif op == IROp.BNE:
            if regs[instr.a] != regs[instr.b]:
                frame.pc = instr.target
        elif op == IROp.BLT:
            if regs[instr.a] < regs[instr.b]:
                frame.pc = instr.target
        elif op == IROp.BGE:
            if regs[instr.a] >= regs[instr.b]:
                frame.pc = instr.target
        elif op == IROp.BGT:
            if regs[instr.a] > regs[instr.b]:
                frame.pc = instr.target
        elif op == IROp.BLE:
            if regs[instr.a] <= regs[instr.b]:
                frame.pc = instr.target
        elif op == IROp.BEQZ:
            if regs[instr.a] == 0:
                frame.pc = instr.target
        elif op == IROp.BNEZ:
            if regs[instr.a] != 0:
                frame.pc = instr.target
        elif op == IROp.LW:
            self.current_site = (frame.name, instr)
            base = regs[instr.a] if instr.a is not None else 0
            value, latency = self.mem.load(base + instr.imm)
            regs[instr.dst] = value
            cost = latency
        elif op == IROp.SW:
            self.current_site = (frame.name, instr)
            base = regs[instr.b] if instr.b is not None else 0
            cost = self.mem.store(base + instr.imm, regs[instr.a])
        elif op == IROp.LWNV:
            self.current_site = (frame.name, instr)
            base = regs[instr.a] if instr.a is not None else 0
            value, latency = self.mem.lwnv(base + instr.imm)
            regs[instr.dst] = value
            cost = latency
        elif op == IROp.NULLCHK:
            if regs[instr.a] == 0:
                raise NullPointerException(frame.name)
        elif op == IROp.BOUNDCHK:
            index = regs[instr.a]
            if index < 0 or index >= regs[instr.b]:
                raise ArrayIndexException(
                    "index %d, length %d" % (index, regs[instr.b]))
        elif op == IROp.ALLOC:
            self.current_site = (frame.name, instr)
            size = regs[instr.a] if instr.a is not None else instr.imm
            cost = self._do_alloc(instr, size)
        elif op == IROp.CALL:
            compiled = self.machine.compiled.resolve(*instr.aux)
            args = [regs[reg] for reg in instr.args]
            self.frames.append(Frame(compiled, args, instr.dst))
            cost = self.machine.config.call_overhead_cycles + len(args)
        elif op == IROp.CALLV:
            cost = self._do_callv(instr, regs)
        elif op == IROp.RET:
            value = regs[instr.a] if instr.a is not None else None
            popped = self.frames.pop()
            if not self.frames:
                self.status = "done"
                self.return_value = value
                self.time += cost
                self.compute_cycles += cost
                return SIG_DONE
            if popped.ret_reg is not None and value is not None:
                self.frames[-1].regs[popped.ret_reg] = value
            cost = 2
        elif op == IROp.INTRIN:
            cost = self._do_intrinsic(instr, regs)
        elif op == IROp.MONENTER:
            self.current_site = (frame.name, instr)
            addr = regs[instr.a] if instr.a is not None else instr.imm
            if instr.a is not None and addr == 0:
                raise NullPointerException("monitorenter")
            cost = self.machine.locks.enter(self.mem, addr,
                                            self.spec is not None)
        elif op == IROp.MONEXIT:
            self.current_site = (frame.name, instr)
            addr = regs[instr.a] if instr.a is not None else instr.imm
            cost = self.machine.locks.leave(self.mem, addr,
                                            self.spec is not None)
        elif op == IROp.TRAP:
            raise GuestException(instr.aux or "Trap")
        elif op == IROp.SLOOP:
            if self.machine.profiler is not None:
                self.machine.profiler.on_sloop(instr.aux, instr.imm,
                                               self.time)
        elif op == IROp.EOI:
            if self.machine.profiler is not None:
                self.machine.profiler.on_eoi(instr.aux, self.time)
        elif op == IROp.ELOOP:
            if self.machine.profiler is not None:
                self.machine.profiler.on_eloop(instr.aux, self.time)
        elif op == IROp.LWL:
            if self.machine.profiler is not None:
                self.machine.profiler.on_lwl(instr.aux, instr.imm, self.time,
                                             instr)
        elif op == IROp.SWL:
            if self.machine.profiler is not None:
                self.machine.profiler.on_swl(instr.aux, instr.imm, self.time,
                                             instr)
        elif op == IROp.STL_RUN:
            # Delegate the whole speculative region to the TLS runtime.
            exit_id = self.machine.tls_runtime.run_stl(self, instr.aux)
            regs[instr.dst] = exit_id
            cost = 0
        elif op == IROp.STL_EOI_END:
            self.time += cost
            self.compute_cycles += cost
            return SIG_EOI
        elif op == IROp.STL_EXIT:
            self.time += cost
            self.compute_cycles += cost
            return SIG_EXIT
        elif op == IROp.WAITLOCK:
            return SIG_WAIT      # TLS runtime resolves; pc already advanced
        elif op == IROp.SIGNAL:
            cost = self._do_signal(instr, regs)
        elif op == IROp.FORCE_RESET:
            cost = self._do_force_reset(instr, regs)
        else:
            raise VMError("unhandled IR op %s" % op)

        self.time += cost
        self.compute_cycles += cost
        return None

    # -- helpers ----------------------------------------------------------------
    def _do_alloc(self, instr, size):
        machine = self.machine
        if self.spec is None and machine.gc is not None \
                and machine.gc.should_collect():
            roots = []
            for frame in self.frames:
                roots.extend(frame.regs)
            gc_cycles = machine.gc.collect(roots)
            if machine.trace is not None:
                machine.trace.gc(self.time, self.cpu_id, gc_cycles)
            self.time += gc_cycles
            machine.gc_cycles += gc_cycles
        addr, latency = machine.allocator.allocate(
            self.mem, self.cpu_id if self.spec is not None else None,
            size, instr.aux)
        self.frames[-1].regs[instr.dst] = addr
        return latency

    def _do_callv(self, instr, regs):
        machine = self.machine
        receiver = regs[instr.args[0]]
        # Virtual dispatch: read the class id from the object header.
        class_id, latency = self.mem.load(receiver + WORD)
        compiled = machine.compiled.dispatch(class_id, instr.aux[1])
        args = [regs[reg] for reg in instr.args]
        self.frames.append(Frame(compiled, args, instr.dst))
        return (machine.config.call_overhead_cycles
                + machine.config.virtual_dispatch_cycles
                + latency + len(args))

    def _do_intrinsic(self, instr, regs):
        intrinsic = intrinsics.lookup(instr.aux)
        args = [regs[reg] for reg in instr.args]
        if intrinsic.is_output:
            if self.output_buffer is not None:
                self.output_buffer.append(args[0])
            else:
                self.machine.output.append(args[0])
        else:
            result = intrinsic.fn(*args)
            if instr.dst is not None:
                regs[instr.dst] = result
        return intrinsic.cycles

    def _do_signal(self, instr, regs):
        spec = self.spec
        if spec is None:
            return 1
        addr = spec.fp_addr + instr.imm
        return self.mem.store(addr, spec.iteration + 1)

    def _do_force_reset(self, instr, regs):
        """Reset-able inductor written unpredictably (paper §4.2.3).

        Marks the thread: at its EOI the TLS runtime publishes the new
        start-of-next-iteration value and forces later threads to
        restart so their cold init recomputes from it.  Outside
        speculation this is a no-op.
        """
        spec = self.spec
        if spec is not None:
            spec.request_reset = True
            spec.pending_resets.append(instr.aux)   # ResetableSpec
        return 1

class RunResult:
    def __init__(self, machine, ctx, guest_exception=None):
        self.cycles = ctx.time
        self.instructions = ctx.instret
        self.output = list(machine.output)
        self.return_value = ctx.return_value
        self.gc_cycles = machine.gc_cycles
        self.guest_exception = guest_exception


class Machine:
    """Owns the simulated hardware + VM services and runs programs."""

    def __init__(self, compiled, config, profiler=None,
                 parallel_allocator=False, speculation_aware_locks=True,
                 trace=None):
        self.compiled = compiled
        self.config = config
        self.memory = Memory()
        self.hierarchy = MemoryHierarchy(config)
        self.allocator = Allocator(self.memory, config, config.num_cpus)
        self.allocator.parallel_mode = parallel_allocator
        self.locks = LockManager(config, speculation_aware_locks)
        self.gc = GarbageCollector(compiled.program, compiled.layout,
                                   self.memory, self.allocator, config)
        self.profiler = profiler
        #: Optional :class:`repro.trace.TraceCollector`; ``None`` (the
        #: default) keeps every instrumentation site on the same
        #: is-None guard the profiler hooks use — near-zero cost.
        self.trace = trace
        self.tls_runtime = None
        self.output = []
        self.gc_cycles = 0
        self.stack_ptr = STACK_BASE
        self._init_statics()

    def _init_statics(self):
        # Static fields default to zero; floats to 0.0.
        layout = self.compiled.layout
        program = self.compiled.program
        for key, addr in layout.field_addr.items():
            field = program.resolve_field(*key)
            self.memory.store(addr, 0.0 if field.type.is_float() else 0)

    # -- stack slots for STL local-variable communication -------------------------
    def stack_alloc(self, nbytes):
        addr = self.stack_ptr
        self.stack_ptr += (nbytes + 7) & ~7
        return addr

    def stack_release(self, addr):
        self.stack_ptr = addr

    # -- running ---------------------------------------------------------------
    def run(self, *args, max_instructions=500_000_000):
        entry = self.compiled.entry()
        ctx = CpuContext(self, 0)
        ctx.push_entry(entry, list(args))
        guest_exception = None
        try:
            if ctx.fast:
                # Inlined dispatch: one list index + closure call per
                # step, no intermediate ``step()`` frame.
                frames = ctx.frames
                while True:
                    frame = frames[-1]
                    signal = frame.handlers[frame.pc](ctx, frame)
                    if signal is not None and signal == SIG_DONE:
                        break
                    if ctx.instret > max_instructions:
                        raise VMError("instruction budget exceeded")
            else:
                while True:
                    signal = ctx.step_legacy()
                    if signal == SIG_DONE:
                        break
                    if ctx.instret > max_instructions:
                        raise VMError("instruction budget exceeded")
        except GuestException as exc:
            guest_exception = exc
            ctx.status = "done"
        return RunResult(self, ctx, guest_exception)
