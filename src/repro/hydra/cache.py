"""Set-associative cache models for latency accounting.

The caches model *timing only* — data always comes from the flat
:class:`Memory` (or a speculative store buffer).  Each CPU has a private
L1 data cache; all CPUs share the on-chip L2 (paper Fig. 2).  Writes are
write-through with a write buffer, so stores cost one cycle and
allocate/update the line in both levels (the paper's write-through bus
keeps L1s coherent; we model coherence by invalidating peer L1 lines on
remote writes).
"""

from .config import CACHE_LINE_SHIFT


class SetAssociativeCache:
    """LRU set-associative cache tracking which line addresses are present."""

    def __init__(self, size_bytes, assoc, line_bytes=32):
        self.num_sets = max(1, size_bytes // (line_bytes * assoc))
        self.assoc = assoc
        # Each set is a dict line_addr -> last-use tick (LRU via counter).
        self.sets = [dict() for __ in range(self.num_sets)]
        self.tick = 0
        self.hits = 0
        self.misses = 0

    def _set_for(self, line):
        return self.sets[line % self.num_sets]

    def lookup(self, line):
        """Returns True on hit (and touches the line)."""
        self.tick += 1
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = self.tick
            self.hits += 1
            return True
        self.misses += 1
        return False

    def fill(self, line):
        """Insert the line, evicting LRU if needed."""
        self.tick += 1
        cache_set = self._set_for(line)
        if line in cache_set:
            cache_set[line] = self.tick
            return
        if len(cache_set) >= self.assoc:
            victim = min(cache_set, key=cache_set.get)
            del cache_set[victim]
        cache_set[line] = self.tick

    def invalidate(self, line):
        cache_set = self._set_for(line)
        cache_set.pop(line, None)

    def flush(self):
        for cache_set in self.sets:
            cache_set.clear()


class MemoryHierarchy:
    """Per-CPU L1s over a shared L2 over main memory; returns latencies.

    Consecutive-access memoization: simulated code touches the same
    cache line in runs (walking an array, spilling/reloading the same
    stack slot), so the hierarchy remembers the last ``(cpu, line,
    kind)`` access and answers an identical follow-up without the
    set-dict probe.  The fast paths are *counter-exact*: ``tick``,
    ``hits`` and ``misses`` advance exactly as the slow path would.
    Skipping the LRU tick rewrite is order-preserving — during a
    memoized run no other line in any set is touched (any other access
    resets the memo), so the memoized line stays the set's
    most-recently-used whether its stored tick is the run's first or
    last value.  Every observable (latency, counters, later eviction
    decisions) is bit-identical with memoization on.
    """

    def __init__(self, config):
        self.config = config
        self.l1 = [SetAssociativeCache(config.l1_size_bytes, config.l1_assoc,
                                       config.line_bytes)
                   for __ in range(config.num_cpus)]
        self.l2 = SetAssociativeCache(config.l2_size_bytes, config.l2_assoc,
                                      config.line_bytes)
        #: last access: (cpu, line, kind) — invalidated by any
        #: non-matching access and by :meth:`flush_l1`.  Disabled (kept
        #: ``None`` forever) under ``--no-fastpath`` so the legacy
        #: engine really is the unmodified reference path.
        self._memo = None
        self._memo_enabled = getattr(config, "fastpath", True)

    def load_latency(self, cpu, addr):
        line = addr >> CACHE_LINE_SHIFT
        l1 = self.l1[cpu]
        # Field-wise memo compare (no tuple allocation on the hot path).
        memo = self._memo
        if memo is not None and memo[1] == line and memo[0] == cpu \
                and memo[2] == "load":
            # Repeat same-line load by the same CPU: guaranteed L1 hit.
            l1.tick += 1
            l1.hits += 1
            return self.config.l1_hit_cycles
        if self._memo_enabled:
            self._memo = (cpu, line, "load")
        config = self.config
        # L1 probe, inlined from SetAssociativeCache.lookup — loads
        # dominate the hierarchy traffic and mostly hit here.
        tick = l1.tick + 1
        l1.tick = tick
        cache_set = l1.sets[line % l1.num_sets]
        if line in cache_set:
            cache_set[line] = tick
            l1.hits += 1
            return config.l1_hit_cycles
        l1.misses += 1
        if self.l2.lookup(line):
            l1.fill(line)
            return config.l2_hit_cycles
        self.l2.fill(line)
        l1.fill(line)
        return config.memory_cycles

    def store_latency(self, cpu, addr):
        """Write-through with write buffering: one cycle from the CPU's
        point of view; the line is updated in this L1 and L2, and peer
        L1 copies are invalidated (write-bus coherence)."""
        line = addr >> CACHE_LINE_SHIFT
        if self._memo == (cpu, line, "store"):
            # Repeat same-line store: both fills would only rewrite the
            # LRU tick, and peer L1s already lost the line.
            self.l1[cpu].tick += 1
            self.l2.tick += 1
            return 1
        if self._memo_enabled:
            self._memo = (cpu, line, "store")
        self.l1[cpu].fill(line)
        self.l2.fill(line)
        for other, l1 in enumerate(self.l1):
            if other != cpu:
                l1.invalidate(line)
        return 1

    def flush_l1(self, cpu):
        self.l1[cpu].flush()
        self._memo = None

    def counters(self):
        """Cumulative hit/miss counters across all L1s plus the shared
        L2 — harvested by the trace layer (``repro.trace``) into
        counter tracks and :class:`~repro.trace.TraceAggregates`, so
        cache observability costs nothing on the per-access path."""
        return {
            "l1_hits": sum(l1.hits for l1 in self.l1),
            "l1_misses": sum(l1.misses for l1 in self.l1),
            "l2_hits": self.l2.hits,
            "l2_misses": self.l2.misses,
        }
