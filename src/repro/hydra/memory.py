"""Flat word-addressed memory for the simulated machine.

Values are Python ints or floats at word (4-byte) granularity; sparse
storage keeps multi-megabyte address spaces cheap.  All guest-visible
state (heap objects, static fields, allocator metadata, STL stack
slots) lives here so the TLS machinery sees every dependency.
"""

from ..errors import VMError


class Memory:
    __slots__ = ("words",)

    def __init__(self):
        self.words = {}

    def load(self, addr):
        if addr <= 0 or addr & 3:
            raise VMError("bad load address 0x%x" % addr)
        return self.words.get(addr, 0)

    def store(self, addr, value):
        if addr <= 0 or addr & 3:
            raise VMError("bad store address 0x%x" % addr)
        self.words[addr] = value

    def snapshot(self, base, count):
        """Read *count* words starting at *base* (for tests/debugging)."""
        return [self.words.get(base + 4 * k, 0) for k in range(count)]

    def __len__(self):
        return len(self.words)
