"""Hydra CMP configuration — the constants of paper Figure 2 / Table 1.

Everything tunable about the simulated hardware and runtime lives here
so experiments can sweep it (the paper's "retargetability" argument:
different decompositions for CMPs with more CPUs or larger buffers).
"""

from dataclasses import asdict, dataclass, field

# ---------------------------------------------------------------------------
# memory map of the simulated machine (word-addressed, byte addresses)
# ---------------------------------------------------------------------------

#: Static fields and per-class lock words live here.
STATICS_BASE = 0x0000_8000
#: Runtime stack area used for STL local-variable communication ($fp slots).
STACK_BASE = 0x0010_0000
#: Allocator metadata (free-list heads, bump pointer) — real memory so that
#: allocation inside speculative threads creates real dependencies (§5.2).
ALLOCATOR_BASE = 0x0020_0000
#: Guest heap.
HEAP_BASE = 0x0040_0000
HEAP_LIMIT = 0x4000_0000

CACHE_LINE_BYTES = 32
CACHE_LINE_SHIFT = 5


@dataclass
class SpeculationOverheads:
    """Software handler overheads in cycles (paper Table 1)."""

    startup: int = 23
    shutdown: int = 16
    eoi: int = 5
    restart: int = 6

    @staticmethod
    def new_handlers():
        return SpeculationOverheads(23, 16, 5, 6)

    @staticmethod
    def old_handlers():
        return SpeculationOverheads(41, 46, 14, 13)

    def to_dict(self):
        return asdict(self)

    @staticmethod
    def from_dict(data):
        return SpeculationOverheads(**data)


@dataclass
class HydraConfig:
    """Simulated hardware and runtime-system parameters."""

    # -- CPUs ---------------------------------------------------------------
    num_cpus: int = 4

    # -- execution engine ---------------------------------------------------
    #: Predecoded threaded-dispatch engine (repro.engine): table-driven
    #: handler dispatch, fused superinstruction blocks and the memory
    #: hierarchy's consecutive-access memo.  Cycle-exact with the
    #: legacy if/elif dispatcher (enforced by the differential oracle
    #: in tests/test_engine_differential.py); set False — CLI
    #: ``--no-fastpath`` — for debugging or A/B benchmarking.
    fastpath: bool = True

    #: TLS scheduling discipline (repro.tls.runtime): ``"event"`` (the
    #: default) parks each speculative CPU at its next memory/sync/
    #: commit event and executes the straight-line run in between as
    #: batched superinstruction blocks, interleaving CPUs only at event
    #: boundaries; ``"stepwise"`` is the original smallest-clock
    #: per-instruction loop, kept as the differential oracle (CLI
    #: ``--scheduler``).  Both are observationally cycle-exact
    #: (tests/test_scheduler_differential.py); the event scheduler
    #: requires ``fastpath`` and silently degrades to stepwise without
    #: it, so ``--no-fastpath`` remains the unmodified reference path.
    scheduler: str = "event"

    # -- memory hierarchy (paper Fig. 2) ---------------------------------------
    l1_size_bytes: int = 16 * 1024
    l1_assoc: int = 4
    l2_size_bytes: int = 2 * 1024 * 1024
    l2_assoc: int = 8
    line_bytes: int = CACHE_LINE_BYTES
    l1_hit_cycles: int = 1
    l2_hit_cycles: int = 5
    interprocessor_cycles: int = 10     # speculative forwarding latency
    memory_cycles: int = 50

    # -- speculative buffers (paper Fig. 2, per-thread limits) -------------------
    load_buffer_lines: int = 512        # 16kB of speculatively-read lines
    store_buffer_lines: int = 64        # 2kB speculative store buffer

    # -- TLS software handlers (paper Table 1) -------------------------------------
    overheads: SpeculationOverheads = field(
        default_factory=SpeculationOverheads.new_handlers)
    #: Cycles saved per entry by hoisted startup/shutdown (§4.2.7): the
    #: "wake up slave CPUs + init hardware" half of the handlers.
    hoisted_startup_cycles: int = 8
    hoisted_shutdown_cycles: int = 6

    # -- TEST profiler (paper §3.2) ---------------------------------------------
    comparator_banks: int = 8
    #: The paper recompiles after ~1000 profiled iterations.  Our data
    #: sets run ~100x shorter than the paper's, so the default target is
    #: scaled likewise to keep Figure 9's profiling slice proportional;
    #: set 1000 to reproduce the paper's literal heuristic.
    profile_iteration_target: int = 100
    #: Ring of recent thread-start timestamps per bank; arcs farther back
    #: than this appear as distance >= num_cpus and never constrain.
    bank_history: int = 8

    # -- selection heuristics (paper §3.1) ------------------------------------------
    min_predicted_speedup: float = 1.2
    min_iterations_per_entry: float = 3.0
    max_overflow_frequency: float = 0.1
    #: Sync-lock insertion: dependency arc frequency > 80% and arc length
    #: much shorter than the thread.
    sync_lock_arc_frequency: float = 0.8
    sync_lock_arc_ratio: float = 0.5
    #: Multilevel STL: inner-loop entries much rarer than outer iterations.
    multilevel_entry_ratio: float = 0.25

    # -- dynamic compiler cost model ----------------------------------------------
    #: microJIT compile cost per bytecode (it is a fast single-pass
    #: dataflow compiler; paper §4.1).  The paper's benchmarks run
    #: ~100x longer than our scaled data sets, so the per-bytecode cost
    #: is scaled down by the same factor to preserve the Figure 9 shape
    #: (compile time is a small slice of total execution).
    compile_cycles_per_bytecode: int = 30
    recompile_cycles_per_bytecode: int = 50

    # -- VM services ------------------------------------------------------------
    gc_threshold_bytes: int = 1 << 20
    gc_cycles_per_object: int = 12

    # -- call / misc cost model ------------------------------------------------
    call_overhead_cycles: int = 4
    virtual_dispatch_cycles: int = 2    # on top of the meta-word load
    alloc_service_cycles: int = 6
    lock_acquire_cycles: int = 3

    def lines_of(self, size_bytes):
        return size_bytes // self.line_bytes

    def line_of(self, addr):
        return addr >> CACHE_LINE_SHIFT

    def to_dict(self):
        """Flat JSON-safe dict (nested overheads included) — also the
        canonical fingerprint input for the runner's report cache."""
        return asdict(self)

    @staticmethod
    def from_dict(data):
        data = dict(data)
        overheads = data.pop("overheads", None)
        config = HydraConfig(**data)
        if overheads is not None:
            config.overheads = SpeculationOverheads.from_dict(overheads)
        return config


DEFAULT_CONFIG = HydraConfig()
