"""Hydra CMP behavioral simulator."""

from .config import DEFAULT_CONFIG, HydraConfig, SpeculationOverheads
from .machine import CpuContext, Machine, RunResult
from .memory import Memory

__all__ = ["HydraConfig", "DEFAULT_CONFIG", "SpeculationOverheads",
           "Machine", "CpuContext", "RunResult", "Memory"]
