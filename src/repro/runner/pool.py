"""Crash-isolated process pool for pipeline runs.

``concurrent.futures.ProcessPoolExecutor`` marks the whole pool broken
when one worker dies; the suite runner instead wants *per-run* fault
isolation: a worker segfaulting (or being OOM-killed) on one workload
must not poison the other 25.  This pool therefore manages workers
explicitly:

* each worker owns a private task queue, so the parent always knows
  exactly which task a dead worker was running;
* a worker that dies mid-task is replaced and its task retried once
  (``retries=1``) before being reported as ``crashed``;
* a task exceeding ``timeout`` seconds gets its worker terminated and
  is reported as ``timeout`` (no retry — simulated workloads are
  deterministic, it would time out again);
* in-worker Python exceptions travel back as formatted tracebacks with
  status ``error``.

The executed callable must be module-level (picklable) so the pool also
works under the ``spawn`` start method; ``fork`` is preferred when the
platform offers it because workers then inherit the warm interpreter.
"""

import os
import time
import traceback
import multiprocessing
import queue as queue_module
from dataclasses import dataclass

from ..log import get_logger
from ..metrics import get_registry

#: how often the parent polls results / liveness (seconds)
_POLL_INTERVAL = 0.05
#: grace period for worker shutdown before termination (seconds)
_JOIN_TIMEOUT = 2.0

_log = get_logger("runner.pool")


def _pool_metrics():
    """The pool's registry families (resolved per map() call so tests
    that swap the global registry see fresh counters)."""
    registry = get_registry()
    return {
        "tasks": registry.counter(
            "jrpm_pool_tasks", "Pool task outcomes",
            labels=("status",)),
        "retries": registry.counter(
            "jrpm_pool_retries", "Tasks re-queued after a worker crash"),
        "workers": registry.counter(
            "jrpm_pool_workers_spawned", "Worker processes started"),
        "occupancy": registry.gauge(
            "jrpm_pool_busy_workers",
            "Busy pool workers (high-water within the last map)"),
        "task_seconds": registry.histogram(
            "jrpm_pool_task_seconds",
            "In-worker wall seconds per task", labels=("status",)),
    }


@dataclass
class TaskOutcome:
    """What happened to one submitted task."""

    task_id: object
    status: str                 # "ok" | "error" | "crashed" | "timeout"
    value: object = None        # fn's return value when status == "ok"
    error: str = None           # traceback / diagnostic otherwise
    wall_time: float = 0.0      # in-worker seconds (parent-side for crashes)
    attempts: int = 1
    pid: int = None

    @property
    def ok(self):
        return self.status == "ok"


def _worker_main(fn, task_queue, result_queue):
    """Worker loop: pull (task_id, payload), run fn, push the result."""
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, payload = item
        start = time.perf_counter()
        try:
            value = fn(payload)
        except KeyboardInterrupt:
            raise
        except BaseException as exc:
            result_queue.put((task_id, "error", None,
                              time.perf_counter() - start,
                              "%s: %s\n%s" % (type(exc).__name__, exc,
                                              traceback.format_exc()),
                              os.getpid()))
        else:
            result_queue.put((task_id, "ok", value,
                              time.perf_counter() - start, None,
                              os.getpid()))


class _Worker:
    __slots__ = ("process", "task_queue", "task_id", "started_at")

    def __init__(self, ctx, fn, result_queue):
        self.task_queue = ctx.Queue()
        self.process = ctx.Process(
            target=_worker_main,
            args=(fn, self.task_queue, result_queue), daemon=True)
        self.process.start()
        self.task_id = None
        self.started_at = None

    @property
    def idle(self):
        return self.task_id is None

    def assign(self, task_id, payload):
        self.task_id = task_id
        self.started_at = time.perf_counter()
        self.task_queue.put((task_id, payload))

    def release(self):
        self.task_id = None
        self.started_at = None

    def stop(self):
        try:
            self.task_queue.put(None)
        except (OSError, ValueError):
            pass

    def kill(self):
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(_JOIN_TIMEOUT)
            if self.process.is_alive():  # pragma: no cover - stuck kernel
                self.process.kill()
                self.process.join(_JOIN_TIMEOUT)


def _make_context(name=None):
    methods = multiprocessing.get_all_start_methods()
    if name is None:
        name = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(name)


class ProcessPool:
    """Run ``fn(payload)`` for many payloads across worker processes."""

    def __init__(self, fn, jobs, timeout=None, retries=1,
                 start_method=None):
        if jobs < 1:
            raise ValueError("jobs must be >= 1, got %r" % (jobs,))
        self.fn = fn
        self.jobs = jobs
        self.timeout = timeout
        self.retries = retries
        self.start_method = start_method

    def map(self, tasks, on_outcome=None):
        """Execute ``[(task_id, payload), ...]``; returns
        ``{task_id: TaskOutcome}`` (one entry per task, in any order).

        *on_outcome* (optional callable) observes each settled outcome
        as it arrives — used for progress reporting.
        """
        tasks = list(tasks)
        outcomes = {}
        if not tasks:
            return outcomes
        payloads = dict(tasks)
        if len(payloads) != len(tasks):
            raise ValueError("duplicate task ids in pool submission")

        ctx = _make_context(self.start_method)
        result_queue = ctx.Queue()
        pending = [task_id for task_id, _ in tasks]
        attempts = {task_id: 0 for task_id, _ in tasks}
        workers = [_Worker(ctx, self.fn, result_queue)
                   for _ in range(min(self.jobs, len(tasks)))]
        metrics = _pool_metrics()
        metrics["workers"].inc(len(workers))

        def settle(outcome):
            outcomes[outcome.task_id] = outcome
            metrics["tasks"].labels(status=outcome.status).inc()
            metrics["task_seconds"].labels(
                status=outcome.status).record(outcome.wall_time)
            if outcome.status != "ok":
                _log.warning("task %s %s: %s", outcome.task_id,
                             outcome.status, outcome.error)
            if on_outcome is not None:
                on_outcome(outcome)

        try:
            while len(outcomes) < len(tasks):
                # 1. hand work to idle workers
                for worker in workers:
                    if pending and worker.idle and worker.process.is_alive():
                        task_id = pending.pop(0)
                        attempts[task_id] += 1
                        worker.assign(task_id, payloads[task_id])
                busy = sum(1 for worker in workers if not worker.idle)
                occupancy = metrics["occupancy"]
                if busy > occupancy.value:
                    occupancy.set(busy)

                # 2. drain finished results (before liveness checks, so a
                #    worker that finished then exited is not miscounted
                #    as a crash)
                drained = False
                try:
                    while True:
                        (task_id, status, value, wall, error,
                         pid) = result_queue.get(
                            timeout=0.0 if drained else _POLL_INTERVAL)
                        drained = True
                        settle(TaskOutcome(
                            task_id=task_id, status=status, value=value,
                            error=error, wall_time=wall,
                            attempts=attempts[task_id], pid=pid))
                        for worker in workers:
                            if worker.task_id == task_id:
                                worker.release()
                except queue_module.Empty:
                    pass

                # 3. crash / timeout surveillance
                now = time.perf_counter()
                for index, worker in enumerate(workers):
                    if worker.idle:
                        continue
                    task_id = worker.task_id
                    if task_id in outcomes:       # settled in step 2
                        worker.release()
                        continue
                    if not worker.process.is_alive():
                        wall = now - worker.started_at
                        worker.release()
                        if attempts[task_id] <= self.retries:
                            metrics["retries"].inc()
                            _log.warning(
                                "worker pid %s died running task %s "
                                "(exitcode %s); retrying",
                                worker.process.pid, task_id,
                                worker.process.exitcode)
                            pending.append(task_id)   # retry once
                        else:
                            settle(TaskOutcome(
                                task_id=task_id, status="crashed",
                                error="worker process died (exitcode %s)"
                                      % worker.process.exitcode,
                                wall_time=wall,
                                attempts=attempts[task_id],
                                pid=worker.process.pid))
                        workers[index] = _Worker(ctx, self.fn,
                                                 result_queue)
                        metrics["workers"].inc()
                    elif (self.timeout is not None
                            and now - worker.started_at > self.timeout):
                        worker.kill()
                        wall = now - worker.started_at
                        settle(TaskOutcome(
                            task_id=task_id, status="timeout",
                            error="run exceeded %.0fs timeout"
                                  % self.timeout,
                            wall_time=wall, attempts=attempts[task_id],
                            pid=worker.process.pid))
                        worker.release()
                        workers[index] = _Worker(ctx, self.fn,
                                                 result_queue)
                        metrics["workers"].inc()
        finally:
            for worker in workers:
                worker.stop()
            for worker in workers:
                worker.process.join(_JOIN_TIMEOUT)
            for worker in workers:
                worker.kill()
            result_queue.close()
        return outcomes
