"""Persistent content-addressed report cache.

A finished :class:`~repro.core.pipeline.JrpmReport` is a pure function
of

* the MiniJava **source text** of the workload variant,
* the program **arguments**,
* the full **configuration** (:class:`HydraConfig`, :class:`StlOptions`,
  :class:`VmOptions` — every field participates, so any sweep knob
  invalidates), and
* the **code version** of this package (a salt hashed over every
  ``repro/**/*.py`` so stale reports never survive a code change),

so warm re-runs of any bench script can be served from disk in
milliseconds instead of re-simulating for seconds.  Entries are JSON
files named by the SHA-256 of a canonical JSON encoding of the key
material, stored flat under the cache root (default
``benchmarks/.cache/``).

Writes are atomic (tempfile + rename) so concurrent workers or suites
can share one cache directory; corrupt or truncated entries read as
misses and are discarded.
"""

import hashlib
import json
import os
import tempfile

from ..metrics import get_registry
from ..serialize import REPORT_SCHEMA_VERSION

#: bump to invalidate every existing cache entry on *key-layout*
#: changes (2: execution-engine identity — fastpath vs legacy dispatch
#: — became explicit key material; 3: the TLS scheduler — event-driven
#: vs stepwise — joined it for the same reason, see :func:`cache_key`).
#: The *report-payload* layout is keyed separately via
#: :data:`repro.serialize.REPORT_SCHEMA_VERSION`, so a report-schema
#: bump invalidates entries without touching this constant.
CACHE_FORMAT = 3

_CODE_FINGERPRINT = None


def code_fingerprint():
    """SHA-256 over the source text of every module in the ``repro``
    package (memoized per process).  Serves as the cache-key salt: a
    report produced by different code never collides with the current
    version."""
    global _CODE_FINGERPRINT
    if _CODE_FINGERPRINT is None:
        import repro
        root = os.path.dirname(os.path.abspath(repro.__file__))
        digest = hashlib.sha256()
        for dirpath, dirnames, filenames in sorted(os.walk(root)):
            dirnames.sort()
            for filename in sorted(filenames):
                if not filename.endswith(".py"):
                    continue
                path = os.path.join(dirpath, filename)
                digest.update(os.path.relpath(path, root).encode())
                with open(path, "rb") as fh:
                    digest.update(fh.read())
        _CODE_FINGERPRINT = digest.hexdigest()
    return _CODE_FINGERPRINT


def options_fingerprint(config, stl_options, vm_options):
    """Canonical JSON of the three option objects."""
    return json.dumps(
        {"config": config.to_dict(),
         "stl": stl_options.to_dict(),
         "vm": vm_options.to_dict()},
        sort_keys=True, separators=(",", ":"))


def cache_key(source, args, config, stl_options, vm_options, salt=None,
              extra=None):
    """Content-addressed key for one pipeline run.

    *extra* is an optional JSON-safe dict of additional key material
    (e.g. ``{"trace": True}`` for traced runs, whose reports carry
    trace aggregates and must not collide with untraced ones).  ``None``
    keeps keys identical to pre-*extra* versions of this function.

    The executing **engine** (predecoded fastpath vs legacy dispatch,
    ``HydraConfig.fastpath``) participates explicitly: the two engines
    are cycle-identical by construction, but a report produced by one
    must never be served as evidence about the other — A/B comparisons
    (``--no-fastpath``, ``scripts/smoke.sh``) rely on both runs really
    happening.  ``fastpath`` is also part of ``config.to_dict()``, but
    the explicit key survives config serializations that drop unknown
    fields.  The TLS **scheduler** (event-driven vs stepwise,
    ``HydraConfig.scheduler``) participates for the same reason: the
    schedulers are observationally identical by construction, and the
    differential checks (``--scheduler stepwise``,
    ``scripts/smoke.sh``) must never be short-circuited by a cached
    report from the other one.
    """
    key_material = {
        "format": CACHE_FORMAT,
        "schema": REPORT_SCHEMA_VERSION,
        "source": hashlib.sha256(source.encode()).hexdigest(),
        "args": list(args),
        "options": options_fingerprint(config, stl_options, vm_options),
        "engine": ("fastpath" if getattr(config, "fastpath", True)
                   else "legacy"),
        "scheduler": getattr(config, "scheduler", "event"),
        "code": salt if salt is not None else code_fingerprint()}
    if extra:
        key_material["extra"] = extra
    material = json.dumps(key_material, sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()


class ReportCache:
    """On-disk JSON store of report payload dicts, keyed by hex digest."""

    def __init__(self, root):
        self.root = root
        self.hits = 0
        self.misses = 0

    def path_for(self, key):
        return os.path.join(self.root, key + ".json")

    def get(self, key):
        """Payload dict for *key*, or None.  Corrupt entries are
        removed and read as misses."""
        path = self.path_for(key)
        try:
            with open(path) as fh:
                payload = json.load(fh)
        except FileNotFoundError:
            self.misses += 1
            self._count(hit=False)
            return None
        except (OSError, ValueError):
            try:
                os.unlink(path)
            except OSError:
                pass
            self.misses += 1
            self._count(hit=False)
            return None
        self.hits += 1
        self._count(hit=True)
        return payload

    def _count(self, hit):
        """Mirror the hit/miss into the global metrics registry."""
        get_registry().counter(
            "jrpm_report_cache_lookups",
            "Persistent report-cache lookups by outcome",
            labels=("outcome",)).labels(
                outcome="hit" if hit else "miss").inc()

    def put(self, key, payload):
        """Atomically persist *payload* (tempfile + rename, safe for
        concurrent writers)."""
        os.makedirs(self.root, exist_ok=True)
        fd, tmp_path = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(payload, fh, separators=(",", ":"))
            os.replace(tmp_path, self.path_for(key))
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    def clear(self):
        if not os.path.isdir(self.root):
            return 0
        removed = 0
        for filename in os.listdir(self.root):
            if filename.endswith(".json") or filename.endswith(".tmp"):
                try:
                    os.unlink(os.path.join(self.root, filename))
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self):
        if not os.path.isdir(self.root):
            return 0
        return sum(1 for name in os.listdir(self.root)
                   if name.endswith(".json"))


class NullCache(ReportCache):
    """Cache disabled: every lookup misses, nothing is stored."""

    def __init__(self):
        super().__init__(root=None)

    def get(self, key):
        self.misses += 1
        return None

    def put(self, key, payload):
        pass

    def clear(self):
        return 0

    def __len__(self):
        return 0
