"""Structured metrics for suite runs.

Every pipeline run — cached or simulated — produces one
:class:`RunRecord` with its wall time, simulated cycles, speculation
counters and cache disposition.  :class:`SuiteMetrics` aggregates the
records, appends them to a JSONL trace (one JSON object per line, easy
to load into pandas / jq) and renders the human summary the CLI prints
after ``repro suite``.
"""

import json
import os
import time
from dataclasses import asdict, dataclass, field


@dataclass
class RunRecord:
    """Metrics for one pipeline run (one workload variant)."""

    workload: str
    variant: str = "base"
    size: str = "default"
    tag: str = "default"
    status: str = "ok"          # ok | error | crashed | timeout
    cache_hit: bool = False
    wall_time: float = 0.0      # seconds (worker-side for misses)
    attempts: int = 1
    pid: int = None
    # headline simulated measurements (None until status == ok)
    sequential_cycles: float = None
    tls_cycles: float = None
    tls_speedup: float = None
    commits: int = None
    violations: int = None
    overflow_stalls: int = None
    # trace-subsystem aggregates (None unless the run was traced)
    trace_events: int = None
    trace_dropped: int = None
    restarts: int = None
    max_load_lines: int = None
    max_store_lines: int = None
    # adaptive recompilation (None unless the run used repro.adapt)
    adapt_epochs: int = None
    adapt_decisions: int = None
    adapt_converged_epoch: int = None
    adapt_initial_cycles: float = None
    adapt_final_cycles: float = None
    # profile provenance (repro.profdb): "cold" | "warm" | "confirmed"
    profile_provenance: str = "cold"
    error: str = None

    @staticmethod
    def from_report(report, **kwargs):
        """Record the headline numbers of a finished report."""
        breakdown = report.breakdown
        trace = getattr(report, "trace_aggregates", None)
        if trace is not None:
            kwargs.setdefault("trace_events", trace.events_recorded)
            kwargs.setdefault("trace_dropped", trace.events_dropped)
            kwargs.setdefault("restarts", trace.restarts)
            kwargs.setdefault("max_load_lines", trace.max_load_lines)
            kwargs.setdefault("max_store_lines", trace.max_store_lines)
        adaptation = getattr(report, "adaptation", None)
        if adaptation is not None:
            kwargs.setdefault("adapt_epochs", adaptation.epochs_run)
            kwargs.setdefault("adapt_decisions",
                              len(adaptation.applied_decisions()))
            kwargs.setdefault("adapt_converged_epoch",
                              adaptation.converged_epoch)
            kwargs.setdefault("adapt_initial_cycles",
                              adaptation.initial_cycles)
            kwargs.setdefault("adapt_final_cycles",
                              adaptation.final_cycles)
        kwargs.setdefault("profile_provenance",
                          getattr(report, "profile_provenance", "cold"))
        return RunRecord(
            sequential_cycles=report.sequential.cycles,
            tls_cycles=report.tls.cycles,
            tls_speedup=report.tls_speedup,
            commits=breakdown.commits if breakdown else None,
            violations=breakdown.violations if breakdown else None,
            overflow_stalls=(breakdown.overflow_stalls
                             if breakdown else None),
            **kwargs)

    def to_dict(self):
        return asdict(self)


@dataclass
class SuiteMetrics:
    """Aggregate of one suite invocation's run records."""

    records: list = field(default_factory=list)
    started_at: float = field(default_factory=time.perf_counter)
    jobs: int = 1

    def record(self, run_record):
        self.records.append(run_record)
        return run_record

    # -- aggregates ----------------------------------------------------------
    @property
    def hits(self):
        return sum(1 for r in self.records if r.cache_hit)

    @property
    def misses(self):
        return sum(1 for r in self.records if not r.cache_hit)

    @property
    def hit_rate(self):
        total = len(self.records)
        return self.hits / total if total else 0.0

    @property
    def failures(self):
        return [r for r in self.records if r.status != "ok"]

    @property
    def retried(self):
        return [r for r in self.records if r.attempts > 1]

    @property
    def wall_time(self):
        return time.perf_counter() - self.started_at

    @property
    def simulated_cycles(self):
        return sum(r.tls_cycles or 0.0 for r in self.records)

    # -- emission ------------------------------------------------------------
    def write_jsonl(self, path):
        """Append one JSON line per record (plus a suite header line)."""
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        with open(path, "a") as fh:
            fh.write(json.dumps(
                {"event": "suite", "timestamp": time.time(),
                 "jobs": self.jobs, "runs": len(self.records),
                 "cache_hits": self.hits, "cache_misses": self.misses,
                 "wall_time": round(self.wall_time, 6)}) + "\n")
            for record in self.records:
                entry = {"event": "run"}
                entry.update(record.to_dict())
                fh.write(json.dumps(entry) + "\n")
        return path

    def summary(self):
        """Human-readable metrics summary (cache counters included)."""
        lines = []
        out = lines.append
        total = len(self.records)
        out("runner: %d run%s on %d worker%s in %.2fs wall"
            % (total, "" if total == 1 else "s",
               self.jobs, "" if self.jobs == 1 else "s",
               self.wall_time))
        out("cache:  %d hit%s / %d miss%s (%.1f%% hit rate)"
            % (self.hits, "" if self.hits == 1 else "s",
               self.misses, "" if self.misses == 1 else "es",
               self.hit_rate * 100.0))
        busy = sum(r.wall_time for r in self.records)
        out("work:   %.2fs simulated-run time, %.3g simulated cycles"
            % (busy, self.simulated_cycles))
        violations = sum(r.violations or 0 for r in self.records)
        commits = sum(r.commits or 0 for r in self.records)
        overflows = sum(r.overflow_stalls or 0 for r in self.records)
        out("tls:    %d commits, %d violations, %d overflow stalls"
            % (commits, violations, overflows))
        traced = [r for r in self.records if r.trace_events is not None]
        if traced:
            out("trace:  %d run%s traced, %d event%s recorded, "
                "%d dropped, %d restart%s"
                % (len(traced), "" if len(traced) == 1 else "s",
                   sum(r.trace_events for r in traced),
                   "" if sum(r.trace_events for r in traced) == 1
                   else "s",
                   sum(r.trace_dropped or 0 for r in traced),
                   sum(r.restarts or 0 for r in traced),
                   "" if sum(r.restarts or 0 for r in traced) == 1
                   else "s"))
        warm = [r for r in self.records
                if r.profile_provenance in ("warm", "confirmed")]
        if warm:
            warm_hits = sum(1 for r in warm
                            if r.profile_provenance == "warm")
            out("profdb: %d warm start%s, %d confirmed consensus"
                % (warm_hits, "" if warm_hits == 1 else "s",
                   len(warm) - warm_hits))
        adapted = [r for r in self.records if r.adapt_epochs is not None]
        if adapted:
            out("adapt:  %d run%s adaptive, %d epoch%s, %d decision%s "
                "applied"
                % (len(adapted), "" if len(adapted) == 1 else "s",
                   sum(r.adapt_epochs for r in adapted),
                   "" if sum(r.adapt_epochs for r in adapted) == 1
                   else "s",
                   sum(r.adapt_decisions or 0 for r in adapted),
                   "" if sum(r.adapt_decisions or 0 for r in adapted)
                   == 1 else "s"))
        if self.retried:
            out("retry:  %d run%s retried after worker death"
                % (len(self.retried),
                   "" if len(self.retried) == 1 else "s"))
        for failure in self.failures:
            out("FAILED: %s/%s [%s] %s: %s"
                % (failure.workload, failure.variant, failure.size,
                   failure.status,
                   (failure.error or "").splitlines()[0]
                   if failure.error else ""))
        return "\n".join(lines)
