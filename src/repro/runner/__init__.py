"""Parallel suite runner with a persistent report cache.

Public surface:

* :class:`SuiteRunner` / :class:`RunRequest` — fan pipeline runs
  across worker processes, memoized on disk,
* :class:`ReportCache` / :func:`cache_key` — the content-addressed
  store under ``benchmarks/.cache/``,
* :class:`SuiteMetrics` / :class:`RunRecord` — structured per-run
  metrics (JSONL + human summary),
* :class:`ProcessPool` — the crash-isolated executor underneath.
"""

from .cache import (NullCache, ReportCache, cache_key, code_fingerprint,
                    options_fingerprint)
from .metrics import RunRecord, SuiteMetrics
from .pool import ProcessPool, TaskOutcome
from .suite import (RunRequest, SuiteRunError, SuiteRunner,
                    default_cache_dir, execute_request)

__all__ = ["SuiteRunner", "RunRequest", "SuiteRunError",
           "execute_request", "default_cache_dir",
           "ReportCache", "NullCache", "cache_key", "code_fingerprint",
           "options_fingerprint",
           "SuiteMetrics", "RunRecord",
           "ProcessPool", "TaskOutcome"]
