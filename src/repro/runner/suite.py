"""Parallel suite runner: fan pipeline runs across processes + cache.

The paper's evaluation is 26 full five-step pipeline runs (plus
ablation variants); they are embarrassingly parallel and perfectly
memoizable.  :class:`SuiteRunner` owns both levers:

* a :class:`~repro.runner.pool.ProcessPool` spreads cache misses over
  ``jobs`` worker processes with per-run timeout, crash isolation and
  retry-once-on-worker-death;
* a :class:`~repro.runner.cache.ReportCache` serves warm re-runs from
  ``benchmarks/.cache/`` keyed by ``(source, args, config fingerprint,
  code version)``.

Reports travel between processes and to disk via the lossless
``JrpmReport.to_dict()/from_dict()`` round-trip, so a cached or
worker-produced report is indistinguishable from an in-process one.
Results are returned in request order — completion order never leaks
into output, which keeps ``--jobs N`` byte-identical to ``--jobs 1``.
"""

import os
import time
from dataclasses import dataclass, field

from ..core.pipeline import Jrpm, JrpmReport, VmOptions
from ..hydra.config import HydraConfig
from ..jit.stl import StlOptions
from ..minijava import compile_source
from .cache import NullCache, ReportCache, cache_key, code_fingerprint
from .metrics import RunRecord, SuiteMetrics
from .pool import ProcessPool


class SuiteRunError(RuntimeError):
    """One or more pipeline runs failed; ``failures`` holds the
    per-run (request, outcome-status, error-text) details."""

    def __init__(self, failures):
        self.failures = failures
        lines = ["%d pipeline run(s) failed:" % len(failures)]
        for request, status, error in failures:
            first = (error or "").strip().splitlines()
            lines.append("  %s [%s]: %s"
                         % (request.label, status,
                            first[-1] if first else "no diagnostic"))
        super().__init__("\n".join(lines))


@dataclass
class RunRequest:
    """One pipeline run: a workload variant plus its configuration."""

    workload: str
    variant: str = "base"             # "base" | "manual"
    size: str = "default"
    args: tuple = ()
    config: HydraConfig = None
    stl_options: StlOptions = None
    vm_options: VmOptions = None
    name: str = None                  # report name (defaults: workload)
    source: str = None                # explicit source (skips registry)
    verify: bool = True               # assert sequential == TLS output
    tag: str = "default"              # ablation label for metrics/keys
    #: run with the repro.trace event collector attached; the report's
    #: trace aggregates flow into the JSONL metrics (and the cache key
    #: diverges from the untraced run so reports never mix)
    trace: bool = False
    #: run under the adaptive recompilation controller (repro.adapt)
    #: instead of the one-shot pipeline; the adaptation log rides the
    #: cached report, and the cache key diverges from one-shot runs
    adapt: bool = False
    adapt_epochs: int = 4
    adapt_policy: str = "threshold"
    #: run the static dependence analyzer first (repro.analysis):
    #: statically-hopeless STL candidates are pruned before profiling
    #: and the report carries an AnalysisReport; the cache key diverges
    #: from unanalyzed runs because the candidate set may differ
    analysis: bool = False
    #: persistent profile DB path (repro.profdb): when set, cold runs
    #: record their profiles and confident consensus entries warm-start
    #: later runs.  DB-backed requests bypass the report cache — their
    #: result depends on mutable cross-run state.
    profile_db: str = None
    warm_start: str = "auto"
    #: test hook — path of a marker file; the first worker to execute
    #: this request creates the marker and dies (exercises retry logic)
    crash_marker: str = None

    def __post_init__(self):
        self.args = tuple(self.args)
        if self.config is None:
            self.config = HydraConfig()
        if self.stl_options is None:
            self.stl_options = StlOptions()
        if self.vm_options is None:
            self.vm_options = VmOptions()
        if self.name is None:
            self.name = self.workload

    @classmethod
    def from_options(cls, workload, options, size="default",
                     variant="base", name=None, source=None,
                     tag="default"):
        """Build a request from one :class:`repro.service.RunOptions`
        — the canonical spelling; the per-field constructor remains for
        cache-key-compatible callers."""
        return cls(workload=workload, variant=variant, size=size,
                   args=options.args, config=options.hydra_config(),
                   stl_options=options.stl_options(),
                   vm_options=options.vm_options(), name=name,
                   source=source, verify=options.verify,
                   tag=tag, trace=options.trace, adapt=options.adapt,
                   adapt_epochs=options.epochs,
                   adapt_policy=options.policy,
                   analysis=options.analysis,
                   profile_db=options.profile_db,
                   warm_start=options.warm_start)

    @property
    def label(self):
        return "%s/%s/%s/%s" % (self.workload, self.variant, self.size,
                                self.tag)

    def resolve_source(self):
        """The MiniJava source text for this request (registry lookup
        unless an explicit ``source`` was supplied)."""
        if self.source is None:
            from ..workloads import lookup
            workload = lookup(self.workload)
            if self.variant == "manual":
                self.source = workload.manual_source(self.size)
                if self.source is None:
                    raise ValueError("%s has no manual variant"
                                     % workload.name)
            else:
                self.source = workload.source(self.size)
        return self.source

    def cache_key(self, salt=None):
        extra = {}
        if self.trace:
            extra["trace"] = True
        if self.adapt:
            extra["adapt"] = True
            extra["adapt_epochs"] = self.adapt_epochs
            extra["adapt_policy"] = self.adapt_policy
        if self.analysis:
            extra["analysis"] = True
        return cache_key(self.resolve_source(), self.args, self.config,
                         self.stl_options, self.vm_options, salt=salt,
                         extra=extra or None)


def execute_request(request):
    """Run the full pipeline for one request (worker entry point).

    Returns ``{"report": <report dict>, "wall_time": seconds}``; raises
    on verification failure so the pool reports status ``error``.
    """
    if request.crash_marker is not None:
        if not os.path.exists(request.crash_marker):
            with open(request.crash_marker, "w") as fh:
                fh.write(str(os.getpid()))
            os._exit(17)     # simulate a worker death mid-run
    start = time.perf_counter()
    source = request.resolve_source()
    jrpm = Jrpm(config=request.config, stl_options=request.stl_options,
                vm_options=request.vm_options, trace=request.trace,
                analysis=request.analysis, profdb=request.profile_db,
                warm_start=request.warm_start)
    if request.adapt:
        report = jrpm.run_adaptive(
            compile_source(source), name=request.name,
            args=request.args, policy=request.adapt_policy,
            epochs=request.adapt_epochs)
    else:
        report = jrpm.run(compile_source(source), name=request.name,
                          args=request.args)
    if request.verify and not report.outputs_match():
        raise AssertionError(
            "%s: speculative output diverged from sequential"
            % request.label)
    return {"report": report.to_dict(),
            "wall_time": time.perf_counter() - start}


def default_cache_dir():
    """``$JRPM_CACHE_DIR`` or ``benchmarks/.cache`` next to the package
    (falls back to ``./benchmarks/.cache`` outside a checkout)."""
    env = os.environ.get("JRPM_CACHE_DIR")
    if env:
        return env
    package_dir = os.path.dirname(os.path.dirname(
        os.path.abspath(__file__)))              # .../src/repro
    repo_root = os.path.dirname(os.path.dirname(package_dir))
    candidate = os.path.join(repo_root, "benchmarks")
    if os.path.isdir(candidate):
        return os.path.join(candidate, ".cache")
    return os.path.join(os.getcwd(), "benchmarks", ".cache")


class SuiteRunner:
    """Executes batches of :class:`RunRequest` with caching + workers."""

    def __init__(self, jobs=1, cache_dir=None, use_cache=True,
                 timeout=600.0, metrics=None, start_method=None):
        self.jobs = max(1, int(jobs))
        if not use_cache:
            self.cache = NullCache()
        else:
            self.cache = ReportCache(cache_dir or default_cache_dir())
        self.timeout = timeout
        self.metrics = metrics if metrics is not None else SuiteMetrics()
        self.metrics.jobs = self.jobs
        self.start_method = start_method
        self._salt = None

    # -- cache plumbing --------------------------------------------------------
    def _key_of(self, request):
        if self._salt is None:
            self._salt = code_fingerprint()
        return request.cache_key(salt=self._salt)

    def _record(self, request, **kwargs):
        base = {"workload": request.workload, "variant": request.variant,
                "size": request.size, "tag": request.tag}
        base.update(kwargs)
        return base

    # -- execution -------------------------------------------------------------
    def run(self, requests, progress=None):
        """Run every request (cache first, then pool); returns reports
        in request order.  Raises :class:`SuiteRunError` after *all*
        outcomes settle if any run failed."""
        requests = list(requests)
        reports = [None] * len(requests)
        failures = []

        def emit(message):
            if progress is not None:
                progress(message)

        # 1. serve warm entries from the persistent cache
        misses = []
        for index, request in enumerate(requests):
            # profile-DB-backed requests always execute: their result
            # depends on the DB's mutable cross-run state (and the warm
            # path itself is the thing being exercised)
            payload = None if request.profile_db \
                else self.cache.get(self._key_of(request))
            if payload is not None:
                report = JrpmReport.from_dict(payload["report"])
                reports[index] = report
                self.metrics.record(RunRecord.from_report(
                    report, status="ok", cache_hit=True,
                    wall_time=0.0,
                    **self._record(request)))
                emit("cached  %s" % request.label)
            else:
                misses.append(index)

        # 2. simulate the misses (workers, or inline at --jobs 1)
        if misses:
            outcomes = self._execute(
                [(index, requests[index]) for index in misses], emit)
            for index in misses:
                request = requests[index]
                outcome = outcomes[index]
                if outcome.ok:
                    report_dict = outcome.value["report"]
                    if not request.profile_db:
                        self.cache.put(self._key_of(request), {
                            "workload": request.workload,
                            "variant": request.variant,
                            "size": request.size,
                            "tag": request.tag,
                            "wall_time": outcome.value["wall_time"],
                            "report": report_dict,
                        })
                    report = JrpmReport.from_dict(report_dict)
                    reports[index] = report
                    self.metrics.record(RunRecord.from_report(
                        report, status="ok", cache_hit=False,
                        wall_time=outcome.wall_time,
                        attempts=outcome.attempts, pid=outcome.pid,
                        **self._record(request)))
                else:
                    failures.append((request, outcome.status,
                                     outcome.error))
                    self.metrics.record(RunRecord(
                        status=outcome.status, cache_hit=False,
                        wall_time=outcome.wall_time,
                        attempts=outcome.attempts, pid=outcome.pid,
                        error=outcome.error,
                        **self._record(request)))

        if failures:
            raise SuiteRunError(failures)
        return reports

    def _execute(self, indexed_requests, emit):
        for _, request in indexed_requests:
            request.resolve_source()     # registry work stays in-parent
        if self.jobs == 1:
            outcomes = {}
            for index, request in indexed_requests:
                outcomes[index] = self._run_inline(index, request)
                emit("ran     %s" % request.label)
            return outcomes
        pool = ProcessPool(execute_request, jobs=self.jobs,
                           timeout=self.timeout,
                           start_method=self.start_method)
        by_index = dict(indexed_requests)
        return pool.map(
            indexed_requests,
            on_outcome=lambda outcome: emit(
                "ran     %s" % by_index[outcome.task_id].label))

    @staticmethod
    def _run_inline(index, request):
        from .pool import TaskOutcome
        start = time.perf_counter()
        try:
            value = execute_request(request)
        except BaseException as exc:
            import traceback
            return TaskOutcome(
                task_id=index, status="error",
                error="%s: %s\n%s" % (type(exc).__name__, exc,
                                      traceback.format_exc()),
                wall_time=time.perf_counter() - start, pid=os.getpid())
        return TaskOutcome(task_id=index, status="ok", value=value,
                           wall_time=time.perf_counter() - start,
                           pid=os.getpid())

    # -- conveniences ------------------------------------------------------------
    def run_suite(self, size="default", workloads=None, config=None,
                  stl_options=None, vm_options=None, args=None,
                  progress=None, options=None, trace=None, adapt=None,
                  adapt_epochs=None, adapt_policy=None):
        """Run the (sub)suite; returns ``{workload name: JrpmReport}``
        in registry order.

        ``options`` (a :class:`repro.service.RunOptions`) is the
        canonical way to shape the runs; the scattered per-call kwargs
        (``trace``/``adapt``/``adapt_epochs``/``adapt_policy``) remain
        as a deprecated shim folded in by
        :func:`repro.service.options.coerce_run_options`.  Explicit
        ``config``/``stl_options``/``vm_options`` objects still win
        over the ``options`` projections.
        """
        from ..service.options import coerce_run_options
        from ..workloads import all_workloads
        options = coerce_run_options(
            options, trace=trace, adapt=adapt, args=args,
            adapt_epochs=adapt_epochs, adapt_policy=adapt_policy)
        selected = workloads or [w.name for w in all_workloads()]
        requests = []
        for name in selected:
            request = RunRequest.from_options(name, options, size=size)
            if config is not None:
                request.config = config
            if stl_options is not None:
                request.stl_options = stl_options
            if vm_options is not None:
                request.vm_options = vm_options
            requests.append(request)
        reports = self.run(requests, progress=progress)
        return {request.workload: report
                for request, report in zip(requests, reports)}
