"""``repro.trace`` — the speculation observability layer.

The paper's TEST profiler exists because TLS behaviour (violation arcs,
restart storms, buffer overflows, handler overheads) is invisible
without instrumentation.  This package makes the *simulated* hardware
observable the same way: a low-overhead ring-buffered event stream is
recorded while the Hydra machine and the TLS runtime execute, then
exported as

* Chrome trace-event JSON (one track per CPU — load it in Perfetto or
  ``chrome://tracing``),
* a per-loop text timeline,
* aggregate counters (:class:`TraceAggregates`) that ride along inside
  :class:`~repro.core.pipeline.JrpmReport` round-trips and the suite
  runner's JSONL metrics.

Tracing defaults **off** (``machine.trace is None`` — the same
near-zero-cost guard pattern the TEST profiler hooks use); see
``benchmarks/bench_trace_overhead.py`` for the enforced overhead
budget and ``docs/observability.md`` for the event reference.
"""

from .aggregate import TraceAggregates
from .collector import TraceCollector, TraceOptions
from .events import (EV_ADAPT, EV_ANALYSIS, EV_BANK, EV_CACHE, EV_GC,
                     EV_HANDLER, EV_LOOP, EV_OVERFLOW, EV_RESTART,
                     EV_STL, EV_THREAD, EV_VIOLATION, EVENT_KINDS,
                     TraceEvent)
from .export import (chrome_trace, format_timeline, validate_chrome_trace,
                     write_chrome_trace)
from .ring import TraceRing

__all__ = [
    "TraceAggregates", "TraceCollector", "TraceOptions", "TraceRing",
    "TraceEvent", "EVENT_KINDS", "EV_THREAD", "EV_VIOLATION",
    "EV_RESTART", "EV_OVERFLOW", "EV_HANDLER", "EV_STL", "EV_CACHE",
    "EV_LOOP", "EV_BANK", "EV_GC", "EV_ADAPT", "EV_ANALYSIS",
    "chrome_trace", "write_chrome_trace", "format_timeline",
    "validate_chrome_trace",
]
