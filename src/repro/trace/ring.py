"""A fixed-capacity ring buffer for trace events.

The simulator can emit millions of events on a long run; recording must
never grow without bound or slow down as the run progresses.  The ring
preallocates ``capacity`` slots and overwrites the oldest event once
full, counting what it dropped — exactly how hardware trace buffers
(and the paper's repurposed store-buffer timestamp tables) behave.
"""


class TraceRing:
    """Append-only ring of :class:`~repro.trace.events.TraceEvent`."""

    __slots__ = ("capacity", "_slots", "_next", "_count", "dropped")

    def __init__(self, capacity=65536):
        if capacity <= 0:
            raise ValueError("ring capacity must be positive")
        self.capacity = capacity
        self._slots = [None] * capacity
        self._next = 0          # next write index
        self._count = 0         # live events (<= capacity)
        self.dropped = 0        # events overwritten after wraparound

    def append(self, event):
        index = self._next
        if self._count == self.capacity:
            self.dropped += 1
        else:
            self._count += 1
        self._slots[index] = event
        self._next = (index + 1) % self.capacity

    def __len__(self):
        return self._count

    @property
    def total_seen(self):
        """Events ever appended (live + dropped)."""
        return self._count + self.dropped

    def events(self):
        """The live events, oldest first (handles wraparound)."""
        if self._count < self.capacity:
            return self._slots[:self._count]
        head = self._next
        return self._slots[head:] + self._slots[:head]

    def __iter__(self):
        return iter(self.events())

    def clear(self):
        self._slots = [None] * self.capacity
        self._next = 0
        self._count = 0
        self.dropped = 0
