"""The trace collector — the object the simulator emits events into.

A :class:`TraceCollector` is attached to a
:class:`~repro.hydra.machine.Machine` as ``machine.trace`` (default
``None``).  Every instrumentation site in the TLS runtime, the memory
hierarchy and the TEST profiler is guarded by ``trace is not None`` —
the exact pattern the existing profiler hooks use — so the disabled
cost is one attribute load + identity check on *control* events only
(commits, restarts, handlers), never on the per-instruction hot path.

Emission itself is one namedtuple construction + one ring append plus
cheap aggregate counter bumps, so enabled tracing stays inside the
budget enforced by ``benchmarks/bench_trace_overhead.py``.

Event *order* is part of the simulator's observational contract:
every emission site fires at a simulated timestamp determined by the
total order of scheduler events, which both TLS schedulers reproduce
identically — a trace recorded under ``--scheduler event`` is
byte-for-byte the trace recorded under ``--scheduler stepwise``
(enforced by ``tests/test_scheduler_differential.py``).
"""

from dataclasses import dataclass

from .aggregate import TraceAggregates
from .events import (EV_ADAPT, EV_ANALYSIS, EV_BANK, EV_CACHE, EV_GC,
                     EV_HANDLER,
                     EV_LOOP, EV_OVERFLOW, EV_PROFDB, EV_RESTART,
                     EV_STL, EV_THREAD, EV_VIOLATION, TraceEvent)
from .ring import TraceRing


def site_of(raw_site):
    """``(method, line)`` from a machine ``current_site`` — the closest
    thing a JIT'd region has to a PC (stable across compiles)."""
    if raw_site is None:
        return None
    frame_name, instr = raw_site
    return (frame_name, getattr(instr, "line", None))


@dataclass
class TraceOptions:
    """Knobs for one tracing session."""

    #: ring capacity in events; the oldest events are overwritten once
    #: full (the ``dropped`` counter says how many)
    capacity: int = 65536
    #: emit an ``EV_CACHE`` counter snapshot at most every N commits
    #: (1 = every commit; 0 disables cache counter tracks)
    cache_snapshot_every: int = 16


class TraceCollector:
    """Ring buffer + aggregates for one traced pipeline run."""

    __slots__ = ("options", "ring", "aggregates", "phase",
                 "_commits_since_snapshot", "request_id")

    def __init__(self, options=None):
        self.options = options or TraceOptions()
        self.ring = TraceRing(self.options.capacity)
        self.aggregates = TraceAggregates(
            enabled=True, capacity=self.options.capacity)
        self.phase = "tls"          # "profile" during the TEST run
        self._commits_since_snapshot = 0
        #: daemon request correlation (PR-10): set by the service layer
        #: before the run; exported traces then stamp every event with
        #: the id and add an enclosing request span.  None for local
        #: runs — the export is byte-identical to pre-PR-10 output.
        self.request_id = None

    # -- plumbing -----------------------------------------------------------
    def set_phase(self, phase):
        self.phase = phase

    def _emit(self, kind, ts, cpu, dur, loop, data):
        aggregates = self.aggregates
        aggregates.events_recorded += 1
        counts = aggregates.counts
        counts[kind] = counts.get(kind, 0) + 1
        self.ring.append(TraceEvent(kind, ts, cpu, dur, loop, data))

    def events(self):
        return self.ring.events()

    def finish(self, hierarchy=None):
        """Seal the aggregates (dropped count, final cache counters)."""
        self.aggregates.events_dropped = self.ring.dropped
        if hierarchy is not None:
            self.aggregates.cache = hierarchy.counters()
        return self.aggregates

    # -- TLS runtime events ---------------------------------------------------
    def thread_span(self, start_ts, end_ts, cpu, loop, iteration,
                    outcome):
        """One whole speculative thread attempt, start to fate."""
        self._emit(EV_THREAD, start_ts, cpu, max(0.0, end_ts - start_ts),
                   loop, (iteration, outcome))
        stats = self.aggregates.loop(loop)
        if outcome == "commit":
            stats.commits += 1
        elif outcome == "restart":
            stats.restarts += 1
        elif outcome == "squash":
            stats.squashes += 1

    def violation(self, ts, cpu, loop, store_iteration, victim_iteration,
                  addr, source_site, sink_site):
        """A RAW violation arc: *source* stored what *sink* had already
        speculatively read."""
        self._emit(EV_VIOLATION, ts, cpu, 0.0, loop,
                   (store_iteration, victim_iteration, addr,
                    site_of(source_site), site_of(sink_site)))
        self.aggregates.loop(loop).violations += 1

    def restart(self, ts, cpu, loop, iteration, cause, primary):
        self._emit(EV_RESTART, ts, cpu, 0.0, loop,
                   (iteration, cause, primary))

    def overflow(self, ts, cpu, loop, iteration, buffer, lines):
        self._emit(EV_OVERFLOW, ts, cpu, 0.0, loop,
                   (iteration, buffer, lines))
        self.aggregates.loop(loop).overflows += 1

    def buffers(self, loop, load_lines, store_lines):
        """Track per-loop speculative-buffer high-water marks (no ring
        event: the load/store line counts already ride on EV_THREAD
        commit spans via :meth:`thread_span` callers)."""
        stats = self.aggregates.loop(loop)
        if load_lines > stats.max_load_lines:
            stats.max_load_lines = load_lines
        if store_lines > stats.max_store_lines:
            stats.max_store_lines = store_lines

    def handler(self, ts, cpu, loop, name, cycles):
        """A Table 1 software handler execution (span of ``cycles``)."""
        self._emit(EV_HANDLER, ts, cpu, cycles, loop, (name,))
        totals = self.aggregates.handler_cycles
        totals[name] = totals.get(name, 0.0) + cycles
        if loop is not None:
            self.aggregates.loop(loop).handler_cycles += cycles

    def stl(self, ts, cpu, loop, edge, entries=0):
        self._emit(EV_STL, ts, cpu, 0.0, loop, (edge, entries))

    def cache_snapshot(self, ts, hierarchy, force=False):
        """Cumulative L1/L2 hit counters as a Chrome counter track.
        Rate-limited to every ``cache_snapshot_every`` commits."""
        every = self.options.cache_snapshot_every
        if every <= 0:
            return
        if not force:
            self._commits_since_snapshot += 1
            if self._commits_since_snapshot < every:
                return
        self._commits_since_snapshot = 0
        counters = hierarchy.counters()
        self._emit(EV_CACHE, ts, None, 0.0, None,
                   (counters["l1_hits"], counters["l1_misses"],
                    counters["l2_hits"], counters["l2_misses"]))

    # -- TEST profiler events -------------------------------------------------
    def profile_loop(self, ts, loop, edge):
        self._emit(EV_LOOP, ts, None, 0.0, loop, (edge,))

    def bank(self, ts, loop, what):
        self._emit(EV_BANK, ts, None, 0.0, loop, (what,))

    # -- VM events -------------------------------------------------------------
    def gc(self, ts, cpu, cycles):
        self._emit(EV_GC, ts, cpu, cycles, None, ())

    # -- adaptive recompilation events ----------------------------------------
    def adapt(self, ts, loop, action, epoch, detail=""):
        """An applied adaptive recompilation decision (repro.adapt):
        ``action`` in ``decommit | lock_escalate | promote``."""
        self._emit(EV_ADAPT, ts, None, 0.0, loop, (action, epoch, detail))

    # -- static analysis events ------------------------------------------------
    def analysis(self, ts, loop, method, ordinal, classification,
                 pruned):
        """The static dependence analyzer's verdict for one prospective
        loop (repro.analysis): ``classification`` in
        ``absent | may | must``; ``pruned`` marks candidates removed
        before profiling."""
        self._emit(EV_ANALYSIS, ts, None, 0.0, loop,
                   (method, ordinal, classification, pruned))

    # -- profile-DB events -----------------------------------------------------
    def profdb(self, ts, outcome, name):
        """A persistent profile DB interaction (repro.profdb):
        ``outcome`` is the run's profile provenance — ``cold`` /
        ``confirmed`` for a recorded live profile, ``warm`` for a run
        whose TEST statistics were replayed from the DB."""
        self._emit(EV_PROFDB, ts, None, 0.0, None, (outcome, name))
