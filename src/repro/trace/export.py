"""Trace exporters: Chrome trace-event JSON and text timelines.

The JSON exporter emits the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
(the ``traceEvents`` array form) that ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ load directly:

* one **thread track per simulated CPU** (pid 1 = "Hydra TLS"),
  carrying complete (``X``) spans for thread attempts and handlers and
  instant (``i``) marks for violations, restarts and overflows;
* a **TEST profile track** (pid 0) with loop activations and
  comparator-bank pressure from the sequential annotated run;
* **counter tracks** (``C``) for the cumulative L1/L2 hit counters.

Cycle timestamps map 1 cycle → 1 µs, so Perfetto's "ms" ruler reads as
kilocycles.
"""

import json

from .events import (EV_ADAPT, EV_ANALYSIS, EV_BANK, EV_CACHE, EV_GC,
                     EV_HANDLER, EV_LOOP, EV_OVERFLOW, EV_PROFDB,
                     EV_RESTART, EV_STL, EV_THREAD, EV_VIOLATION)

PID_PROFILE = 0
PID_TLS = 1
#: daemon request-correlation track (PR-10): present only when the
#: collector carries a ``request_id`` — local exports are byte-
#: identical to pre-PR-10 output (the scheduler-differential contract).
PID_REQUEST = 2

_OUTCOME_NAMES = {
    "commit": "iter %d",
    "restart": "iter %d (restarted)",
    "squash": "iter %d (squashed)",
    "exit": "iter %d (exit)",
}


def _site_text(site):
    if site is None:
        return "?"
    method, line = site
    return "%s:%s" % (method, "?" if line is None else line)


def chrome_trace(collector, name="jrpm"):
    """Render a collector's event ring as a Chrome-trace JSON dict."""
    events = []
    cpus = set()
    add = events.append

    for event in collector.events():
        kind = event.kind
        loop = event.loop
        if kind == EV_THREAD:
            iteration, outcome = event.data
            add({"name": _OUTCOME_NAMES[outcome] % iteration,
                 "cat": "thread,%s" % outcome, "ph": "X",
                 "ts": event.ts, "dur": max(event.dur, 0.001),
                 "pid": PID_TLS, "tid": event.cpu,
                 "args": {"loop": loop, "iteration": iteration,
                          "outcome": outcome}})
            cpus.add(event.cpu)
        elif kind == EV_HANDLER:
            add({"name": event.data[0], "cat": "handler", "ph": "X",
                 "ts": event.ts, "dur": max(event.dur, 0.001),
                 "pid": PID_TLS, "tid": event.cpu,
                 "args": {"loop": loop}})
            cpus.add(event.cpu)
        elif kind == EV_VIOLATION:
            (store_iter, victim_iter, addr, source_site,
             sink_site) = event.data
            add({"name": "RAW violation", "cat": "violation", "ph": "i",
                 "ts": event.ts, "pid": PID_TLS, "tid": event.cpu,
                 "s": "p",
                 "args": {"loop": loop, "addr": addr,
                          "store_iteration": store_iter,
                          "victim_iteration": victim_iter,
                          "source": _site_text(source_site),
                          "sink": _site_text(sink_site)}})
            cpus.add(event.cpu)
        elif kind == EV_RESTART:
            iteration, cause, primary = event.data
            add({"name": "restart (%s)" % cause, "cat": "restart",
                 "ph": "i", "ts": event.ts, "pid": PID_TLS,
                 "tid": event.cpu, "s": "t",
                 "args": {"loop": loop, "iteration": iteration,
                          "primary": primary}})
            cpus.add(event.cpu)
        elif kind == EV_OVERFLOW:
            iteration, buffer, lines = event.data
            add({"name": "%s-buffer overflow" % buffer,
                 "cat": "overflow", "ph": "i", "ts": event.ts,
                 "pid": PID_TLS, "tid": event.cpu, "s": "t",
                 "args": {"loop": loop, "iteration": iteration,
                          "lines": lines}})
            cpus.add(event.cpu)
        elif kind == EV_STL:
            edge, entries = event.data
            add({"name": "STL %s %s" % (loop, edge), "cat": "stl",
                 "ph": "i", "ts": event.ts, "pid": PID_TLS,
                 "tid": event.cpu, "s": "p",
                 "args": {"loop": loop, "entries": entries}})
            cpus.add(event.cpu)
        elif kind == EV_CACHE:
            l1_hits, l1_misses, l2_hits, l2_misses = event.data
            add({"name": "L1", "cat": "cache", "ph": "C",
                 "ts": event.ts, "pid": PID_TLS,
                 "args": {"hits": l1_hits, "misses": l1_misses}})
            add({"name": "L2", "cat": "cache", "ph": "C",
                 "ts": event.ts, "pid": PID_TLS,
                 "args": {"hits": l2_hits, "misses": l2_misses}})
        elif kind == EV_GC:
            add({"name": "GC", "cat": "gc", "ph": "X", "ts": event.ts,
                 "dur": max(event.dur, 0.001), "pid": PID_TLS,
                 "tid": event.cpu if event.cpu is not None else 0,
                 "args": {}})
        elif kind == EV_LOOP:
            add({"name": "loop %s %s" % (loop, event.data[0]),
                 "cat": "profile", "ph": "i", "ts": event.ts,
                 "pid": PID_PROFILE, "tid": 0, "s": "t",
                 "args": {"loop": loop}})
        elif kind == EV_BANK:
            add({"name": "bank %s" % event.data[0], "cat": "profile",
                 "ph": "i", "ts": event.ts, "pid": PID_PROFILE,
                 "tid": 0, "s": "t", "args": {"loop": loop}})
        elif kind == EV_ADAPT:
            action, epoch, detail = event.data
            add({"name": "adapt: %s loop %s" % (action, loop),
                 "cat": "adapt", "ph": "i", "ts": event.ts,
                 "pid": PID_TLS, "tid": 0, "s": "g",
                 "args": {"loop": loop, "action": action,
                          "epoch": epoch, "detail": detail}})
        elif kind == EV_ANALYSIS:
            method, ordinal, classification, pruned = event.data
            add({"name": "analysis: %s#%s %s" % (method, ordinal,
                                                 classification),
                 "cat": "analysis", "ph": "i", "ts": event.ts,
                 "pid": PID_PROFILE, "tid": 0, "s": "t",
                 "args": {"loop": loop, "method": method,
                          "ordinal": ordinal,
                          "classification": classification,
                          "pruned": pruned}})
        elif kind == EV_PROFDB:
            outcome, name = event.data
            add({"name": "profdb: %s %s" % (outcome, name),
                 "cat": "profdb", "ph": "i", "ts": event.ts,
                 "pid": PID_PROFILE, "tid": 0, "s": "g",
                 "args": {"outcome": outcome, "workload": name}})

    metadata = [
        {"ph": "M", "pid": PID_PROFILE, "tid": 0, "name": "process_name",
         "args": {"name": "TEST profile (sequential annotated run)"}},
        {"ph": "M", "pid": PID_PROFILE, "tid": 0, "name": "thread_name",
         "args": {"name": "comparator banks"}},
        {"ph": "M", "pid": PID_TLS, "tid": 0, "name": "process_name",
         "args": {"name": "Hydra TLS execution"}},
    ]
    for cpu in sorted(c for c in cpus if c is not None):
        metadata.append({"ph": "M", "pid": PID_TLS, "tid": cpu,
                         "name": "thread_name",
                         "args": {"name": "CPU %d" % cpu}})

    request_id = getattr(collector, "request_id", None)
    if request_id is not None and events:
        # Correlate: every pipeline/TLS event carries the id, and one
        # span on its own track visually encloses the whole request in
        # Perfetto (sorted above the TLS/profile tracks).
        start = min(event["ts"] for event in events)
        end = max(event["ts"] + event.get("dur", 0.0)
                  for event in events)
        for event in events:
            if event["ph"] != "C":     # counter args must stay numeric
                event.setdefault("args", {})["request_id"] = request_id
        events.insert(0, {
            "name": "request %s" % request_id, "cat": "request",
            "ph": "X", "ts": start, "dur": max(end - start, 0.001),
            "pid": PID_REQUEST, "tid": 0,
            "args": {"request_id": request_id}})
        metadata.append({"ph": "M", "pid": PID_REQUEST, "tid": 0,
                         "name": "process_name",
                         "args": {"name": "daemon request"}})
        metadata.append({"ph": "M", "pid": PID_REQUEST, "tid": 0,
                         "name": "process_sort_index",
                         "args": {"sort_index": -1}})

    aggregates = collector.finish()
    payload = {
        "traceEvents": metadata + events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tool": "repro.trace",
            "name": name,
            "clock": "1 cycle = 1us",
            "events_recorded": aggregates.events_recorded,
            "events_dropped": aggregates.events_dropped,
        },
    }
    if request_id is not None:
        payload["otherData"]["request_id"] = request_id
    return payload


def write_chrome_trace(collector, path, name="jrpm"):
    """Serialize :func:`chrome_trace` to *path*; returns the path."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(collector, name=name), fh)
    return path


# ---------------------------------------------------------------------------
# schema validation (used by tests, scripts/check_trace_schema.py, CI)
# ---------------------------------------------------------------------------

_REQUIRED_BY_PHASE = {
    "X": ("name", "ts", "dur", "pid", "tid"),
    "i": ("name", "ts", "pid", "tid", "s"),
    "C": ("name", "ts", "pid", "args"),
    "M": ("name", "pid", "args"),
}


def validate_chrome_trace(data):
    """Check Chrome trace-event JSON shape; returns a list of problem
    strings (empty means the trace is loadable)."""
    problems = []
    if not isinstance(data, dict):
        return ["top level must be a JSON object"]
    events = data.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    if not events:
        problems.append("traceEvents is empty")
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append("event %d is not an object" % index)
            continue
        phase = event.get("ph")
        if phase not in _REQUIRED_BY_PHASE:
            problems.append("event %d: unknown ph %r" % (index, phase))
            continue
        for key in _REQUIRED_BY_PHASE[phase]:
            if key not in event:
                problems.append("event %d (%s): missing %r"
                                % (index, phase, key))
        for key in ("ts", "dur"):
            if key in event and not isinstance(event[key], (int, float)):
                problems.append("event %d: %s is not numeric"
                                % (index, key))
        if phase == "C":
            args = event.get("args", {})
            if not isinstance(args, dict) or not all(
                    isinstance(v, (int, float)) for v in args.values()):
                problems.append("event %d: counter args must be numeric"
                                % index)
        if phase == "M" and event.get("name") not in (
                "process_name", "thread_name", "process_labels",
                "process_sort_index", "thread_sort_index"):
            problems.append("event %d: unknown metadata %r"
                            % (index, event.get("name")))
    return problems


# ---------------------------------------------------------------------------
# text timeline
# ---------------------------------------------------------------------------

def format_timeline(collector, loop_table=None, max_events_per_loop=40):
    """Per-loop text timeline of the recorded events (newest ring
    contents).  ``loop_table`` (optional) adds method/line labels."""
    by_loop = {}
    machine_level = []
    for event in collector.events():
        if event.kind == EV_CACHE:
            continue                  # counters are noise in text form
        if event.loop is None:
            machine_level.append(event)
        else:
            by_loop.setdefault(event.loop, []).append(event)

    lines = []
    out = lines.append
    for loop_id in sorted(by_loop):
        label = "loop %s" % loop_id
        if loop_table is not None and loop_id in loop_table:
            meta = loop_table[loop_id]
            label += "  (%s line %s)" % (meta.method_name, meta.line)
        out(label)
        events = by_loop[loop_id]
        shown = events[-max_events_per_loop:]
        if len(events) > len(shown):
            out("  ... %d earlier events elided" %
                (len(events) - len(shown)))
        for event in shown:
            out("  " + _timeline_line(event))
        out("")
    if machine_level:
        out("machine")
        for event in machine_level[-max_events_per_loop:]:
            out("  " + _timeline_line(event))
    return "\n".join(lines).rstrip()


def _timeline_line(event):
    cpu = "cpu%s" % event.cpu if event.cpu is not None else "    "
    prefix = "[%12.0f] %-5s" % (event.ts, cpu)
    kind = event.kind
    data = event.data
    if kind == EV_THREAD:
        return "%s thread iter %-6d %-8s (%.0f cycles)" \
            % (prefix, data[0], data[1], event.dur)
    if kind == EV_VIOLATION:
        return ("%s RAW violation @0x%x  iter %d stored -> iter %d had "
                "read  (%s -> %s)"
                % (prefix, data[2], data[0], data[1],
                   _site_text(data[3]), _site_text(data[4])))
    if kind == EV_RESTART:
        return "%s restart iter %-6d cause=%s%s" \
            % (prefix, data[0], data[1], "" if data[2] else " (collateral)")
    if kind == EV_OVERFLOW:
        return "%s %s-buffer overflow iter %d (%d lines)" \
            % (prefix, data[1], data[0], data[2])
    if kind == EV_HANDLER:
        return "%s handler %-8s %.0f cycles" % (prefix, data[0], event.dur)
    if kind == EV_STL:
        return "%s stl %s" % (prefix, data[0])
    if kind == EV_GC:
        return "%s gc %.0f cycles" % (prefix, event.dur)
    if kind == EV_LOOP:
        return "%s profile loop %s" % (prefix, data[0])
    if kind == EV_BANK:
        return "%s comparator bank %s" % (prefix, data[0])
    if kind == EV_ADAPT:
        return "%s adapt %s (epoch %s)%s" \
            % (prefix, data[0], data[1],
               "  %s" % data[2] if data[2] else "")
    if kind == EV_ANALYSIS:
        return "%s analysis %s#%s -> %s%s" \
            % (prefix, data[0], data[1], data[2],
               " (pruned)" if data[3] else "")
    if kind == EV_PROFDB:
        return "%s profdb %s %s" % (prefix, data[0], data[1])
    return "%s %s %r" % (prefix, kind, data)
