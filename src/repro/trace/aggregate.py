"""Aggregate trace counters that survive serialization.

The raw event ring is transient (like the live ``TestProfiler``), but
its roll-up — :class:`TraceAggregates` — is attached to
:class:`~repro.core.pipeline.JrpmReport`, round-trips losslessly
through ``to_dict()/from_dict()``, crosses worker-process and report-
cache boundaries, and lands in the suite runner's JSONL metrics.
"""


class LoopTraceStats:
    """Per-STL trace roll-up (restart counts, buffer high-water marks)."""

    __slots__ = ("loop_id", "commits", "restarts", "squashes",
                 "violations", "overflows", "max_load_lines",
                 "max_store_lines", "handler_cycles")

    def __init__(self, loop_id):
        self.loop_id = loop_id
        self.commits = 0
        self.restarts = 0            # primary violation/reset restarts
        self.squashes = 0            # collateral discards
        self.violations = 0          # RAW arcs observed
        self.overflows = 0
        self.max_load_lines = 0
        self.max_store_lines = 0
        self.handler_cycles = 0.0    # startup+shutdown+eoi+restart cycles

    def to_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @staticmethod
    def from_dict(data):
        stats = LoopTraceStats(data["loop_id"])
        for name in LoopTraceStats.__slots__:
            if name in data:
                setattr(stats, name, data[name])
        return stats


class TraceAggregates:
    """Counter roll-up of one traced run."""

    __slots__ = ("enabled", "events_recorded", "events_dropped",
                 "capacity", "counts", "handler_cycles", "per_loop",
                 "cache")

    def __init__(self, enabled=True, capacity=0):
        self.enabled = enabled
        self.events_recorded = 0     # everything emitted (incl. dropped)
        self.events_dropped = 0
        self.capacity = capacity
        self.counts = {}             # event kind -> emitted count
        self.handler_cycles = {}     # handler name -> total cycles
        self.per_loop = {}           # loop_id -> LoopTraceStats
        self.cache = {"l1_hits": 0, "l1_misses": 0,
                      "l2_hits": 0, "l2_misses": 0}

    # -- derived -----------------------------------------------------------
    @property
    def violations(self):
        return self.counts.get("violation", 0)

    @property
    def restarts(self):
        return sum(stats.restarts + stats.squashes
                   for stats in self.per_loop.values())

    @property
    def max_load_lines(self):
        return max((s.max_load_lines for s in self.per_loop.values()),
                   default=0)

    @property
    def max_store_lines(self):
        return max((s.max_store_lines for s in self.per_loop.values()),
                   default=0)

    def loop(self, loop_id):
        stats = self.per_loop.get(loop_id)
        if stats is None:
            stats = self.per_loop[loop_id] = LoopTraceStats(loop_id)
        return stats

    def merge(self, other):
        """Accumulate another run's counters into this roll-up.

        Used by the service daemon to keep one fleet-wide aggregate
        across every traced report it serves; capacity becomes the max
        (it is a per-run ring size, not additive), high-water marks
        fold via the per-loop maxima inside :class:`LoopTraceStats`.
        """
        self.events_recorded += other.events_recorded
        self.events_dropped += other.events_dropped
        self.capacity = max(self.capacity, other.capacity)
        for kind, count in other.counts.items():
            self.counts[kind] = self.counts.get(kind, 0) + count
        for name, cycles in other.handler_cycles.items():
            self.handler_cycles[name] = \
                self.handler_cycles.get(name, 0.0) + cycles
        for loop_id, theirs in other.per_loop.items():
            mine = self.loop(loop_id)
            mine.commits += theirs.commits
            mine.restarts += theirs.restarts
            mine.squashes += theirs.squashes
            mine.violations += theirs.violations
            mine.overflows += theirs.overflows
            mine.max_load_lines = max(mine.max_load_lines,
                                      theirs.max_load_lines)
            mine.max_store_lines = max(mine.max_store_lines,
                                       theirs.max_store_lines)
            mine.handler_cycles += theirs.handler_cycles
        for key, value in other.cache.items():
            self.cache[key] = self.cache.get(key, 0) + value
        return self

    # -- serialization -----------------------------------------------------
    def to_dict(self):
        """Lossless JSON-safe dict (loop keys stringified, like every
        other per-loop map in the report)."""
        return {
            "enabled": self.enabled,
            "events_recorded": self.events_recorded,
            "events_dropped": self.events_dropped,
            "capacity": self.capacity,
            "counts": dict(self.counts),
            "handler_cycles": dict(self.handler_cycles),
            "per_loop": {str(loop_id): stats.to_dict()
                         for loop_id, stats in self.per_loop.items()},
            "cache": dict(self.cache),
        }

    @staticmethod
    def from_dict(data):
        aggregates = TraceAggregates(enabled=data.get("enabled", True),
                                     capacity=data.get("capacity", 0))
        aggregates.events_recorded = data.get("events_recorded", 0)
        aggregates.events_dropped = data.get("events_dropped", 0)
        aggregates.counts = dict(data.get("counts", {}))
        aggregates.handler_cycles = dict(data.get("handler_cycles", {}))
        aggregates.per_loop = {
            int(key): LoopTraceStats.from_dict(value)
            for key, value in data.get("per_loop", {}).items()}
        cache = data.get("cache")
        if cache:
            aggregates.cache = dict(cache)
        return aggregates

    def summary_lines(self):
        """Human summary used by ``jrpm trace`` and verbose reports."""
        lines = []
        lines.append("trace: %d events recorded (%d dropped, ring %d)"
                     % (self.events_recorded, self.events_dropped,
                        self.capacity))
        if self.counts:
            lines.append("       " + "  ".join(
                "%s=%d" % (kind, self.counts[kind])
                for kind in sorted(self.counts)))
        if self.handler_cycles:
            lines.append("       handler cycles: " + "  ".join(
                "%s=%.0f" % (name, self.handler_cycles[name])
                for name in ("startup", "eoi", "restart", "shutdown")
                if name in self.handler_cycles))
        cache = self.cache
        total_l1 = cache["l1_hits"] + cache["l1_misses"]
        if total_l1:
            lines.append("       L1 %d/%d hits (%.1f%%), L2 %d/%d hits"
                         % (cache["l1_hits"], total_l1,
                            100.0 * cache["l1_hits"] / total_l1,
                            cache["l2_hits"],
                            cache["l2_hits"] + cache["l2_misses"]))
        return lines
