"""Typed trace events.

Every event is a :class:`TraceEvent` — a named tuple kept deliberately
small so emission stays cheap on the simulator's hot control path:

==========  ===========================================================
field       meaning
==========  ===========================================================
``kind``    one of the ``EV_*`` constants below
``ts``      cycle timestamp on the simulated clock (float)
``cpu``     simulated CPU id, or ``None`` for machine-level events
``dur``     span length in cycles (``0.0`` for instant events)
``loop``    STL / prospective-loop id, or ``None``
``data``    kind-specific payload tuple (see the table in
            ``docs/observability.md``)
==========  ===========================================================

Payload layouts (``data``):

* ``EV_THREAD``    — ``(iteration, outcome)`` where outcome is one of
  ``"commit" | "restart" | "squash" | "exit"``; the span covers the
  whole thread attempt (``ts`` .. ``ts + dur``).
* ``EV_VIOLATION`` — ``(store_iteration, victim_iteration, addr,
  source_site, sink_site)``: the RAW arc.  Sites are
  ``(method, line)`` pairs (the closest thing a JIT'd region has to a
  PC) or ``None`` when unknown.
* ``EV_RESTART``   — ``(iteration, cause, primary)``; ``cause`` is
  ``"violation" | "reset" | "switch"``.
* ``EV_OVERFLOW``  — ``(iteration, buffer, lines)`` with ``buffer`` in
  ``{"load", "store"}``.
* ``EV_HANDLER``   — ``(name,)`` for ``startup/shutdown/eoi/restart``;
  ``dur`` carries the Table 1 handler cycles.
* ``EV_STL``       — ``(edge, entries)`` with ``edge`` in
  ``{"enter", "exit"}``.
* ``EV_CACHE``     — ``(l1_hits, l1_misses, l2_hits, l2_misses)``
  cumulative counter snapshot.
* ``EV_LOOP``      — ``(edge,)`` profile-phase loop activation
  (``enter``/``exit``) from the TEST profiler.
* ``EV_BANK``      — ``(what,)`` comparator-bank pressure:
  ``"steal" | "missed"``.
* ``EV_GC``        — ``()``; ``dur`` is the collection's cycles.
* ``EV_ADAPT``     — ``(action, epoch, detail)``: an applied adaptive
  recompilation decision (``decommit | lock_escalate | promote``) from
  :mod:`repro.adapt`; ``loop`` is the affected STL.
* ``EV_ANALYSIS``  — ``(method, ordinal, classification, pruned)``: the
  static dependence analyzer's verdict for one prospective loop
  (:mod:`repro.analysis`); ``classification`` is on the
  ``absent | may | must`` lattice and ``pruned`` is true when the loop
  was removed from the STL candidate set before profiling.
* ``EV_PROFDB``    — ``(outcome, name)``: a persistent profile DB
  interaction (:mod:`repro.profdb`): ``outcome`` is the run's profile
  provenance (``cold`` = recorded a fresh profile, ``confirmed`` =
  recorded and reproduced the stored consensus plan, ``warm`` = TEST
  profiling skipped and replayed from the DB) and ``name`` is the
  workload name.
"""

from collections import namedtuple

TraceEvent = namedtuple("TraceEvent", ("kind", "ts", "cpu", "dur",
                                       "loop", "data"))

EV_THREAD = "thread"          # one speculative thread attempt (span)
EV_VIOLATION = "violation"    # RAW violation arc (instant)
EV_RESTART = "restart"        # a thread attempt was discarded (instant)
EV_OVERFLOW = "overflow"      # speculative buffer overflow (instant)
EV_HANDLER = "handler"        # STARTUP/SHUTDOWN/EOI/RESTART span
EV_STL = "stl"                # STL region enter/exit (instant)
EV_CACHE = "cache"            # L1/L2 hit-counter snapshot (counter)
EV_LOOP = "loop"              # TEST profile-phase loop enter/exit
EV_BANK = "bank"              # comparator-bank steal / exhaustion
EV_GC = "gc"                  # garbage collection pause (span)
EV_ADAPT = "adapt"            # adaptive recompilation decision (instant)
EV_ANALYSIS = "analysis"      # static dependence verdict (instant)
EV_PROFDB = "profdb"          # profile-DB record / warm-start (instant)

#: Every kind, in documentation order.
EVENT_KINDS = (EV_THREAD, EV_VIOLATION, EV_RESTART, EV_OVERFLOW,
               EV_HANDLER, EV_STL, EV_CACHE, EV_LOOP, EV_BANK, EV_GC,
               EV_ADAPT, EV_ANALYSIS, EV_PROFDB)

#: Thread-attempt outcomes (EV_THREAD payloads).
OUTCOME_COMMIT = "commit"
OUTCOME_RESTART = "restart"
OUTCOME_SQUASH = "squash"
OUTCOME_EXIT = "exit"
