"""Report-level metric folds: TLS / engine counters into the registry.

The speculative core (``tls/runtime`` + ``engine``) is the hottest code
in the tree — per-event registry mutation there would be a measurable
tax on the very numbers being measured.  Everything interesting is
already accounted losslessly in the :class:`JrpmReport` this layer
produces (``breakdown``, ``stl_run_stats``, ``trace_aggregates``), so
the fold happens once per finished run: :func:`observe_report_dict`
walks a serialized report and increments the TLS counters
(commits/violations/restarts/squashes/overflow stalls), buffer
high-water-mark gauges, per-phase simulated instruction/cycle
counters, and the per-scheduler simulated-insn/s throughput gauge.

Both the daemon (on every served ``run``/``run_adaptive`` report) and
the in-process :class:`~repro.service.client.LocalSession` call this,
so the ``metrics`` verb and the ``/metrics`` endpoint show the same
families either way.
"""

from .registry import get_registry


def observe_report_dict(report_dict, wall_seconds=None, registry=None):
    """Fold one serialized :class:`JrpmReport` into *registry*.

    *wall_seconds*, when given, is the wall-clock duration of the run
    that produced the report; combined with the report's simulated
    instruction counts it updates the per-scheduler
    ``jrpm_run_simulated_insn_per_sec`` throughput gauge.
    """
    if not report_dict:
        return
    registry = registry or get_registry()
    config = report_dict.get("config") or {}
    scheduler = config.get("scheduler", "event")
    if not config.get("fastpath", True):
        scheduler = "legacy"

    runs = registry.counter(
        "jrpm_runs", "Pipeline runs folded into this registry",
        labels=("provenance",))
    runs.labels(
        provenance=report_dict.get("profile_provenance") or "cold").inc()

    insns = registry.counter(
        "jrpm_run_simulated_instructions",
        "Simulated guest instructions executed, by pipeline phase",
        labels=("phase",))
    cycles = registry.counter(
        "jrpm_run_simulated_cycles",
        "Simulated guest cycles charged, by pipeline phase",
        labels=("phase",))
    total_insns = 0
    for phase in ("sequential", "profiling", "tls"):
        measurement = report_dict.get(phase)
        if not measurement:
            continue
        insns.labels(phase=phase).inc(measurement["instructions"])
        cycles.labels(phase=phase).inc(measurement["cycles"])
        total_insns += measurement["instructions"]
    if wall_seconds and total_insns:
        registry.gauge(
            "jrpm_run_simulated_insn_per_sec",
            "Simulated instructions per wall second, by TLS scheduler",
            labels=("scheduler",)).labels(scheduler=scheduler).set(
                total_insns / wall_seconds)

    breakdown = report_dict.get("breakdown")
    if breakdown:
        tls = registry.counter(
            "jrpm_tls_threads", "Speculative thread outcomes",
            labels=("outcome",))
        tls.labels(outcome="committed").inc(breakdown.get("commits", 0))
        tls.labels(outcome="violated").inc(
            breakdown.get("violations", 0))
        tls.labels(outcome="squashed").inc(breakdown.get("squashes", 0))
        registry.counter(
            "jrpm_tls_overflow_stalls",
            "Speculative buffer overflow stalls").inc(
                breakdown.get("overflow_stalls", 0))

    restarts = 0
    load_hwm = 0
    store_hwm = 0
    for stats in (report_dict.get("stl_run_stats") or {}).values():
        restarts += stats.get("restarts", 0)
        load_hwm = max(load_hwm, stats.get("max_load_lines", 0))
        store_hwm = max(store_hwm, stats.get("max_store_lines", 0))
    if restarts:
        registry.counter(
            "jrpm_tls_restarts",
            "Discarded speculative thread attempts").inc(restarts)
    if load_hwm or store_hwm:
        hwm = registry.gauge(
            "jrpm_tls_buffer_lines_hwm",
            "Speculative buffer high-water mark (cache lines)",
            labels=("buffer",))
        hwm_load = hwm.labels(buffer="load")
        hwm_load.set(max(hwm_load.value, load_hwm))
        hwm_store = hwm.labels(buffer="store")
        hwm_store.set(max(hwm_store.value, store_hwm))

    aggregates = report_dict.get("trace_aggregates")
    if aggregates:
        registry.counter(
            "jrpm_trace_events_recorded",
            "Trace events captured in rings").inc(
                aggregates.get("events_recorded", 0))
        registry.counter(
            "jrpm_trace_events_dropped",
            "Trace events dropped on ring overflow").inc(
                aggregates.get("events_dropped", 0))


def observe_report(report, wall_seconds=None, registry=None):
    """Fold a live :class:`JrpmReport` (convenience over the dict)."""
    observe_report_dict(report.to_dict(), wall_seconds=wall_seconds,
                        registry=registry)
