"""OpenMetrics / Prometheus text exposition for a metrics registry.

:func:`render` turns a :class:`~repro.metrics.registry.MetricsRegistry`
into the text format Prometheus scrapes and ``promtool`` understands:

* counters are suffixed ``_total``;
* histograms expand to cumulative ``_bucket{le="..."}`` series plus
  ``_count`` and ``_sum``;
* every family gets ``# HELP`` / ``# TYPE`` header lines and the
  document ends with ``# EOF`` (the OpenMetrics terminator).

:func:`lint` is a small structural validator used by the test suite
(and by :mod:`scripts.check_bench_schema` consumers) — it checks
header/sample ordering, label syntax, cumulative bucket monotonicity
and the trailing ``# EOF`` without needing promtool in the container.
"""

#: Content-Type for OpenMetrics text responses.
CONTENT_TYPE = ("application/openmetrics-text; version=1.0.0; "
                "charset=utf-8")


def _escape_label(value):
    """Escape a label value per the exposition-format rules."""
    return (value.replace("\\", "\\\\").replace("\"", "\\\"")
            .replace("\n", "\\n"))


def _format_value(value):
    """Render a sample value (integers without a trailing ``.0``)."""
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value))


def _labels_text(names, values, extra=()):
    """``{a="x",b="y"}`` text for one series (empty string if none)."""
    pairs = ['%s="%s"' % (name, _escape_label(value))
             for name, value in zip(names, values)]
    pairs.extend('%s="%s"' % (name, _escape_label(value))
                 for name, value in extra)
    return "{%s}" % ",".join(pairs) if pairs else ""


def render(registry):
    """OpenMetrics text document for every family in *registry*."""
    lines = []
    for name, family in registry.families():
        exposition_name = name + "_total" \
            if family.type == "counter" else name
        help_text = family.help or name.replace("_", " ")
        lines.append("# HELP %s %s" % (name, help_text))
        lines.append("# TYPE %s %s" % (name, family.type))
        for key, child in family.series():
            label_names = family.label_names
            if family.type in ("counter", "gauge"):
                lines.append("%s%s %s" % (
                    exposition_name,
                    _labels_text(label_names, key),
                    _format_value(child.value)))
            else:
                cumulative = 0
                for bound, count in zip(
                        tuple(child.bounds) + (float("inf"),),
                        child.buckets):
                    cumulative += count
                    lines.append("%s_bucket%s %d" % (
                        name,
                        _labels_text(label_names, key,
                                     extra=(("le",
                                             _format_value(bound)),)),
                        cumulative))
                lines.append("%s_count%s %d" % (
                    name, _labels_text(label_names, key), child.count))
                lines.append("%s_sum%s %s" % (
                    name, _labels_text(label_names, key),
                    _format_value(child.total)))
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def lint(text):
    """Structural check of an OpenMetrics document.

    Returns a list of problem strings (empty when the document is
    well-formed).  Checks: ``# EOF`` terminator, HELP/TYPE before
    samples, sample names matching their family (modulo the
    counter/histogram suffixes), parseable values, and non-decreasing
    cumulative histogram buckets.
    """
    problems = []
    lines = text.splitlines()
    if not lines or lines[-1] != "# EOF":
        problems.append("document does not end with '# EOF'")
    families = {}          # name -> type
    current = None
    bucket_cumulative = {}  # (name, labels-sans-le) -> last cumulative
    for lineno, line in enumerate(lines, 1):
        if not line:
            problems.append("line %d: blank line" % lineno)
            continue
        if line == "# EOF":
            if lineno != len(lines):
                problems.append("line %d: '# EOF' before end" % lineno)
            continue
        if line.startswith("# HELP ") or line.startswith("# TYPE "):
            parts = line.split(" ", 3)
            if len(parts) < 3:
                problems.append("line %d: malformed comment" % lineno)
                continue
            name = parts[2]
            if line.startswith("# TYPE "):
                if len(parts) < 4 or parts[3] not in (
                        "counter", "gauge", "histogram"):
                    problems.append("line %d: bad TYPE" % lineno)
                    continue
                if name in families:
                    problems.append("line %d: duplicate TYPE for %s"
                                    % (lineno, name))
                families[name] = parts[3]
                current = name
            continue
        if line.startswith("#"):
            problems.append("line %d: unknown comment" % lineno)
            continue
        # sample line: name{labels} value
        head, _, value_text = line.rpartition(" ")
        if not head:
            problems.append("line %d: no value" % lineno)
            continue
        if value_text not in ("+Inf", "-Inf", "NaN"):
            try:
                float(value_text)
            except ValueError:
                problems.append("line %d: bad value %r"
                                % (lineno, value_text))
                continue
        name, labels = head, ""
        if "{" in head:
            name, _, labels = head.partition("{")
            if not labels.endswith("}"):
                problems.append("line %d: unterminated labels" % lineno)
                continue
            labels = labels[:-1]
        base = name
        for suffix in ("_total", "_bucket", "_count", "_sum"):
            if name.endswith(suffix) and name[:-len(suffix)] in families:
                base = name[:-len(suffix)]
                break
        if base not in families:
            problems.append("line %d: sample %s has no TYPE header"
                            % (lineno, name))
            continue
        if current != base:
            problems.append("line %d: sample %s outside its family "
                            "block" % (lineno, name))
        family_type = families[base]
        if family_type == "counter" and not name.endswith("_total"):
            problems.append("line %d: counter sample %s missing "
                            "_total suffix" % (lineno, name))
        if family_type == "histogram" and name.endswith("_bucket"):
            if 'le="' not in labels:
                problems.append("line %d: _bucket without le label"
                                % lineno)
                continue
            series_key = (base, ",".join(
                part for part in labels.split(",")
                if not part.startswith("le=")))
            cumulative = float(value_text)
            last = bucket_cumulative.get(series_key)
            if last is not None and cumulative < last:
                problems.append("line %d: histogram buckets not "
                                "cumulative" % lineno)
            bucket_cumulative[series_key] = cumulative
    return problems
