"""Minimal asyncio HTTP exposition endpoint (``GET /metrics``).

The daemon (``jrpm serve --metrics-port N``) starts one
:class:`MetricsHttpServer` next to its JSON-protocol listener.  It
speaks just enough HTTP/1.1 for ``curl`` and a Prometheus scraper:
``GET /metrics`` returns the OpenMetrics rendering of the registry
(Content-Type per the spec), ``GET /healthz`` returns ``ok``, anything
else is 404.  Connections are closed after one response — scrapers
re-connect per scrape and the daemon's real protocol lives on the JSON
socket, so keep-alive complexity buys nothing here.

No third-party HTTP stack is used (the container must not grow
dependencies); the request parser reads header lines and ignores any
body, which is all a scrape needs.
"""

import asyncio

from .openmetrics import CONTENT_TYPE, render


class MetricsHttpServer:
    """One-endpoint HTTP server exposing a registry as OpenMetrics."""

    def __init__(self, registry_fn, host="127.0.0.1", port=0):
        self._registry_fn = registry_fn
        self.host = host
        self.port = port
        self._server = None

    async def start(self):
        """Bind and start serving; resolves ``self.port`` when 0."""
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        return self

    async def close(self):
        """Stop accepting and close the listener."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(self, reader, writer):
        """Serve one request on a fresh connection, then close."""
        try:
            request_line = await reader.readline()
            # Drain headers until the blank line; a scrape has no body.
            while True:
                line = await reader.readline()
                if line in (b"\r\n", b"\n", b""):
                    break
            try:
                method, path, _ = (request_line.decode("ascii", "replace")
                                   .split(None, 2))
            except ValueError:
                writer.write(_response(400, "text/plain; charset=utf-8",
                                       "bad request\n"))
                return
            if method != "GET":
                writer.write(_response(405, "text/plain; charset=utf-8",
                                       "method not allowed\n"))
            elif path.split("?", 1)[0] == "/metrics":
                body = render(self._registry_fn())
                writer.write(_response(200, CONTENT_TYPE, body))
            elif path.split("?", 1)[0] == "/healthz":
                writer.write(_response(200, "text/plain; charset=utf-8",
                                       "ok\n"))
            else:
                writer.write(_response(404, "text/plain; charset=utf-8",
                                       "not found\n"))
            await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass


_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed"}


def _response(status, content_type, body):
    """Serialize one HTTP/1.1 response (connection: close)."""
    payload = body.encode("utf-8")
    head = ("HTTP/1.1 %d %s\r\n"
            "Content-Type: %s\r\n"
            "Content-Length: %d\r\n"
            "Connection: close\r\n"
            "\r\n" % (status, _REASONS[status], content_type,
                      len(payload)))
    return head.encode("ascii") + payload
