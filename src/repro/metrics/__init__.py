"""``repro.metrics`` — unified metrics registry and exposition.

The observability spine of the reproduction (docs/metrics.md): a
typed, thread-safe :class:`MetricsRegistry` of Counter / Gauge /
Histogram families with label support and lossless
``to_dict``/``from_dict``, instrumented through the hot layers
(runner pool, service scheduler/store, profdb, TLS report folds) and
exposed three ways — the ``metrics`` service verb, the OpenMetrics
HTTP endpoint (``jrpm serve --metrics-port``), and the machine-
readable benchmark telemetry pipeline (``benchmarks/telemetry.py``).
"""

from .instrument import observe_report, observe_report_dict
from .openmetrics import CONTENT_TYPE, lint, render
from .registry import (DEFAULT_BOUNDS, DEFAULT_MAX_SAMPLES,
                       METRICS_SCHEMA_VERSION, Counter, Gauge, Histogram,
                       MetricFamily, MetricsRegistry, enabled,
                       get_registry, reset_registry, set_enabled)
from .http import MetricsHttpServer

__all__ = [
    "CONTENT_TYPE",
    "Counter",
    "DEFAULT_BOUNDS",
    "DEFAULT_MAX_SAMPLES",
    "Gauge",
    "Histogram",
    "METRICS_SCHEMA_VERSION",
    "MetricFamily",
    "MetricsHttpServer",
    "MetricsRegistry",
    "enabled",
    "get_registry",
    "lint",
    "observe_report",
    "observe_report_dict",
    "render",
    "reset_registry",
    "set_enabled",
]
