"""Typed, thread-safe metrics registry: Counter / Gauge / Histogram.

One :class:`MetricsRegistry` holds every metric family the process
exposes.  A *family* is a named metric plus the tuple of label names it
is dimensioned by; each distinct label-value combination gets its own
child series (``family.labels(verb="run")``).  The design follows the
OpenMetrics data model so :mod:`repro.metrics.openmetrics` can render a
registry without translation:

* :class:`Counter` — monotonically non-decreasing ``inc()``;
* :class:`Gauge` — ``set()``/``inc()``/``dec()``, any float;
* :class:`Histogram` — log-bucketed observations with an exact
  bounded reservoir for percentiles (the generalization of the PR-6
  ``service.stats.LatencyHistogram``, which is now a subclass).

Every series and the registry itself round-trip losslessly through
``to_dict``/``from_dict``, and registries can be ``merge()``-d — the
daemon folds worker-process registries into its own so the ``metrics``
verb and the ``/metrics`` HTTP endpoint see pool/TLS counters that were
incremented in child processes.

All mutation goes through one registry-wide :class:`threading.RLock`
(shared by the series objects), so concurrent ``record()``/``inc()``
from asyncio callbacks, scheduler threads and test threads is safe.
A process-global default registry is available via :func:`get_registry`;
instrumented layers (pool, scheduler, store, profdb, TLS folds) write
there so the daemon can expose one unified document.  The global
:func:`set_enabled` switch turns every mutation into a no-op for A/B
overhead measurement (``benchmarks/bench_trace_overhead.py``).
"""

import bisect
import threading
from collections import deque

#: Serialization schema for ``MetricsRegistry.to_dict`` payloads.
METRICS_SCHEMA_VERSION = 1

#: Default histogram bounds: doubling from 100µs to ~200s (seconds).
DEFAULT_BOUNDS = tuple(0.0001 * (2 ** i) for i in range(22))

#: Default exact-percentile reservoir size (newest-wins).
DEFAULT_MAX_SAMPLES = 4096

_TYPES = ("counter", "gauge", "histogram")

_enabled = True


def set_enabled(flag):
    """Globally enable/disable metric mutation (A/B overhead runs).

    Disabled mutation is one module-global boolean test per call site;
    reads (``to_dict``, rendering) are unaffected.  Returns the
    previous value so callers can restore it.
    """
    global _enabled
    previous = _enabled
    _enabled = bool(flag)
    return previous


def enabled():
    """True when metric mutation is globally enabled."""
    return _enabled


def _check_name(name):
    """Reject names the OpenMetrics exposition format cannot carry."""
    if not name or not all(ch.isalnum() or ch == "_" for ch in name):
        raise ValueError("invalid metric name: %r" % (name,))
    if name[0].isdigit():
        raise ValueError("metric name may not start with a digit: %r"
                         % (name,))


class Counter:
    """Monotonically non-decreasing counter series."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock):
        self._lock = lock
        self.value = 0.0

    def inc(self, amount=1.0):
        """Add *amount* (must be >= 0) to the counter."""
        if not _enabled:
            return
        if amount < 0:
            raise ValueError("counter increment must be >= 0")
        with self._lock:
            self.value += amount

    def to_dict(self):
        """JSON-safe value payload."""
        return {"value": self.value}

    def load_dict(self, payload):
        """Restore the series value from a ``to_dict`` payload."""
        self.value = float(payload["value"])

    def merge(self, payload):
        """Fold another series' ``to_dict`` payload into this one."""
        self.value += float(payload["value"])


class Gauge:
    """Point-in-time value series (queue depth, occupancy, rates)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value):
        """Replace the gauge value."""
        if not _enabled:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount=1.0):
        """Add *amount* (may be negative) to the gauge."""
        if not _enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount=1.0):
        """Subtract *amount* from the gauge."""
        self.inc(-amount)

    def to_dict(self):
        """JSON-safe value payload."""
        return {"value": self.value}

    def load_dict(self, payload):
        """Restore the series value from a ``to_dict`` payload."""
        self.value = float(payload["value"])

    def merge(self, payload):
        """Fold another series' payload in (gauges take the max — the
        interesting gauges are high-water marks and last-seen depths)."""
        self.value = max(self.value, float(payload["value"]))


class Histogram:
    """Log-bucketed histogram with an exact bounded sample reservoir.

    ``buckets[i]`` counts observations ``<= bounds[i]``; the final
    bucket is the +Inf overflow.  The newest ``max_samples``
    observations are kept in a :class:`collections.deque` ring
    (O(1) wrap — the PR-6 reservoir used ``list.pop(0)``) so
    :meth:`percentile` stays exact for the populations a daemon sees
    between restarts.
    """

    __slots__ = ("_lock", "bounds", "count", "total", "max",
                 "buckets", "_samples")

    def __init__(self, lock, bounds=DEFAULT_BOUNDS,
                 max_samples=DEFAULT_MAX_SAMPLES):
        self._lock = lock
        self.bounds = tuple(bounds)
        self.count = 0
        self.total = 0.0
        self.max = 0.0
        self.buckets = [0] * (len(self.bounds) + 1)
        self._samples = deque(maxlen=max_samples)

    def record(self, value):
        """Fold one observation into the histogram."""
        if not _enabled:
            return
        with self._lock:
            self.count += 1
            self.total += value
            if value > self.max:
                self.max = value
            self.buckets[bisect.bisect_right(self.bounds, value)] += 1
            self._samples.append(value)

    # ``observe`` is the conventional Prometheus spelling.
    observe = record

    def percentile(self, fraction):
        """Exact value at *fraction* (0..1) of the sample window."""
        with self._lock:
            ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1,
                    max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    @property
    def mean(self):
        """Average over every recorded observation."""
        return self.total / self.count if self.count else 0.0

    def to_dict(self):
        """JSON-safe summary: count/sum/max, exact p50/p95, buckets,
        and the reservoir itself (bounded) so round-trips are lossless."""
        with self._lock:
            return {
                "count": self.count,
                "sum": self.total,
                "max": self.max,
                "mean": round(self.mean, 6),
                "p50": round(self.percentile_unlocked(0.50), 6),
                "p95": round(self.percentile_unlocked(0.95), 6),
                "bounds": list(self.bounds),
                "buckets": list(self.buckets),
                "samples": list(self._samples),
            }

    def percentile_unlocked(self, fraction):
        """Percentile without re-taking the (reentrant) registry lock."""
        ordered = sorted(self._samples)
        if not ordered:
            return 0.0
        index = min(len(ordered) - 1,
                    max(0, int(round(fraction * (len(ordered) - 1)))))
        return ordered[index]

    def load_dict(self, payload):
        """Restore counters, buckets and reservoir from ``to_dict``."""
        self.count = int(payload["count"])
        self.total = float(payload["sum"])
        self.max = float(payload["max"])
        self.buckets = [int(n) for n in payload["buckets"]]
        self._samples.clear()
        self._samples.extend(payload.get("samples", ()))

    def merge(self, payload):
        """Fold another histogram's ``to_dict`` payload into this one."""
        self.count += int(payload["count"])
        self.total += float(payload["sum"])
        self.max = max(self.max, float(payload["max"]))
        other = payload["buckets"]
        if len(other) != len(self.buckets):
            raise ValueError("histogram bucket layouts differ")
        self.buckets = [a + b for a, b in zip(self.buckets, other)]
        self._samples.extend(payload.get("samples", ()))


_SERIES_TYPES = {"counter": Counter, "gauge": Gauge,
                 "histogram": Histogram}


class MetricFamily:
    """A named metric plus its label dimensions; owns the child series.

    ``family.labels(verb="run")`` returns (creating on first use) the
    series for that label-value combination; label-less families proxy
    ``inc``/``set``/``record`` straight to their single default child.
    """

    __slots__ = ("name", "type", "help", "label_names", "_lock",
                 "_children", "_kwargs")

    def __init__(self, name, metric_type, help_text, label_names,
                 lock, **kwargs):
        _check_name(name)
        if metric_type not in _TYPES:
            raise ValueError("unknown metric type: %r" % (metric_type,))
        self.name = name
        self.type = metric_type
        self.help = help_text
        self.label_names = tuple(label_names)
        for label in self.label_names:
            _check_name(label)
        self._lock = lock
        self._children = {}
        self._kwargs = kwargs
        if not self.label_names:
            self._child(())

    def _child(self, key):
        child = self._children.get(key)
        if child is None:
            child = _SERIES_TYPES[self.type](self._lock, **self._kwargs)
            self._children[key] = child
        return child

    def labels(self, **labels):
        """Series for one label-value combination (created on demand)."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                "metric %s takes labels %r, got %r"
                % (self.name, self.label_names, tuple(sorted(labels))))
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            return self._child(key)

    def _default(self):
        if self.label_names:
            raise ValueError("metric %s requires labels %r"
                             % (self.name, self.label_names))
        return self._children[()]

    def inc(self, amount=1.0):
        """Proxy to the label-less child (counters/gauges)."""
        self._default().inc(amount)

    def dec(self, amount=1.0):
        """Proxy to the label-less child (gauges)."""
        self._default().dec(amount)

    def set(self, value):
        """Proxy to the label-less child (gauges)."""
        self._default().set(value)

    def record(self, value):
        """Proxy to the label-less child (histograms)."""
        self._default().record(value)

    observe = record

    @property
    def value(self):
        """Value of the label-less child (counters/gauges)."""
        return self._default().value

    def series(self):
        """Snapshot of ``(label_values_tuple, child)`` pairs."""
        with self._lock:
            return sorted(self._children.items())

    def to_dict(self):
        """JSON-safe family payload (type, help, labels, children)."""
        with self._lock:
            return {
                "type": self.type,
                "help": self.help,
                "labels": list(self.label_names),
                "series": {"\t".join(key): child.to_dict()
                           for key, child in self._children.items()},
            }

    def load_dict(self, payload, merge=False):
        """Restore (or ``merge=True`` fold in) a family payload."""
        if payload["type"] != self.type:
            raise ValueError("metric %s: type mismatch (%s vs %s)"
                             % (self.name, self.type, payload["type"]))
        if tuple(payload["labels"]) != self.label_names:
            raise ValueError("metric %s: label mismatch" % self.name)
        with self._lock:
            for joined, child_payload in payload["series"].items():
                key = tuple(joined.split("\t")) if joined else ()
                child = self._child(key)
                if merge:
                    child.merge(child_payload)
                else:
                    child.load_dict(child_payload)


class MetricsRegistry:
    """The process-wide collection of metric families.

    Families are created idempotently: a second ``counter()`` call with
    the same name returns the existing family (and raises if the type
    or labels disagree), so instrumented modules can declare their
    metrics at import/call time without coordination.
    """

    def __init__(self):
        self._lock = threading.RLock()
        self._families = {}

    def _family(self, name, metric_type, help_text, labels, **kwargs):
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if (family.type != metric_type
                        or family.label_names != tuple(labels)):
                    raise ValueError(
                        "metric %s re-registered with different "
                        "type/labels" % name)
                return family
            family = MetricFamily(name, metric_type, help_text,
                                  labels, self._lock, **kwargs)
            self._families[name] = family
            return family

    def counter(self, name, help_text="", labels=()):
        """Get-or-create a counter family."""
        return self._family(name, "counter", help_text, labels)

    def gauge(self, name, help_text="", labels=()):
        """Get-or-create a gauge family."""
        return self._family(name, "gauge", help_text, labels)

    def histogram(self, name, help_text="", labels=(),
                  bounds=DEFAULT_BOUNDS,
                  max_samples=DEFAULT_MAX_SAMPLES):
        """Get-or-create a histogram family."""
        return self._family(name, "histogram", help_text, labels,
                            bounds=bounds, max_samples=max_samples)

    def families(self):
        """Snapshot of ``(name, family)`` pairs, name-sorted."""
        with self._lock:
            return sorted(self._families.items())

    def get(self, name):
        """The family registered under *name*, or None."""
        with self._lock:
            return self._families.get(name)

    def to_dict(self):
        """Lossless JSON-safe snapshot of every family."""
        with self._lock:
            return {
                "schema": METRICS_SCHEMA_VERSION,
                "families": {name: family.to_dict()
                             for name, family in self._families.items()},
            }

    def _absorb(self, payload, merge):
        if payload.get("schema") != METRICS_SCHEMA_VERSION:
            raise ValueError("unsupported metrics schema: %r"
                             % (payload.get("schema"),))
        for name, family_payload in payload["families"].items():
            kwargs = {}
            if family_payload["type"] == "histogram":
                first = next(iter(family_payload["series"].values()),
                             None)
                if first is not None and "bounds" in first:
                    kwargs["bounds"] = tuple(first["bounds"])
            family = self._family(name, family_payload["type"],
                                  family_payload["help"],
                                  tuple(family_payload["labels"]),
                                  **kwargs)
            family.load_dict(family_payload, merge=merge)

    @classmethod
    def from_dict(cls, payload):
        """Rebuild a registry from a ``to_dict`` payload (lossless)."""
        registry = cls()
        registry._absorb(payload, merge=False)
        return registry

    def merge(self, payload):
        """Fold another registry's ``to_dict`` payload into this one
        (counters add, gauges max, histograms concatenate)."""
        self._absorb(payload, merge=True)

    def clear(self):
        """Drop every family (test isolation)."""
        with self._lock:
            self._families.clear()


_registry = MetricsRegistry()
_registry_lock = threading.Lock()


def get_registry():
    """The process-global default registry."""
    return _registry


def reset_registry():
    """Replace the global registry with a fresh one; returns the new
    registry (test isolation — instrumented modules re-resolve
    families on every call, so swapping is safe)."""
    global _registry
    with _registry_lock:
        _registry = MetricsRegistry()
        return _registry


def swap_registry(registry):
    """Install *registry* as the process-global default; returns the
    previous one.  Scoped capture: ``service.jobs.execute_job`` swaps
    in a fresh registry so a job's metric delta can be shipped back to
    the daemon without fork-inherited parent values riding along."""
    global _registry
    with _registry_lock:
        previous = _registry
        _registry = registry
        return previous
