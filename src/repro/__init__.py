"""Jrpm: dynamic parallelization of Java-like programs with TLS.

A faithful behavioral reproduction of *The Jrpm System for Dynamically
Parallelizing Java Programs* (Chen & Olukotun, ISCA 2003): a MiniJava
frontend, JVM-like bytecode, the microJIT compiler, the Hydra CMP
simulator with thread-level speculation, the TEST hardware profiler,
and the full annotate -> profile -> select -> recompile -> speculate
pipeline.

Quickstart::

    from repro import Jrpm
    report = Jrpm().run(source_text, name="my-benchmark")
    print(report.tls_speedup)
"""

from .core.pipeline import Jrpm, JrpmReport, VmOptions, run_jrpm
from .hydra.config import DEFAULT_CONFIG, HydraConfig, SpeculationOverheads
from .jit.stl import StlOptions
from .minijava import compile_source
from .trace import TraceAggregates, TraceCollector, TraceOptions

__version__ = "1.2.0"


def package_version():
    """The package version (``jrpm --version``, ``version`` service
    verb).  :data:`__version__` is the single source of truth —
    ``pyproject.toml`` mirrors it — and it always describes the code
    actually imported, which installed-distribution metadata does not
    when running from a source tree (``PYTHONPATH=src``) alongside an
    older installed build."""
    return __version__


__all__ = ["Jrpm", "JrpmReport", "run_jrpm", "VmOptions", "StlOptions",
           "HydraConfig", "DEFAULT_CONFIG", "SpeculationOverheads",
           "compile_source", "TraceCollector", "TraceOptions",
           "TraceAggregates", "__version__", "package_version"]
