"""TLS execution-state accounting (paper Figure 10).

Every cycle a CPU spends during speculative execution is attributed to
one of the paper's categories once the fate of the thread is known:

* run-used      — committed compute cycles,
* wait-used     — committed cycles spent waiting to become head or
                  stalled on buffer overflow / synchronizing locks,
* overhead      — STL startup / eoi / restart / shutdown handlers,
* run-violated  — discarded compute cycles (thread restarted/squashed),
* wait-violated — discarded wait cycles.

Serial time (everything outside STLs) is tracked by the pipeline.

Attribution is scheduler-independent: both TLS schedulers
(`repro.tls.runtime`, event-driven and stepwise) settle each thread's
``acc_compute`` from the same per-thread clock deltas before any
state transition is serviced, so batching local runs between
scheduler events never moves a cycle across these categories — the
breakdown is byte-identical under ``--scheduler event`` and
``--scheduler stepwise`` (enforced by
``tests/test_scheduler_differential.py``).
"""


class TlsStateBreakdown:
    __slots__ = ("run_used", "wait_used", "overhead", "run_violated",
                 "wait_violated", "serial", "commits", "violations",
                 "squashes", "overflow_stalls", "stl_entries",
                 "lock_waits")

    def __init__(self):
        self.run_used = 0.0
        self.wait_used = 0.0
        self.overhead = 0.0
        self.run_violated = 0.0
        self.wait_violated = 0.0
        self.serial = 0.0
        self.commits = 0
        self.violations = 0
        self.squashes = 0
        self.overflow_stalls = 0
        self.lock_waits = 0
        self.stl_entries = 0

    def add(self, other):
        self.run_used += other.run_used
        self.wait_used += other.wait_used
        self.overhead += other.overhead
        self.run_violated += other.run_violated
        self.wait_violated += other.wait_violated
        self.serial += other.serial
        self.commits += other.commits
        self.violations += other.violations
        self.squashes += other.squashes
        self.overflow_stalls += other.overflow_stalls
        self.lock_waits += other.lock_waits
        self.stl_entries += other.stl_entries

    @property
    def total(self):
        return (self.run_used + self.wait_used + self.overhead
                + self.run_violated + self.wait_violated + self.serial)

    def fractions(self):
        total = self.total or 1.0
        return {
            "serial": self.serial / total,
            "run_used": self.run_used / total,
            "wait_used": self.wait_used / total,
            "overhead": self.overhead / total,
            "run_violated": self.run_violated / total,
            "wait_violated": self.wait_violated / total,
        }

    def __repr__(self):
        parts = ", ".join("%s=%.0f" % (name, getattr(self, name))
                          for name in ("serial", "run_used", "wait_used",
                                       "overhead", "run_violated",
                                       "wait_violated"))
        return "<TlsStateBreakdown %s>" % parts

    def to_dict(self):
        """Lossless JSON-safe dict of every accounting slot."""
        return {name: getattr(self, name) for name in self.__slots__}

    @staticmethod
    def from_dict(data):
        breakdown = TlsStateBreakdown()
        for name in TlsStateBreakdown.__slots__:
            setattr(breakdown, name, data[name])
        return breakdown


class StlRunStats:
    """Per-STL aggregate statistics for Table 3 columns."""

    __slots__ = ("loop_id", "entries", "threads_committed", "cycles_total",
                 "sum_load_lines", "sum_store_lines", "violations",
                 "overflow_stalls", "restarts", "max_load_lines",
                 "max_store_lines", "wall_cycles")

    def __init__(self, loop_id):
        self.loop_id = loop_id
        self.entries = 0
        self.threads_committed = 0
        self.cycles_total = 0.0
        #: master-clock cycles from STL entry to shutdown return —
        #: committed work / wall is the *realized* speedup the adapt
        #: controller compares against TEST's prediction
        self.wall_cycles = 0.0
        self.sum_load_lines = 0
        self.sum_store_lines = 0
        self.violations = 0
        self.overflow_stalls = 0
        #: every discarded thread attempt (primary restarts + collateral
        #: squashes) — the restart-storm signal `format_report -v` shows
        self.restarts = 0
        #: speculative-buffer high-water marks (lines), vs the limits in
        #: ``HydraConfig.load_buffer_lines`` / ``store_buffer_lines``
        self.max_load_lines = 0
        self.max_store_lines = 0

    @property
    def threads_per_entry(self):
        return (self.threads_committed / self.entries
                if self.entries else 0.0)

    @property
    def avg_thread_cycles(self):
        return (self.cycles_total / self.threads_committed
                if self.threads_committed else 0.0)

    @property
    def avg_load_lines(self):
        return (self.sum_load_lines / self.threads_committed
                if self.threads_committed else 0.0)

    @property
    def avg_store_lines(self):
        return (self.sum_store_lines / self.threads_committed
                if self.threads_committed else 0.0)

    def to_dict(self):
        """Lossless JSON-safe dict of the raw counters (derived
        properties are recomputed on load)."""
        return {name: getattr(self, name) for name in self.__slots__}

    @staticmethod
    def from_dict(data):
        stats = StlRunStats(data["loop_id"])
        for name in StlRunStats.__slots__:
            if name in data:        # tolerate dicts from older schemas
                setattr(stats, name, data[name])
        return stats
