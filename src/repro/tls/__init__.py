"""Thread-level speculation runtime: buffers, ordered commit, violations."""

from .buffers import SpecMemoryInterface, SpecThreadState
from .runtime import TlsRuntime
from .stats import StlRunStats, TlsStateBreakdown

__all__ = ["TlsRuntime", "SpecThreadState", "SpecMemoryInterface",
           "TlsStateBreakdown", "StlRunStats"]
