"""The TLS runtime: drives speculative loop execution (paper §2, Fig. 4).

``run_stl`` simulates one STL region: the master CPU executes the
STL_STARTUP handler (saving initialization values to the runtime
stack), four speculative CPUs run loop iterations round-robin, commits
happen in order, RAW violations restart the violated thread and every
more-speculative thread, and the exiting thread — once it is the head —
runs STL_SHUTDOWN and hands control back to the master.

The event loop always advances the runnable CPU with the smallest local
clock, so memory events are totally ordered on the simulated clock and
violation detection is exact.
"""

from ..errors import GuestException, VMError
from ..jit.ir import IROp
from ..jit.patterns import merge_reduction
from .buffers import SpecMemoryInterface, SpecThreadState
from .stats import StlRunStats, TlsStateBreakdown

_RUN = SpecThreadState.RUNNING
_WAIT_HEAD = SpecThreadState.WAIT_HEAD
_EXITED = SpecThreadState.EXITED
_STALLED = SpecThreadState.STALLED
_WAIT_LOCK = SpecThreadState.WAIT_LOCK
_EXCEPTION = SpecThreadState.EXCEPTION
_SWITCH = "switch"

_LOCK_POLL_CYCLES = 3


class _ThreadCodeUnit:
    """Adapts an StlDescriptor to the Frame interface (code/nregs/name)."""

    __slots__ = ("code", "nregs", "name", "stls", "_dispatch",
                 "_dispatch_step", "warm_entries")

    def __init__(self, descriptor):
        self.code = descriptor.thread_code
        self.nregs = descriptor.nregs
        self.name = "%s$stl%d" % (descriptor.method_name, descriptor.stl_id)
        self.stls = {}
        #: predecoded handler table caches (repro.engine.ir_engine):
        #: block-fused for sequential dispatch, stepwise for the TLS
        #: event loop's per-instruction smallest-clock scheduling
        self._dispatch = None
        self._dispatch_step = None
        #: every commit re-enters the thread code at warm_entry, so the
        #: predecoder must treat it as a block leader of its own
        self.warm_entries = (descriptor.warm_entry,)


class TlsRuntime:
    """Owns cross-STL state: statistics and the hoisting warm flag."""

    def __init__(self, machine):
        self.machine = machine
        self.config = machine.config
        self.breakdown = TlsStateBreakdown()
        self.stl_stats = {}
        self.last_descriptor = None     # for hoisted startup/shutdown
        machine.tls_runtime = self

    def stats_for(self, loop_id):
        stats = self.stl_stats.get(loop_id)
        if stats is None:
            stats = self.stl_stats[loop_id] = StlRunStats(loop_id)
        return stats

    def run_stl(self, master_ctx, descriptor):
        execution = _StlExecution(self, master_ctx, descriptor)
        return execution.run()


class _StlExecution:
    """One dynamic entry into one STL."""

    def __init__(self, runtime, master_ctx, descriptor):
        self.runtime = runtime
        self.machine = runtime.machine
        self.config = runtime.config
        self.breakdown = runtime.breakdown
        #: trace collector (or None) — every emission site below is
        #: guarded so disabled tracing costs one is-None check on
        #: control events only (see repro.trace)
        self.trace = runtime.machine.trace
        self.master = master_ctx
        self.desc = descriptor
        self.n = self.config.num_cpus
        self.head_iteration = 0
        self.last_commit_time = 0.0
        self.ctxs = []
        self.threads = []
        self.thread_frames = []
        self.fp_addr = None
        self.entry_reductions = {}
        self.unit = _ThreadCodeUnit(descriptor)
        self.steps = 0
        self.max_steps = 200_000_000
        #: master clock at STL entry — _shutdown charges the elapsed
        #: wall cycles to StlRunStats.wall_cycles (realized-speedup
        #: denominator for the adapt controller)
        self.entry_master_time = 0.0

    # ------------------------------------------------------------------
    # speculation services used by SpecMemoryInterface
    # ------------------------------------------------------------------
    def less_speculative(self, spec):
        return sorted((t for t in self.threads
                       if t.iteration < spec.iteration),
                      key=lambda t: -t.iteration)

    def is_head(self, spec):
        return spec.iteration == self.head_iteration

    def flag_overflow(self, spec):
        spec.overflowed = True

    def notify_store(self, storer, addr):
        """RAW violation check: any more-speculative thread whose
        speculative-read tag for *addr* is vulnerable must restart — and
        (Hydra protocol, Fig. 4) so must everything above it."""
        min_violated = None
        victim = None
        for thread in self.threads:
            if thread.iteration <= storer.iteration:
                continue
            if thread.read_versions.get(addr):
                if min_violated is None or \
                        thread.iteration < min_violated:
                    min_violated = thread.iteration
                    victim = thread
        if min_violated is not None:
            now = self.ctxs[storer.cpu_id].time
            if self.trace is not None:
                # The RAW arc: the storer's current instruction is the
                # source; the victim's tagged first-read of addr is the
                # sink (recorded by SpecMemoryInterface while tracing).
                self.trace.violation(
                    now, storer.cpu_id, self.desc.stl_id,
                    storer.iteration, min_violated, addr,
                    self.ctxs[storer.cpu_id].current_site,
                    victim.read_sites.get(addr))
            self.restart_from(min_violated, now, cause="violation")

    def restart_from(self, first_iteration, now, cause):
        for cpu, thread in enumerate(self.threads):
            if thread.iteration >= first_iteration:
                self._restart_thread(cpu, now,
                                     primary=(thread.iteration
                                              == first_iteration),
                                     cause=cause)

    def _restart_thread(self, cpu, now, primary, cause):
        thread = self.threads[cpu]
        ctx = self.ctxs[cpu]
        # Account the discarded attempt.
        wait_extra = 0.0
        if thread.state not in (_RUN,):
            wait_extra = max(0.0, now - thread.block_time)
        self.breakdown.run_violated += thread.acc_compute
        self.breakdown.wait_violated += thread.acc_wait + wait_extra
        self.breakdown.overhead += thread.acc_overhead
        stats = self.runtime.stats_for(self.desc.stl_id)
        stats.restarts += 1
        if primary and cause == "violation":
            self.breakdown.violations += 1
            stats.violations += 1
        else:
            self.breakdown.squashes += 1
        # Reset: same iteration, cold entry, registers persist.
        thread.reset_speculative_state()
        frame = self.thread_frames[cpu]
        frame.pc = 0
        ctx.frames = [frame]
        restart = self.config.overheads.restart
        if self.trace is not None:
            self.trace.thread_span(
                thread.start_time, now, cpu, self.desc.stl_id,
                thread.iteration, "restart" if primary else "squash")
            self.trace.restart(now, cpu, self.desc.stl_id,
                               thread.iteration, cause, primary)
            self.trace.handler(max(ctx.time, now), cpu,
                               self.desc.stl_id, "restart", restart)
        ctx.time = max(ctx.time, now) + restart
        ctx.status = "running"
        thread.acc_compute = 0.0
        thread.acc_wait = 0.0
        thread.acc_overhead = restart
        thread.start_time = ctx.time

    # ------------------------------------------------------------------
    def run(self):
        self._startup()
        config = self.config
        threads = self.threads
        ctxs = self.ctxs
        while True:
            head = threads[self.head_iteration % self.n]
            state = head.state
            if state == _WAIT_HEAD:
                self._commit(head)
                continue
            if state == _STALLED:
                self._resume_blocked(head)
                continue
            if state == _EXITED:
                return self._shutdown(head)
            if state == _EXCEPTION:
                self._shutdown_exception(head)
            if state == _SWITCH:
                self._do_switch(head)
                continue

            ctx = None
            best = None
            for candidate in ctxs:
                spec = candidate.spec
                if spec.state in (_RUN, _WAIT_LOCK):
                    if best is None or candidate.time < best:
                        best = candidate.time
                        ctx = candidate
            if ctx is None:
                raise VMError("TLS deadlock in STL %d" % self.desc.stl_id)

            spec = ctx.spec
            if spec.state == _WAIT_LOCK:
                self._poll_lock(ctx)
                continue

            frame = ctx.frames[-1]
            if frame.code[frame.pc].op == IROp.STL_RUN:
                # Nested STL while speculating: multilevel switch.
                spec.state = _SWITCH
                spec.block_time = ctx.time
                continue

            before = ctx.time
            try:
                signal = ctx.step()
            except GuestException as exc:
                spec.acc_compute += ctx.time - before
                spec.state = _EXCEPTION
                spec.pending_exception = exc
                spec.block_time = ctx.time
                continue
            except VMError as exc:
                # Wild speculative execution; real only if it reaches
                # the head.
                spec.acc_compute += ctx.time - before
                spec.state = _EXCEPTION
                spec.pending_exception = exc
                spec.block_time = ctx.time
                continue
            spec.acc_compute += ctx.time - before
            self.steps += 1
            if self.steps > self.max_steps:
                raise VMError("STL %d exceeded step budget"
                              % self.desc.stl_id)

            if spec.overflowed and not self.is_head(spec) \
                    and spec.state == _RUN:
                spec.state = _STALLED
                spec.block_time = ctx.time
                self.breakdown.overflow_stalls += 1
                self.runtime.stats_for(self.desc.stl_id).overflow_stalls += 1
                if self.trace is not None:
                    load_lines = len(spec.read_lines)
                    if load_lines > config.load_buffer_lines:
                        buffer, lines = "load", load_lines
                    else:
                        buffer, lines = "store", len(spec.store_lines)
                    self.trace.overflow(ctx.time, spec.cpu_id,
                                        self.desc.stl_id, spec.iteration,
                                        buffer, lines)
                continue

            if signal is None:
                continue
            if signal == "eoi":
                overhead = config.overheads.eoi
                ctx.time += overhead
                spec.acc_overhead += overhead
                spec.acc_compute -= 1  # STL_EOI_END's cycle is overhead
                spec.acc_overhead += 1
                if self.trace is not None:
                    self.trace.handler(ctx.time - overhead - 1,
                                       spec.cpu_id, self.desc.stl_id,
                                       "eoi", overhead + 1)
                spec.state = _WAIT_HEAD
                spec.block_time = ctx.time
            elif signal == "exit":
                exit_instr = frame.code[frame.pc - 1]
                spec.exit_id = exit_instr.aux
                spec.state = _EXITED
                spec.block_time = ctx.time
            elif signal == "wait":
                self._begin_lock_wait(ctx)
            elif signal == "done":
                raise VMError("thread code returned unexpectedly")

    # ------------------------------------------------------------------
    def _startup(self):
        config = self.config
        machine = self.machine
        master = self.master
        desc = self.desc
        overheads = config.overheads
        self.entry_master_time = master.time

        startup_cost = overheads.startup
        if desc.hoist and self.runtime.last_descriptor is desc:
            startup_cost = max(1, startup_cost
                               - config.hoisted_startup_cycles)
        self.runtime.last_descriptor = desc
        master.time += startup_cost
        self.breakdown.overhead += startup_cost
        self.breakdown.stl_entries += 1
        stats = self.runtime.stats_for(desc.stl_id)
        stats.entries += 1
        if self.trace is not None:
            self.trace.stl(master.time - startup_cost, master.cpu_id,
                           desc.stl_id, "enter", stats.entries)
            self.trace.handler(master.time - startup_cost,
                               master.cpu_id, desc.stl_id, "startup",
                               startup_cost)
            self.trace.cache_snapshot(master.time, machine.hierarchy,
                                      force=True)

        self.fp_addr = machine.stack_alloc(max(desc.frame_words, 1) * 4)
        master_regs = master.frames[-1].regs
        for off, reg in desc.init_values:
            machine.memory.store(self.fp_addr + off, master_regs[reg])
            machine.hierarchy.store_latency(master.cpu_id,
                                            self.fp_addr + off)
            master.time += 1
        for off, const in desc.init_consts:
            machine.memory.store(self.fp_addr + off, const)
            machine.hierarchy.store_latency(master.cpu_id,
                                            self.fp_addr + off)
            master.time += 1
        for spec in desc.reductions:
            self.entry_reductions[spec.acc_reg] = master_regs[spec.acc_reg]

        from ..hydra.machine import CpuContext, Frame
        start_time = master.time
        for cpu in range(self.n):
            ctx = CpuContext(machine, cpu)
            thread = SpecThreadState(cpu, cpu, self.fp_addr)
            ctx.spec = thread
            ctx.mem = SpecMemoryInterface(ctx, self)
            ctx.output_buffer = thread.pending_output
            frame = Frame(self.unit, [])
            frame.regs[desc.fp_reg] = self.fp_addr
            frame.regs[desc.iter_reg] = cpu
            for rspec in desc.reductions:
                frame.regs[rspec.acc_reg] = rspec.identity
            ctx.frames = [frame]
            ctx.status = "running"
            ctx.time = start_time
            thread.start_time = start_time
            self.ctxs.append(ctx)
            self.threads.append(thread)
            self.thread_frames.append(frame)
        self.last_commit_time = start_time

    # ------------------------------------------------------------------
    def _commit(self, thread):
        """The head thread finished its iteration: commit in order."""
        cpu = thread.cpu_id
        ctx = self.ctxs[cpu]
        now = max(ctx.time, self.last_commit_time)
        wait = max(0.0, now - thread.block_time)
        thread.acc_wait += wait
        ctx.time = now
        frame = self.thread_frames[cpu]

        # Reset-able inductors that were written unpredictably publish
        # the corrected value and squash every later thread (§4.2.3).
        if thread.request_reset:
            from ..bytecode.instructions import i32
            for rspec in thread.pending_resets:
                # The EOI handler already advanced the register by
                # step*(num_cpus-1) for this CPU's *own* next thread;
                # undo that to get the start-of-next-iteration value.
                value = i32(frame.regs[rspec.reg]
                            - rspec.step * (self.n - 1))
                self.machine.memory.store(self.fp_addr + rspec.slot_value,
                                          value)
                self.machine.memory.store(self.fp_addr + rspec.slot_iter,
                                          thread.iteration + 1)
            self.restart_from(thread.iteration + 1, now, cause="reset")

        self._drain_store_buffer(thread)
        if thread.pending_output:
            self.machine.output.extend(thread.pending_output)
            thread.pending_output.clear()
        for spec in self.desc.reductions:
            frame.regs[spec.acc_reg] = merge_reduction(
                spec.op_name, frame.regs[spec.acc_reg],
                frame.regs[spec.tmp_reg], spec.mask)

        # Accounting.
        self.breakdown.run_used += thread.acc_compute
        self.breakdown.wait_used += thread.acc_wait
        self.breakdown.overhead += thread.acc_overhead
        self.breakdown.commits += 1
        load_lines = len(thread.read_lines)
        store_lines = len(thread.store_lines)
        stats = self.runtime.stats_for(self.desc.stl_id)
        stats.threads_committed += 1
        stats.cycles_total += thread.acc_compute
        stats.sum_load_lines += load_lines
        stats.sum_store_lines += store_lines
        if load_lines > stats.max_load_lines:
            stats.max_load_lines = load_lines
        if store_lines > stats.max_store_lines:
            stats.max_store_lines = store_lines
        if self.trace is not None:
            self.trace.thread_span(thread.start_time, now, cpu,
                                   self.desc.stl_id, thread.iteration,
                                   "commit")
            self.trace.buffers(self.desc.stl_id, load_lines, store_lines)
            self.trace.cache_snapshot(now, self.machine.hierarchy)

        self.last_commit_time = now
        self.head_iteration += 1

        # Start this CPU's next thread (round robin: +num_cpus).
        thread.reset_speculative_state(thread.iteration + self.n)
        thread.acc_compute = 0.0
        thread.acc_wait = 0.0
        thread.acc_overhead = 0.0
        thread.start_time = ctx.time
        # Advance the hardware iteration register (paper Fig. 5: "set to
        # zero on STL startup, incremented on every thread commit") so a
        # cold restart recomputes inductors for the right iteration.
        frame.regs[self.desc.iter_reg] = thread.iteration
        frame.pc = self.desc.warm_entry
        ctx.frames = [frame]

    def _drain_store_buffer(self, thread):
        memory = self.machine.memory
        hierarchy = self.machine.hierarchy
        cpu = thread.cpu_id
        for addr, value in thread.store_buffer.items():
            memory.store(addr, value)
            hierarchy.store_latency(cpu, addr)

    def _resume_blocked(self, thread):
        """A stalled (overflowed) thread became the head: resume it."""
        ctx = self.ctxs[thread.cpu_id]
        now = max(ctx.time, self.last_commit_time)
        thread.acc_wait += max(0.0, now - thread.block_time)
        ctx.time = now
        thread.state = _RUN

    # ------------------------------------------------------------------
    def _begin_lock_wait(self, ctx):
        """WAITLOCK executed: spin until the lock equals our iteration."""
        spec = ctx.spec
        frame = ctx.frames[-1]
        instr = frame.code[frame.pc - 1]
        value, latency = ctx.mem.lwnv(self.fp_addr + instr.imm)
        ctx.time += latency
        if value == spec.iteration:
            return                      # lock already ours
        frame.pc -= 1                   # re-execute WAITLOCK when woken
        spec.state = _WAIT_LOCK
        spec.block_time = ctx.time
        self.breakdown.lock_waits += 1

    def _poll_lock(self, ctx):
        spec = ctx.spec
        frame = ctx.frames[-1]
        instr = frame.code[frame.pc]
        value, __ = ctx.mem.lwnv(self.fp_addr + instr.imm)
        if value == spec.iteration:
            spec.acc_wait += max(0.0, ctx.time - spec.block_time)
            spec.state = _RUN
            frame.pc += 1               # consume the WAITLOCK
            ctx.time += 1
        else:
            ctx.time += _LOCK_POLL_CYCLES

    # ------------------------------------------------------------------
    def _shutdown(self, thread):
        """The exiting thread is the head: end speculation (Fig. 4 #3)."""
        config = self.config
        ctx = self.ctxs[thread.cpu_id]
        now = max(ctx.time, self.last_commit_time)
        thread.acc_wait += max(0.0, now - thread.block_time)
        self._drain_store_buffer(thread)
        if thread.pending_output:
            self.machine.output.extend(thread.pending_output)
            thread.pending_output.clear()

        # The exiting iteration's committed work counts as used.
        self.breakdown.run_used += thread.acc_compute
        self.breakdown.wait_used += thread.acc_wait
        self.breakdown.overhead += thread.acc_overhead
        if self.trace is not None:
            self.trace.thread_span(thread.start_time, now,
                                   thread.cpu_id, self.desc.stl_id,
                                   thread.iteration, "exit")

        # Squash every other in-flight thread.
        for other_cpu, other in enumerate(self.threads):
            if other is thread:
                continue
            wait_extra = 0.0
            if other.state != _RUN:
                wait_extra = max(0.0, now - other.block_time)
            self.breakdown.run_violated += other.acc_compute
            self.breakdown.wait_violated += other.acc_wait + wait_extra
            self.breakdown.overhead += other.acc_overhead
            self.breakdown.squashes += 1
            if self.trace is not None:
                self.trace.thread_span(other.start_time, now, other_cpu,
                                       self.desc.stl_id, other.iteration,
                                       "squash")

        shutdown_cost = config.overheads.shutdown
        if self.desc.hoist:
            shutdown_cost = max(1, shutdown_cost
                                - config.hoisted_shutdown_cycles)
        now += shutdown_cost
        self.breakdown.overhead += shutdown_cost
        if self.trace is not None:
            self.trace.handler(now - shutdown_cost, thread.cpu_id,
                               self.desc.stl_id, "shutdown",
                               shutdown_cost)
            self.trace.stl(now, thread.cpu_id, self.desc.stl_id, "exit")
            self.trace.cache_snapshot(now, self.machine.hierarchy,
                                      force=True)

        # Copy communicated values back into the master's registers.
        master = self.master
        master_regs = master.frames[-1].regs
        master.time = now
        exit_frame = self.thread_frames[thread.cpu_id]
        for reg, source in self.desc.exit_values:
            kind, payload = source
            if kind == "slot":
                value = self.machine.memory.load(self.fp_addr + payload)
                latency = self.machine.hierarchy.load_latency(
                    master.cpu_id, self.fp_addr + payload)
                master.time += latency
            else:
                # Locally-computed value (inductor / reset-able): read
                # straight from the exiting thread's register file.
                value = exit_frame.regs[payload]
                master.time += 1
            master_regs[reg] = value
        for spec in self.desc.reductions:
            final = self.entry_reductions[spec.acc_reg]
            for cpu in range(self.n):
                final = merge_reduction(
                    spec.op_name, final,
                    self.thread_frames[cpu].regs[spec.acc_reg], spec.mask)
            final = merge_reduction(spec.op_name, final,
                                    exit_frame.regs[spec.tmp_reg], spec.mask)
            master_regs[spec.acc_reg] = final

        # Attribute the workers' executed instructions to the master so
        # RunResult.instructions covers the whole simulation.
        master.instret += sum(ctx.instret for ctx in self.ctxs)
        self.runtime.stats_for(self.desc.stl_id).wall_cycles += \
            master.time - self.entry_master_time
        self.machine.stack_release(self.fp_addr)
        return thread.exit_id

    def _shutdown_exception(self, thread):
        """A guest exception became real (the thread is the head)."""
        ctx = self.ctxs[thread.cpu_id]
        now = max(ctx.time, self.last_commit_time)
        self._drain_store_buffer(thread)
        self.master.time = now + self.config.overheads.shutdown
        self.runtime.stats_for(self.desc.stl_id).wall_cycles += \
            self.master.time - self.entry_master_time
        self.machine.stack_release(self.fp_addr)
        raise thread.pending_exception

    # ------------------------------------------------------------------
    def _do_switch(self, thread):
        """Multilevel STL decomposition (paper §4.2.6, Fig. 7): the head
        thread switches speculation to an inner STL, runs it, then outer
        speculation resumes."""
        cpu = thread.cpu_id
        ctx = self.ctxs[cpu]
        now = max(ctx.time, self.last_commit_time)
        thread.acc_wait += max(0.0, now - thread.block_time)
        ctx.time = now
        thread.state = _RUN

        # As the head our buffered work is correct: commit it so the
        # inner STL (running non-speculatively under us) sees it.
        self._drain_store_buffer(thread)
        thread.store_buffer.clear()
        thread.store_lines.clear()
        thread.read_versions.clear()
        thread.read_lines.clear()
        if thread.pending_output:
            self.machine.output.extend(thread.pending_output)
            thread.pending_output.clear()

        # Squash the more-speculative outer threads; they restart after
        # the inner loop completes.
        for other in self.threads:
            if other.iteration > thread.iteration:
                self.breakdown.run_violated += other.acc_compute
                self.breakdown.wait_violated += other.acc_wait
                self.breakdown.overhead += other.acc_overhead
                self.breakdown.squashes += 1
                self.runtime.stats_for(self.desc.stl_id).restarts += 1
                if self.trace is not None:
                    self.trace.thread_span(other.start_time, now,
                                           other.cpu_id,
                                           self.desc.stl_id,
                                           other.iteration, "squash")
                    self.trace.restart(now, other.cpu_id,
                                       self.desc.stl_id,
                                       other.iteration, "switch", False)

        frame = ctx.frames[-1]
        inner_desc = frame.code[frame.pc].aux
        saved_spec = ctx.spec
        saved_mem = ctx.mem
        saved_out = ctx.output_buffer
        ctx.spec = None
        from ..hydra.machine import PlainMemoryInterface
        ctx.mem = PlainMemoryInterface(ctx)
        ctx.output_buffer = None
        try:
            exit_id = _StlExecution(self.runtime, ctx, inner_desc).run()
        finally:
            ctx.spec = saved_spec
            ctx.mem = saved_mem
            ctx.output_buffer = saved_out
        stl_run = frame.code[frame.pc]
        if stl_run.dst is not None:
            frame.regs[stl_run.dst] = exit_id
        frame.pc += 1

        # Restart the squashed successors after the inner loop.
        after = ctx.time
        restart = self.config.overheads.restart
        for other_cpu, other in enumerate(self.threads):
            if other.iteration > thread.iteration:
                other.reset_speculative_state()
                other_frame = self.thread_frames[other_cpu]
                other_frame.pc = 0
                other_ctx = self.ctxs[other_cpu]
                other_ctx.frames = [other_frame]
                other_ctx.time = after + restart
                other.acc_compute = 0.0
                other.acc_wait = 0.0
                other.acc_overhead = restart
                other.start_time = other_ctx.time
