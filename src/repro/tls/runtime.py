"""The TLS runtime: drives speculative loop execution (paper §2, Fig. 4).

``run_stl`` simulates one STL region: the master CPU executes the
STL_STARTUP handler (saving initialization values to the runtime
stack), four speculative CPUs run loop iterations round-robin, commits
happen in order, RAW violations restart the violated thread and every
more-speculative thread, and the exiting thread — once it is the head —
runs STL_SHUTDOWN and hands control back to the master.

Two observationally-identical schedulers drive the speculative CPUs:

* **stepwise** — the original loop: always advance the runnable CPU
  with the smallest local clock by *one instruction*, so memory events
  are totally ordered on the simulated clock and violation detection
  is exact.  Kept as the differential oracle (``--scheduler
  stepwise``).
* **event-driven** (the default, requires ``fastpath``) — each CPU
  *runs ahead* through its straight-line local work (ALU blocks,
  branches, calls — the fused superinstructions
  :mod:`repro.engine.ir_engine` builds) and *parks* at its next
  scheduler event: any memory/sync/TLS op that can observe or mutate
  cross-CPU state.  The scheduler then executes parked events in the
  same lexicographic ``(clock, cpu-index)`` order the stepwise loop
  would, so every cross-CPU observable — violation arcs, commits,
  forwarding, lock acquires, cache counters, trace events — is
  bit-identical.  Run-ahead is speculative *simulator* state only:
  when an earlier event restarts/squashes/reads a CPU that ran ahead,
  the scheduler rewinds it to its segment snapshot and replays
  per-instruction up to the cut, reproducing the exact stepwise
  architectural state (registers, clock, instret, pending output).
  Local ops never touch memory, caches, buffers or the profiler, so
  phantom run-ahead work leaks nothing observable.

The equivalence is enforced end-to-end by
``tests/test_scheduler_differential.py`` (byte-identical reports and
trace streams across the workload registry).
"""

from ..engine.ir_engine import step_table, tls_cost_map, tls_event_map
from ..errors import GuestException, VMError
from ..jit.ir import IROp
from ..jit.patterns import merge_reduction
from .buffers import SpecMemoryInterface, SpecThreadState
from .stats import StlRunStats, TlsStateBreakdown

_RUN = SpecThreadState.RUNNING
_WAIT_HEAD = SpecThreadState.WAIT_HEAD
_EXITED = SpecThreadState.EXITED
_STALLED = SpecThreadState.STALLED
_WAIT_LOCK = SpecThreadState.WAIT_LOCK
_EXCEPTION = SpecThreadState.EXCEPTION
_SWITCH = "switch"

_LOCK_POLL_CYCLES = 3


class _ThreadCodeUnit:
    """Adapts an StlDescriptor to the Frame interface (code/nregs/name)."""

    __slots__ = ("code", "nregs", "name", "stls", "_dispatch",
                 "_dispatch_step", "_tls_events", "_tls_costs",
                 "warm_entries")

    def __init__(self, descriptor):
        self.code = descriptor.thread_code
        self.nregs = descriptor.nregs
        self.name = "%s$stl%d" % (descriptor.method_name, descriptor.stl_id)
        self.stls = {}
        #: predecoded handler table caches (repro.engine.ir_engine):
        #: block-fused for run-ahead / sequential dispatch, stepwise
        #: for the per-instruction oracle scheduler and truncation
        #: replay, plus the scheduler-event bitmap
        self._dispatch = None
        self._dispatch_step = None
        self._tls_events = None
        self._tls_costs = None
        #: every commit re-enters the thread code at warm_entry, so the
        #: predecoder must treat it as a block leader of its own
        self.warm_entries = (descriptor.warm_entry,)


class TlsRuntime:
    """Owns cross-STL state: statistics and the hoisting warm flag."""

    def __init__(self, machine):
        self.machine = machine
        self.config = machine.config
        self.breakdown = TlsStateBreakdown()
        self.stl_stats = {}
        self.last_descriptor = None     # for hoisted startup/shutdown
        machine.tls_runtime = self

    def stats_for(self, loop_id):
        stats = self.stl_stats.get(loop_id)
        if stats is None:
            stats = self.stl_stats[loop_id] = StlRunStats(loop_id)
        return stats

    def run_stl(self, master_ctx, descriptor):
        execution = _StlExecution(self, master_ctx, descriptor)
        return execution.run()


class _StlExecution:
    """One dynamic entry into one STL."""

    def __init__(self, runtime, master_ctx, descriptor):
        self.runtime = runtime
        self.machine = runtime.machine
        self.config = runtime.config
        self.breakdown = runtime.breakdown
        #: trace collector (or None) — every emission site below is
        #: guarded so disabled tracing costs one is-None check on
        #: control events only (see repro.trace)
        self.trace = runtime.machine.trace
        self.master = master_ctx
        self.desc = descriptor
        self.n = self.config.num_cpus
        self.head_iteration = 0
        self.last_commit_time = 0.0
        self.ctxs = []
        self.threads = []
        self.thread_frames = []
        self.fp_addr = None
        self.entry_reductions = {}
        self.unit = _ThreadCodeUnit(descriptor)
        #: runaway guard: *simulated instructions* executed inside this
        #: STL entry (not scheduler iterations), so the budget fires at
        #: the same point under stepwise, event-driven and legacy
        #: dispatch — commits, polls and restarts don't consume it,
        #: instructions (including raising ones) do.
        self.steps = 0
        self.max_steps = 200_000_000
        # -- event-driven scheduler state (None => stepwise mode) ------
        #: per-CPU segment snapshot for run-ahead truncation:
        #: (time, instret, compute_cycles, acc_compute, pending-output
        #: length, [(frame, pc, regs-copy), ...])
        self._seg = None
        self._park_kind = None       # "op" | "exc" | "poll" | "run"
        self._park_time = None
        self._park_payload = None
        self._counted = None         # instret watermark per CPU
        #: position (time, cpu-index) of the event being executed — the
        #: truncation cut: stepwise would have executed exactly the
        #: instructions lexicographically before it
        self._cut_t = 0.0
        self._cut_i = -1
        #: bumped whenever an event mutates another CPU's schedule
        #: (restart/squash) — invalidates the event loop's cached
        #: second-best park position, ending the current event chain
        self._gen = 0
        #: master clock at STL entry — _shutdown charges the elapsed
        #: wall cycles to StlRunStats.wall_cycles (realized-speedup
        #: denominator for the adapt controller)
        self.entry_master_time = 0.0

    # ------------------------------------------------------------------
    # speculation services used by SpecMemoryInterface
    # ------------------------------------------------------------------
    def less_speculative(self, spec):
        return sorted((t for t in self.threads
                       if t.iteration < spec.iteration),
                      key=lambda t: -t.iteration)

    def is_head(self, spec):
        return spec.iteration == self.head_iteration

    def flag_overflow(self, spec):
        spec.overflowed = True

    def notify_store(self, storer, addr):
        """RAW violation check: any more-speculative thread whose
        speculative-read tag for *addr* is vulnerable must restart — and
        (Hydra protocol, Fig. 4) so must everything above it."""
        min_violated = None
        victim = None
        for thread in self.threads:
            if thread.iteration <= storer.iteration:
                continue
            if thread.read_versions.get(addr):
                if min_violated is None or \
                        thread.iteration < min_violated:
                    min_violated = thread.iteration
                    victim = thread
        if min_violated is not None:
            now = self.ctxs[storer.cpu_id].time
            if self.trace is not None:
                # The RAW arc: the storer's current instruction is the
                # source; the victim's tagged first-read of addr is the
                # sink (recorded by SpecMemoryInterface while tracing).
                self.trace.violation(
                    now, storer.cpu_id, self.desc.stl_id,
                    storer.iteration, min_violated, addr,
                    self.ctxs[storer.cpu_id].current_site,
                    victim.read_sites.get(addr))
            self.restart_from(min_violated, now, cause="violation")

    def restart_from(self, first_iteration, now, cause):
        for cpu, thread in enumerate(self.threads):
            if thread.iteration >= first_iteration:
                self._restart_thread(cpu, now,
                                     primary=(thread.iteration
                                              == first_iteration),
                                     cause=cause)

    def _restart_thread(self, cpu, now, primary, cause):
        if self._seg is not None:
            # Event mode: the victim may have run ahead of the cut —
            # rewind to the exact stepwise state before reading its
            # clock/accounting below.
            self._truncate(cpu)
            self._park_kind[cpu] = None
            self._gen += 1
        thread = self.threads[cpu]
        ctx = self.ctxs[cpu]
        # Account the discarded attempt.
        wait_extra = 0.0
        if thread.state not in (_RUN,):
            wait_extra = max(0.0, now - thread.block_time)
        self.breakdown.run_violated += thread.acc_compute
        self.breakdown.wait_violated += thread.acc_wait + wait_extra
        self.breakdown.overhead += thread.acc_overhead
        stats = self.runtime.stats_for(self.desc.stl_id)
        stats.restarts += 1
        if primary and cause == "violation":
            self.breakdown.violations += 1
            stats.violations += 1
        else:
            self.breakdown.squashes += 1
        # Reset: same iteration, cold entry, registers persist.
        thread.reset_speculative_state()
        frame = self.thread_frames[cpu]
        frame.pc = 0
        ctx.frames = [frame]
        restart = self.config.overheads.restart
        if self.trace is not None:
            self.trace.thread_span(
                thread.start_time, now, cpu, self.desc.stl_id,
                thread.iteration, "restart" if primary else "squash")
            self.trace.restart(now, cpu, self.desc.stl_id,
                               thread.iteration, cause, primary)
            self.trace.handler(max(ctx.time, now), cpu,
                               self.desc.stl_id, "restart", restart)
        ctx.time = max(ctx.time, now) + restart
        ctx.status = "running"
        thread.acc_compute = 0.0
        thread.acc_wait = 0.0
        thread.acc_overhead = restart
        thread.start_time = ctx.time

    # ------------------------------------------------------------------
    def run(self):
        """Simulate this STL entry with the configured scheduler.

        The event-driven scheduler needs the predecoded engine's block
        functions and per-instruction step tables, so ``--no-fastpath``
        always runs stepwise (keeping the legacy engine an unmodified
        reference path, like the hierarchy memo)."""
        if (getattr(self.config, "scheduler", "event") == "event"
                and getattr(self.config, "fastpath", True)):
            return self._run_event()
        return self._run_stepwise()

    def _run_stepwise(self):
        self._startup()
        config = self.config
        threads = self.threads
        ctxs = self.ctxs
        while True:
            head = threads[self.head_iteration % self.n]
            state = head.state
            if state == _WAIT_HEAD:
                self._commit(head)
                continue
            if state == _STALLED:
                self._resume_blocked(head)
                continue
            if state == _EXITED:
                return self._shutdown(head)
            if state == _EXCEPTION:
                self._shutdown_exception(head)
            if state == _SWITCH:
                self._do_switch(head)
                continue

            ctx = None
            best = None
            for candidate in ctxs:
                spec = candidate.spec
                if spec.state in (_RUN, _WAIT_LOCK):
                    if best is None or candidate.time < best:
                        best = candidate.time
                        ctx = candidate
            if ctx is None:
                raise VMError("TLS deadlock in STL %d" % self.desc.stl_id)

            spec = ctx.spec
            if spec.state == _WAIT_LOCK:
                self._poll_lock(ctx)
                continue

            frame = ctx.frames[-1]
            if frame.code[frame.pc].op == IROp.STL_RUN:
                # Nested STL while speculating: multilevel switch.
                spec.state = _SWITCH
                spec.block_time = ctx.time
                continue

            before = ctx.time
            try:
                signal = ctx.step()
            except GuestException as exc:
                spec.acc_compute += ctx.time - before
                self.steps += 1          # the raising instruction counts
                spec.state = _EXCEPTION
                spec.pending_exception = exc
                spec.block_time = ctx.time
                continue
            except VMError as exc:
                # Wild speculative execution; real only if it reaches
                # the head.
                spec.acc_compute += ctx.time - before
                self.steps += 1
                spec.state = _EXCEPTION
                spec.pending_exception = exc
                spec.block_time = ctx.time
                continue
            spec.acc_compute += ctx.time - before
            self.steps += 1
            if self.steps > self.max_steps:
                raise VMError("STL %d exceeded step budget"
                              % self.desc.stl_id)

            if spec.overflowed and not self.is_head(spec) \
                    and spec.state == _RUN:
                spec.state = _STALLED
                spec.block_time = ctx.time
                self.breakdown.overflow_stalls += 1
                self.runtime.stats_for(self.desc.stl_id).overflow_stalls += 1
                if self.trace is not None:
                    load_lines = len(spec.read_lines)
                    if load_lines > config.load_buffer_lines:
                        buffer, lines = "load", load_lines
                    else:
                        buffer, lines = "store", len(spec.store_lines)
                    self.trace.overflow(ctx.time, spec.cpu_id,
                                        self.desc.stl_id, spec.iteration,
                                        buffer, lines)
                continue

            if signal is None:
                continue
            if signal == "eoi":
                overhead = config.overheads.eoi
                ctx.time += overhead
                spec.acc_overhead += overhead
                spec.acc_compute -= 1  # STL_EOI_END's cycle is overhead
                spec.acc_overhead += 1
                if self.trace is not None:
                    self.trace.handler(ctx.time - overhead - 1,
                                       spec.cpu_id, self.desc.stl_id,
                                       "eoi", overhead + 1)
                spec.state = _WAIT_HEAD
                spec.block_time = ctx.time
            elif signal == "exit":
                exit_instr = frame.code[frame.pc - 1]
                spec.exit_id = exit_instr.aux
                spec.state = _EXITED
                spec.block_time = ctx.time
            elif signal == "wait":
                self._begin_lock_wait(ctx)
            elif signal == "done":
                raise VMError("thread code returned unexpectedly")

    # ------------------------------------------------------------------
    # event-driven scheduler
    # ------------------------------------------------------------------
    #: run-ahead chunk: dispatches before yielding back to the
    #: scheduler, so a wild (doomed-to-restart) thread spinning in a
    #: pure-ALU loop cannot starve the event loop or the step budget
    _CHUNK = 4096

    def _run_event(self):
        """Event-driven main loop: park every runnable CPU at its next
        scheduler event, then execute parked events in stepwise
        ``(clock, cpu-index)`` order.  Head-of-queue services (commit,
        resume, shutdown, switch) run after each event, exactly where
        the stepwise loop re-checks them.  The event execution body is
        inlined here (it is the per-event hot path) and mirrors the
        stepwise loop body statement for statement."""
        self._startup()
        n = self.n
        self._seg = seg = [None] * n
        self._park_kind = park_kind = [None] * n
        self._park_time = park_time = [0.0] * n
        self._park_payload = [None] * n
        self._counted = counted = [0] * n
        threads = self.threads
        ctxs = self.ctxs
        config = self.config
        call_pad = config.call_overhead_cycles
        while True:
            head = threads[self.head_iteration % n]
            hstate = head.state
            if hstate is not _RUN:       # state strings are interned
                if hstate is _WAIT_HEAD:
                    self._commit(head)
                    continue
                if hstate is _STALLED:
                    self._resume_blocked(head)
                    continue
                if hstate is _EXITED:
                    return self._shutdown(head)
                if hstate is _EXCEPTION:
                    self._shutdown_exception(head)
                if hstate is _SWITCH:
                    self._do_switch(head)
                    continue
                # _WAIT_LOCK head falls through to the event scan.

            # Park every running CPU, then pick the earliest position —
            # tracking the runner-up too, so a chain of events on the
            # same CPU can keep executing without rescanning while it
            # stays ahead of every other CPU.
            best = -1
            best_t = 0.0
            second = -1
            second_t = 0.0
            for cpu in range(n):
                tstate = threads[cpu].state
                if tstate is _RUN:
                    if park_kind[cpu] is None:
                        self._advance(cpu)
                elif tstate is not _WAIT_LOCK:
                    continue
                t = park_time[cpu]
                if best < 0 or t < best_t:
                    second = best
                    second_t = best_t
                    best = cpu
                    best_t = t
                elif second < 0 or t < second_t:
                    second = cpu
                    second_t = t
            if best < 0:
                raise VMError("TLS deadlock in STL %d" % self.desc.stl_id)

            kind = park_kind[best]
            if kind == "op":
                ctx = ctxs[best]
                spec = ctx.spec
                gen = self._gen
                # Event chain: execute this CPU's parked event, and as
                # long as the event completes without a state change, a
                # signal or a cross-CPU restart (which would invalidate
                # the cached runner-up position or require a head
                # service), run ahead and execute its next event too
                # while that event still precedes the runner-up park.
                # The handler/event/cost tables are hoisted across the
                # whole chain: event handlers never touch the frame
                # stack (CALL/RET are *local* ops), so the tables only
                # change in the run-ahead loop's frame-switch arm.
                frames = ctx.frames
                frame = frames[-1]
                unit = frame.compiled
                events = unit._tls_events
                if events is None:
                    events = tls_event_map(unit)
                costs = unit._tls_costs
                if costs is None:
                    costs = tls_cost_map(unit, call_pad)
                handlers = frame.handlers
                # Consume the scan-selected park.  (Chained events are
                # never parked, so the clears live here and on the
                # park-consuming continue paths, not in the loop body.)
                park_kind[best] = None
                seg[best] = None         # the segment becomes history
                while True:
                    # -- one parked instruction-event (stepwise body) --
                    # ("op" parks are never STL_RUN: the event map
                    # classifies those separately and they park as
                    # "stl" — see the dispatcher below.)
                    self._cut_t = best_t
                    self._cut_i = best
                    pc = frame.pc
                    before = ctx.time
                    try:
                        signal = handlers[pc](ctx, frame)
                    except (GuestException, VMError) as exc:
                        # Wild speculative execution; real only if it
                        # reaches the head.
                        spec.acc_compute += ctx.time - before
                        self._account(best)
                        spec.state = _EXCEPTION
                        spec.pending_exception = exc
                        spec.block_time = ctx.time
                        break
                    spec.acc_compute += ctx.time - before

                    if spec.overflowed and not self.is_head(spec) \
                            and spec.state is _RUN:
                        spec.state = _STALLED
                        spec.block_time = ctx.time
                        self.breakdown.overflow_stalls += 1
                        self.runtime.stats_for(
                            self.desc.stl_id).overflow_stalls += 1
                        if self.trace is not None:
                            load_lines = len(spec.read_lines)
                            if load_lines > config.load_buffer_lines:
                                buffer, lines = "load", load_lines
                            else:
                                buffer, lines = ("store",
                                                 len(spec.store_lines))
                            self.trace.overflow(
                                ctx.time, spec.cpu_id, self.desc.stl_id,
                                spec.iteration, buffer, lines)
                        break

                    if signal is not None:
                        if signal == "eoi":
                            overhead = config.overheads.eoi
                            ctx.time += overhead
                            spec.acc_overhead += overhead
                            spec.acc_compute -= 1  # STL_EOI_END's cycle
                            spec.acc_overhead += 1
                            if self.trace is not None:
                                self.trace.handler(
                                    ctx.time - overhead - 1, spec.cpu_id,
                                    self.desc.stl_id, "eoi",
                                    overhead + 1)
                            spec.state = _WAIT_HEAD
                            spec.block_time = ctx.time
                        elif signal == "exit":
                            exit_instr = frame.code[frame.pc - 1]
                            spec.exit_id = exit_instr.aux
                            spec.state = _EXITED
                            spec.block_time = ctx.time
                        elif signal == "wait":
                            self._begin_lock_wait(ctx)
                            if spec.state is _WAIT_LOCK:
                                park_kind[best] = "poll"
                                park_time[best] = ctx.time
                        elif signal == "done":
                            raise VMError(
                                "thread code returned unexpectedly")
                        break

                    # Clean completion, thread still running: chain.
                    if self._gen != gen:
                        break            # a restart moved other CPUs
                    top = frames[-1]
                    if top is not frame:
                        # CALLV is an event *and* pushes a frame:
                        # refresh the hoisted tables.
                        frame = top
                        unit = frame.compiled
                        events = unit._tls_events
                        if events is None:
                            events = tls_event_map(unit)
                        costs = unit._tls_costs
                        if costs is None:
                            costs = tls_cost_map(unit, call_pad)
                        handlers = frame.handlers
                    if second < 0:
                        # No runner-up: fall back to the generic
                        # advance (chunked against runaway threads).
                        self._advance(best)
                        if park_kind[best] != "op":
                            break
                        best_t = park_time[best]
                        park_kind[best] = None
                        seg[best] = None
                        # _advance may have moved the frame stack:
                        # refresh the hoisted tables.
                        frame = frames[-1]
                        unit = frame.compiled
                        events = unit._tls_events
                        costs = unit._tls_costs
                        if costs is None:
                            costs = tls_cost_map(unit, call_pad)
                        handlers = frame.handlers
                        continue         # sole active CPU: always next

                    # Merged run-ahead.  While every dispatch provably
                    # completes below the runner-up park position, each
                    # instruction this CPU executes — local *or* event
                    # — is immediately the global minimum: no future
                    # cut can order before it, so it runs with no
                    # segment snapshot, no park and no rescan.  The
                    # first dispatch that *might* cross the runner-up
                    # takes the snapshot, and the loop continues under
                    # rewind protection exactly like _advance.
                    acc0 = spec.acc_compute
                    t0 = ctx.time
                    exit_kind = 0        # 0 = parked, 1 = event, 2 = exc
                    cur_seg = None
                    budget = 0
                    while True:
                        pc = frame.pc
                        ev = events[pc]
                        if ev:
                            t = ctx.time
                            if cur_seg is None and \
                                    (t < second_t
                                     or (t == second_t and best < second)):
                                if ev == 1:
                                    exit_kind = 1
                                    break
                                # STL_RUN ahead of every other CPU:
                                # transition to the multilevel switch
                                # immediately.
                                self._cut_t = t
                                self._cut_i = best
                                spec.state = _SWITCH
                                spec.block_time = t
                                break
                            park_kind[best] = "op" if ev == 1 else "stl"
                            park_time[best] = t
                            break
                        if cur_seg is None:
                            if ctx.time + costs[pc] > second_t:
                                # This dispatch may cross the runner-up:
                                # snapshot, then continue protected.
                                if len(frames) == 1:
                                    cur_seg = (
                                        ctx.time, ctx.instret,
                                        ctx.compute_cycles, acc0
                                        + (ctx.time - t0),
                                        len(spec.pending_output),
                                        frame, pc, frame.regs[:])
                                else:
                                    cur_seg = (
                                        ctx.time, ctx.instret,
                                        ctx.compute_cycles, acc0
                                        + (ctx.time - t0),
                                        len(spec.pending_output),
                                        [(f, f.pc, f.regs[:])
                                         for f in frames])
                                seg[best] = cur_seg
                                budget = self._CHUNK
                        else:
                            budget -= 1
                            if budget == 0:
                                park_kind[best] = "run"
                                park_time[best] = ctx.time
                                break
                        try:
                            signal = handlers[pc](ctx, frame)
                        except (GuestException, VMError) as exc:
                            if cur_seg is None:
                                # Raise-flush left ctx.time at the
                                # raising instruction's pre-step clock
                                # — provably ahead of every other CPU,
                                # so transition immediately.
                                pending = exc
                                exit_kind = 2
                            else:
                                self._park_payload[best] = exc
                                park_kind[best] = "exc"
                                park_time[best] = ctx.time
                            break
                        if signal is not None:
                            # RET drained the frame stack.
                            if cur_seg is None:
                                # Nothing can precede it: raise at
                                # once, exactly like stepwise.
                                raise VMError(
                                    "thread code returned unexpectedly")
                            # Under the snapshot an earlier event may
                            # legitimately restart this thread first:
                            # undo the step and park *before* it.
                            frame.pc = pc
                            frames.append(frame)
                            ctx.status = "running"
                            ctx.return_value = None
                            ctx.time -= 1
                            ctx.instret -= 1
                            ctx.compute_cycles -= 1
                            park_kind[best] = "op"
                            park_time[best] = ctx.time
                            break
                        top = frames[-1]
                        if top is not frame:     # CALL/RET moved frames
                            frame = top
                            unit = frame.compiled
                            events = unit._tls_events
                            if events is None:
                                events = tls_event_map(unit)
                            costs = unit._tls_costs
                            if costs is None:
                                costs = tls_cost_map(unit, call_pad)
                            handlers = frame.handlers
                    spec.acc_compute = acc0 + (ctx.time - t0)
                    instret = ctx.instret
                    delta = instret - counted[best]
                    if delta:
                        counted[best] = instret
                        self.steps += delta
                        if delta > 0 and self.steps > self.max_steps:
                            raise VMError("STL %d exceeded step budget"
                                          % self.desc.stl_id)
                    if exit_kind == 1:
                        best_t = ctx.time
                        continue         # chain: this event is next too
                    if exit_kind == 2:
                        self._cut_t = ctx.time
                        self._cut_i = best
                        spec.state = _EXCEPTION
                        spec.pending_exception = pending
                        spec.block_time = ctx.time
                        break
                    if park_kind[best] != "op":
                        break            # transitioned or parked non-op
                    t = park_time[best]
                    if t < second_t or (t == second_t and best < second):
                        best_t = t
                        park_kind[best] = None
                        seg[best] = None
                        continue         # still globally minimal
                    break                # overtaken: full rescan
            elif kind == "run":          # chunk-yield: resume run-ahead
                self._advance(best)
            elif kind == "poll":
                self._poll_event(best)
            elif kind == "stl":
                # Nested STL_RUN while speculating: multilevel switch.
                self._cut_t = best_t
                self._cut_i = best
                spec = threads[best]
                spec.state = _SWITCH
                spec.block_time = ctxs[best].time
                park_kind[best] = None
                seg[best] = None
            else:                        # "exc": parked guest/VM error
                self._cut_t = best_t
                self._cut_i = best
                spec = threads[best]
                spec.state = _EXCEPTION
                spec.pending_exception = self._park_payload[best]
                spec.block_time = ctxs[best].time
                self._park_payload[best] = None
                park_kind[best] = None
                seg[best] = None

    def _clear(self, cpu):
        """The CPU's parked event executed (or its thread left the RUN
        state at it): the segment becomes immutable history — every
        later cut orders after this position — so drop it."""
        self._park_kind[cpu] = None
        self._seg[cpu] = None

    def _account(self, cpu):
        """Fold the CPU's new instructions into the step budget (the
        watermark makes this idempotent and truncation-aware)."""
        ctx = self.ctxs[cpu]
        delta = ctx.instret - self._counted[cpu]
        if delta:
            self._counted[cpu] = ctx.instret
            self.steps += delta
            if delta > 0 and self.steps > self.max_steps:
                raise VMError("STL %d exceeded step budget"
                              % self.desc.stl_id)

    def _advance(self, cpu):
        """Run *cpu* ahead through local instructions (block dispatch)
        until it parks at its next scheduler event, raises, or exhausts
        the run-ahead chunk.  The handler and event tables are hoisted
        per frame (they only change on CALL/RET)."""
        ctx = self.ctxs[cpu]
        spec = ctx.spec
        frames = ctx.frames
        seg = self._seg[cpu]
        if seg is None:                  # fresh segment (not a resume)
            if len(frames) == 1:
                frame = frames[0]
                seg = (ctx.time, ctx.instret, ctx.compute_cycles,
                       spec.acc_compute, len(spec.pending_output),
                       frame, frame.pc, frame.regs[:])
            else:
                seg = (ctx.time, ctx.instret, ctx.compute_cycles,
                       spec.acc_compute, len(spec.pending_output),
                       [(f, f.pc, f.regs[:]) for f in frames])
            self._seg[cpu] = seg
        frame = frames[-1]
        events = frame.compiled._tls_events
        if events is None:
            events = tls_event_map(frame.compiled)
        handlers = frame.handlers
        budget = self._CHUNK
        while True:
            pc = frame.pc
            ev = events[pc]
            if ev:
                kind = "op" if ev == 1 else "stl"
                break
            try:
                signal = handlers[pc](ctx, frame)
            except (GuestException, VMError) as exc:
                # Raise-flush left ctx.time at the raising
                # instruction's pre-step clock — exactly its stepwise
                # scheduling position.
                self._park_payload[cpu] = exc
                kind = "exc"
                break
            if signal is not None:
                # RET drained the frame stack ("thread code returned").
                # Undo the step and park *before* it so the event loop
                # raises at the exact stepwise position — an earlier
                # event may legitimately restart this thread first.
                frame.pc = pc
                frames.append(frame)
                ctx.status = "running"
                ctx.return_value = None
                ctx.time -= 1
                ctx.instret -= 1
                ctx.compute_cycles -= 1
                kind = "op"
                break
            top = frames[-1]
            if top is not frame:         # CALL/RET changed frames
                frame = top
                events = frame.compiled._tls_events
                if events is None:
                    events = tls_event_map(frame.compiled)
                handlers = frame.handlers
            budget -= 1
            if budget == 0:
                kind = "run"
                break
        self._park_kind[cpu] = kind
        self._park_time[cpu] = ctx.time
        if kind != "run":
            # Settle the local run's compute cycles (assignment from
            # the snapshot: idempotent under later truncation).
            spec.acc_compute = seg[3] + (ctx.time - seg[0])
        # _account, inlined (this is the per-event hot path)
        instret = ctx.instret
        delta = instret - self._counted[cpu]
        if delta:
            self._counted[cpu] = instret
            self.steps += delta
            if delta > 0 and self.steps > self.max_steps:
                raise VMError("STL %d exceeded step budget"
                              % self.desc.stl_id)

    def _poll_event(self, cpu):
        """One lock poll at its stepwise position, plus wake-at-release
        fast-forward: the lock word can only change at a scheduler
        event (stores publish at events; forwarding sources mutate at
        events), so every further poll scheduled before the earliest
        other pending position must also fail — charge those polls in
        bulk without re-entering the scheduler.  Cycle charges and
        cache counters stay identical to the polled model: in the
        skipped window only this CPU touches the hierarchy, so each
        elided ``lwnv`` is a memoized repeat same-line load
        (tick/hits advance by exactly one — see
        :class:`repro.hydra.cache.MemoryHierarchy`)."""
        ctx = self.ctxs[cpu]
        spec = ctx.spec
        frame = ctx.frames[-1]
        instr = frame.code[frame.pc]
        addr = self.fp_addr + instr.imm
        value, __ = ctx.mem.lwnv(addr)
        if value == spec.iteration:
            spec.acc_wait += max(0.0, ctx.time - spec.block_time)
            spec.state = _RUN
            frame.pc += 1               # consume the WAITLOCK
            ctx.time += 1
            self._park_kind[cpu] = None
            return
        ctx.time += _LOCK_POLL_CYCLES

        # earliest possible position of any other CPU's next event
        bound_t = None
        bound_i = -1
        threads = self.threads
        for other in range(self.n):
            if other == cpu:
                continue
            state = threads[other].state
            if state == _RUN or state == _WAIT_LOCK:
                if self._park_kind[other] is not None:
                    t = self._park_time[other]
                else:
                    t = self.ctxs[other].time
                if bound_t is None or t < bound_t:
                    bound_t = t
                    bound_i = other
        if bound_t is not None:
            extra = 0
            t = ctx.time
            while t < bound_t or (t == bound_t and cpu < bound_i):
                extra += 1
                t += _LOCK_POLL_CYCLES
            if extra:
                __, __, source = ctx.mem._find_version(addr)
                if source == "memory" and addr > 0:
                    l1 = self.machine.hierarchy.l1[cpu]
                    l1.tick += extra
                    l1.hits += extra
                ctx.time = t
        self._park_kind[cpu] = "poll"
        self._park_time[cpu] = ctx.time

    def _truncate(self, cpu):
        """Rewind a run-ahead CPU to the stepwise cut: restore the
        segment snapshot, then replay per-instruction every local op
        whose pre-step clock orders before ``self._cut``.  Replay only
        re-executes deterministic register-local work, so the resulting
        architectural state is bit-identical to the stepwise
        scheduler's at this point."""
        seg = self._seg[cpu]
        if seg is None:
            return
        ctx = self.ctxs[cpu]
        spec = ctx.spec
        if len(seg) == 8:                # flat single-frame snapshot
            t0, i0, c0, acc0, out0, f, pc, regs = seg
            f.pc = pc
            f.regs[:] = regs
            ctx.frames = [f]
        else:
            t0, i0, c0, acc0, out0, frames0 = seg
            restored = []
            for f, pc, regs in frames0:
                f.pc = pc
                f.regs[:] = regs
                restored.append(f)
            ctx.frames = restored
        ctx.status = "running"
        ctx.time = t0
        ctx.instret = i0
        ctx.compute_cycles = c0
        del spec.pending_output[out0:]
        cut_t = self._cut_t
        cut_i = self._cut_i
        while ctx.time < cut_t or (ctx.time == cut_t and cpu < cut_i):
            frame = ctx.frames[-1]
            step_table(frame.compiled)[frame.pc](ctx, frame)
        spec.acc_compute = acc0 + (ctx.time - t0)
        self._seg[cpu] = None
        self._account(cpu)

    # ------------------------------------------------------------------
    def _startup(self):
        config = self.config
        machine = self.machine
        master = self.master
        desc = self.desc
        overheads = config.overheads
        self.entry_master_time = master.time

        startup_cost = overheads.startup
        if desc.hoist and self.runtime.last_descriptor is desc:
            startup_cost = max(1, startup_cost
                               - config.hoisted_startup_cycles)
        self.runtime.last_descriptor = desc
        master.time += startup_cost
        self.breakdown.overhead += startup_cost
        self.breakdown.stl_entries += 1
        stats = self.runtime.stats_for(desc.stl_id)
        stats.entries += 1
        if self.trace is not None:
            self.trace.stl(master.time - startup_cost, master.cpu_id,
                           desc.stl_id, "enter", stats.entries)
            self.trace.handler(master.time - startup_cost,
                               master.cpu_id, desc.stl_id, "startup",
                               startup_cost)
            self.trace.cache_snapshot(master.time, machine.hierarchy,
                                      force=True)

        self.fp_addr = machine.stack_alloc(max(desc.frame_words, 1) * 4)
        master_regs = master.frames[-1].regs
        for off, reg in desc.init_values:
            machine.memory.store(self.fp_addr + off, master_regs[reg])
            machine.hierarchy.store_latency(master.cpu_id,
                                            self.fp_addr + off)
            master.time += 1
        for off, const in desc.init_consts:
            machine.memory.store(self.fp_addr + off, const)
            machine.hierarchy.store_latency(master.cpu_id,
                                            self.fp_addr + off)
            master.time += 1
        for spec in desc.reductions:
            self.entry_reductions[spec.acc_reg] = master_regs[spec.acc_reg]

        from ..hydra.machine import CpuContext, Frame
        start_time = master.time
        for cpu in range(self.n):
            ctx = CpuContext(machine, cpu)
            thread = SpecThreadState(cpu, cpu, self.fp_addr)
            ctx.spec = thread
            ctx.mem = SpecMemoryInterface(ctx, self)
            ctx.output_buffer = thread.pending_output
            frame = Frame(self.unit, [])
            frame.regs[desc.fp_reg] = self.fp_addr
            frame.regs[desc.iter_reg] = cpu
            for rspec in desc.reductions:
                frame.regs[rspec.acc_reg] = rspec.identity
            ctx.frames = [frame]
            ctx.status = "running"
            ctx.time = start_time
            thread.start_time = start_time
            self.ctxs.append(ctx)
            self.threads.append(thread)
            self.thread_frames.append(frame)
        self.last_commit_time = start_time

    # ------------------------------------------------------------------
    def _commit(self, thread):
        """The head thread finished its iteration: commit in order."""
        cpu = thread.cpu_id
        ctx = self.ctxs[cpu]
        now = max(ctx.time, self.last_commit_time)
        wait = max(0.0, now - thread.block_time)
        thread.acc_wait += wait
        ctx.time = now
        frame = self.thread_frames[cpu]

        # Reset-able inductors that were written unpredictably publish
        # the corrected value and squash every later thread (§4.2.3).
        if thread.request_reset:
            from ..bytecode.instructions import i32
            for rspec in thread.pending_resets:
                # The EOI handler already advanced the register by
                # step*(num_cpus-1) for this CPU's *own* next thread;
                # undo that to get the start-of-next-iteration value.
                value = i32(frame.regs[rspec.reg]
                            - rspec.step * (self.n - 1))
                self.machine.memory.store(self.fp_addr + rspec.slot_value,
                                          value)
                self.machine.memory.store(self.fp_addr + rspec.slot_iter,
                                          thread.iteration + 1)
            self.restart_from(thread.iteration + 1, now, cause="reset")

        self._drain_store_buffer(thread)
        if thread.pending_output:
            self.machine.output.extend(thread.pending_output)
            thread.pending_output.clear()
        for spec in self.desc.reductions:
            frame.regs[spec.acc_reg] = merge_reduction(
                spec.op_name, frame.regs[spec.acc_reg],
                frame.regs[spec.tmp_reg], spec.mask)

        # Accounting.
        self.breakdown.run_used += thread.acc_compute
        self.breakdown.wait_used += thread.acc_wait
        self.breakdown.overhead += thread.acc_overhead
        self.breakdown.commits += 1
        load_lines = len(thread.read_lines)
        store_lines = len(thread.store_lines)
        stats = self.runtime.stats_for(self.desc.stl_id)
        stats.threads_committed += 1
        stats.cycles_total += thread.acc_compute
        stats.sum_load_lines += load_lines
        stats.sum_store_lines += store_lines
        if load_lines > stats.max_load_lines:
            stats.max_load_lines = load_lines
        if store_lines > stats.max_store_lines:
            stats.max_store_lines = store_lines
        if self.trace is not None:
            self.trace.thread_span(thread.start_time, now, cpu,
                                   self.desc.stl_id, thread.iteration,
                                   "commit")
            self.trace.buffers(self.desc.stl_id, load_lines, store_lines)
            self.trace.cache_snapshot(now, self.machine.hierarchy)

        self.last_commit_time = now
        self.head_iteration += 1

        # Start this CPU's next thread (round robin: +num_cpus).
        thread.reset_speculative_state(thread.iteration + self.n)
        thread.acc_compute = 0.0
        thread.acc_wait = 0.0
        thread.acc_overhead = 0.0
        thread.start_time = ctx.time
        # Advance the hardware iteration register (paper Fig. 5: "set to
        # zero on STL startup, incremented on every thread commit") so a
        # cold restart recomputes inductors for the right iteration.
        frame.regs[self.desc.iter_reg] = thread.iteration
        frame.pc = self.desc.warm_entry
        ctx.frames = [frame]

    def _drain_store_buffer(self, thread):
        memory = self.machine.memory
        hierarchy = self.machine.hierarchy
        cpu = thread.cpu_id
        for addr, value in thread.store_buffer.items():
            memory.store(addr, value)
            hierarchy.store_latency(cpu, addr)

    def _resume_blocked(self, thread):
        """A stalled (overflowed) thread became the head: resume it."""
        ctx = self.ctxs[thread.cpu_id]
        now = max(ctx.time, self.last_commit_time)
        thread.acc_wait += max(0.0, now - thread.block_time)
        ctx.time = now
        thread.state = _RUN

    # ------------------------------------------------------------------
    def _begin_lock_wait(self, ctx):
        """WAITLOCK executed: spin until the lock equals our iteration."""
        spec = ctx.spec
        frame = ctx.frames[-1]
        instr = frame.code[frame.pc - 1]
        value, latency = ctx.mem.lwnv(self.fp_addr + instr.imm)
        ctx.time += latency
        if value == spec.iteration:
            return                      # lock already ours
        frame.pc -= 1                   # re-execute WAITLOCK when woken
        spec.state = _WAIT_LOCK
        spec.block_time = ctx.time
        self.breakdown.lock_waits += 1

    def _poll_lock(self, ctx):
        spec = ctx.spec
        frame = ctx.frames[-1]
        instr = frame.code[frame.pc]
        value, __ = ctx.mem.lwnv(self.fp_addr + instr.imm)
        if value == spec.iteration:
            spec.acc_wait += max(0.0, ctx.time - spec.block_time)
            spec.state = _RUN
            frame.pc += 1               # consume the WAITLOCK
            ctx.time += 1
        else:
            ctx.time += _LOCK_POLL_CYCLES

    # ------------------------------------------------------------------
    def _shutdown(self, thread):
        """The exiting thread is the head: end speculation (Fig. 4 #3)."""
        if self._seg is not None:
            # Event mode: the squash accounting and instret attribution
            # below read every CPU — rewind run-ahead work past the
            # exit event's position first.
            for other_cpu in range(self.n):
                if other_cpu != thread.cpu_id:
                    self._truncate(other_cpu)
        config = self.config
        ctx = self.ctxs[thread.cpu_id]
        now = max(ctx.time, self.last_commit_time)
        thread.acc_wait += max(0.0, now - thread.block_time)
        self._drain_store_buffer(thread)
        if thread.pending_output:
            self.machine.output.extend(thread.pending_output)
            thread.pending_output.clear()

        # The exiting iteration's committed work counts as used.
        self.breakdown.run_used += thread.acc_compute
        self.breakdown.wait_used += thread.acc_wait
        self.breakdown.overhead += thread.acc_overhead
        if self.trace is not None:
            self.trace.thread_span(thread.start_time, now,
                                   thread.cpu_id, self.desc.stl_id,
                                   thread.iteration, "exit")

        # Squash every other in-flight thread.
        for other_cpu, other in enumerate(self.threads):
            if other is thread:
                continue
            wait_extra = 0.0
            if other.state != _RUN:
                wait_extra = max(0.0, now - other.block_time)
            self.breakdown.run_violated += other.acc_compute
            self.breakdown.wait_violated += other.acc_wait + wait_extra
            self.breakdown.overhead += other.acc_overhead
            self.breakdown.squashes += 1
            if self.trace is not None:
                self.trace.thread_span(other.start_time, now, other_cpu,
                                       self.desc.stl_id, other.iteration,
                                       "squash")

        shutdown_cost = config.overheads.shutdown
        if self.desc.hoist:
            shutdown_cost = max(1, shutdown_cost
                                - config.hoisted_shutdown_cycles)
        now += shutdown_cost
        self.breakdown.overhead += shutdown_cost
        if self.trace is not None:
            self.trace.handler(now - shutdown_cost, thread.cpu_id,
                               self.desc.stl_id, "shutdown",
                               shutdown_cost)
            self.trace.stl(now, thread.cpu_id, self.desc.stl_id, "exit")
            self.trace.cache_snapshot(now, self.machine.hierarchy,
                                      force=True)

        # Copy communicated values back into the master's registers.
        master = self.master
        master_regs = master.frames[-1].regs
        master.time = now
        exit_frame = self.thread_frames[thread.cpu_id]
        for reg, source in self.desc.exit_values:
            kind, payload = source
            if kind == "slot":
                value = self.machine.memory.load(self.fp_addr + payload)
                latency = self.machine.hierarchy.load_latency(
                    master.cpu_id, self.fp_addr + payload)
                master.time += latency
            else:
                # Locally-computed value (inductor / reset-able): read
                # straight from the exiting thread's register file.
                value = exit_frame.regs[payload]
                master.time += 1
            master_regs[reg] = value
        for spec in self.desc.reductions:
            final = self.entry_reductions[spec.acc_reg]
            for cpu in range(self.n):
                final = merge_reduction(
                    spec.op_name, final,
                    self.thread_frames[cpu].regs[spec.acc_reg], spec.mask)
            final = merge_reduction(spec.op_name, final,
                                    exit_frame.regs[spec.tmp_reg], spec.mask)
            master_regs[spec.acc_reg] = final

        # Attribute the workers' executed instructions to the master so
        # RunResult.instructions covers the whole simulation.
        master.instret += sum(ctx.instret for ctx in self.ctxs)
        self.runtime.stats_for(self.desc.stl_id).wall_cycles += \
            master.time - self.entry_master_time
        self.machine.stack_release(self.fp_addr)
        return thread.exit_id

    def _shutdown_exception(self, thread):
        """A guest exception became real (the thread is the head)."""
        ctx = self.ctxs[thread.cpu_id]
        now = max(ctx.time, self.last_commit_time)
        self._drain_store_buffer(thread)
        self.master.time = now + self.config.overheads.shutdown
        self.runtime.stats_for(self.desc.stl_id).wall_cycles += \
            self.master.time - self.entry_master_time
        self.machine.stack_release(self.fp_addr)
        raise thread.pending_exception

    # ------------------------------------------------------------------
    def _do_switch(self, thread):
        """Multilevel STL decomposition (paper §4.2.6, Fig. 7): the head
        thread switches speculation to an inner STL, runs it, then outer
        speculation resumes."""
        cpu = thread.cpu_id
        ctx = self.ctxs[cpu]
        now = max(ctx.time, self.last_commit_time)
        thread.acc_wait += max(0.0, now - thread.block_time)
        ctx.time = now
        thread.state = _RUN
        if self._seg is not None:
            # Event mode: the squash accounting below reads the
            # more-speculative CPUs — rewind their run-ahead work to
            # the STL_RUN event's position first.  Their parks become
            # stale here (the restart loop at the bottom resets them to
            # pc 0), so drop those too.
            for other_cpu, other in enumerate(self.threads):
                if other.iteration > thread.iteration:
                    self._truncate(other_cpu)
                    self._park_kind[other_cpu] = None

        # As the head our buffered work is correct: commit it so the
        # inner STL (running non-speculatively under us) sees it.
        self._drain_store_buffer(thread)
        thread.store_buffer.clear()
        thread.store_lines.clear()
        thread.read_versions.clear()
        thread.read_lines.clear()
        if thread.pending_output:
            self.machine.output.extend(thread.pending_output)
            thread.pending_output.clear()

        # Squash the more-speculative outer threads; they restart after
        # the inner loop completes.
        for other in self.threads:
            if other.iteration > thread.iteration:
                self.breakdown.run_violated += other.acc_compute
                self.breakdown.wait_violated += other.acc_wait
                self.breakdown.overhead += other.acc_overhead
                self.breakdown.squashes += 1
                self.runtime.stats_for(self.desc.stl_id).restarts += 1
                if self.trace is not None:
                    self.trace.thread_span(other.start_time, now,
                                           other.cpu_id,
                                           self.desc.stl_id,
                                           other.iteration, "squash")
                    self.trace.restart(now, other.cpu_id,
                                       self.desc.stl_id,
                                       other.iteration, "switch", False)

        frame = ctx.frames[-1]
        inner_desc = frame.code[frame.pc].aux
        saved_spec = ctx.spec
        saved_mem = ctx.mem
        saved_out = ctx.output_buffer
        ctx.spec = None
        from ..hydra.machine import PlainMemoryInterface
        ctx.mem = PlainMemoryInterface(ctx)
        ctx.output_buffer = None
        try:
            exit_id = _StlExecution(self.runtime, ctx, inner_desc).run()
        finally:
            ctx.spec = saved_spec
            ctx.mem = saved_mem
            ctx.output_buffer = saved_out
        stl_run = frame.code[frame.pc]
        if stl_run.dst is not None:
            frame.regs[stl_run.dst] = exit_id
        frame.pc += 1

        # Restart the squashed successors after the inner loop.
        after = ctx.time
        restart = self.config.overheads.restart
        for other_cpu, other in enumerate(self.threads):
            if other.iteration > thread.iteration:
                other.reset_speculative_state()
                other_frame = self.thread_frames[other_cpu]
                other_frame.pc = 0
                other_ctx = self.ctxs[other_cpu]
                other_ctx.frames = [other_frame]
                other_ctx.time = after + restart
                other.acc_compute = 0.0
                other.acc_wait = 0.0
                other.acc_overhead = restart
                other.start_time = other_ctx.time
