"""Speculative memory state: store buffers, read sets, forwarding.

Models Hydra's TLS data path (paper §2):

* speculative stores are buffered per thread (never touch memory until
  the thread commits in order),
* loads forward from the nearest less-speculative thread's store buffer
  (interprocessor latency), else read committed memory through the
  cache hierarchy,
* every speculative load is tagged with the *version* it consumed so a
  later store by an earlier thread triggers a RAW violation exactly
  when the consumed value is stale,
* per-thread speculative state is bounded by the L1 (512 read lines)
  and the store buffers (64 written lines); exceeding either stalls the
  thread until it becomes the head (paper §3).
"""

from ..hydra.config import CACHE_LINE_SHIFT

#: store-buffer miss sentinel — lets the hot load path answer "does my
#: buffer hold this word, and what value" with a single dict probe
_MISSING = object()


class SpecThreadState:
    """Speculative state of one thread attempt on one CPU."""

    __slots__ = ("cpu_id", "iteration", "store_buffer", "store_lines",
                 "read_versions", "read_lines", "read_sites", "state",
                 "exit_id", "fp_addr", "violated", "overflowed",
                 "request_reset", "pending_exception", "acc_compute",
                 "acc_wait", "acc_overhead", "start_time",
                 "switch_request", "pending_resets", "pending_output",
                 "block_time")

    RUNNING = "running"
    WAIT_HEAD = "wait_head"       # finished EOI, waiting to commit
    EXITED = "exited"             # took a loop exit, waiting to be head
    STALLED = "stalled"           # buffer overflow, waiting to be head
    WAIT_LOCK = "wait_lock"       # spinning on a synchronizing lock
    EXCEPTION = "exception"       # guest exception, waiting to be head

    def __init__(self, cpu_id, iteration, fp_addr):
        self.cpu_id = cpu_id
        self.iteration = iteration
        self.fp_addr = fp_addr
        self.store_buffer = {}        # addr -> value
        self.store_lines = set()
        self.read_versions = {}       # addr -> version iteration (-1 = mem)
        self.read_lines = set()
        self.read_sites = {}          # addr -> load site (tracing only)
        self.state = self.RUNNING
        self.exit_id = None
        self.violated = False
        self.overflowed = False
        self.request_reset = False
        self.pending_exception = None
        self.switch_request = None
        self.acc_compute = 0.0
        self.acc_wait = 0.0
        self.acc_overhead = 0.0
        self.start_time = 0.0
        self.pending_resets = []
        self.pending_output = []
        self.block_time = 0.0

    def reset_speculative_state(self, iteration=None):
        if iteration is not None:
            self.iteration = iteration
        self.store_buffer.clear()
        self.store_lines.clear()
        self.read_versions.clear()
        self.read_lines.clear()
        if self.read_sites:
            self.read_sites.clear()
        self.state = self.RUNNING
        self.exit_id = None
        self.violated = False
        self.overflowed = False
        self.request_reset = False
        self.pending_exception = None
        self.switch_request = None
        self.pending_resets = []
        self.pending_output = []


class SpecMemoryInterface:
    """Memory interface installed on a CPU while it runs a speculative
    thread.  Implements forwarding, read tagging and overflow checks."""

    __slots__ = ("ctx", "machine", "runtime", "config", "trace")

    def __init__(self, ctx, runtime):
        self.ctx = ctx
        self.machine = ctx.machine
        self.runtime = runtime
        self.config = ctx.machine.config
        # Trace collector (or None).  Cached here so the per-first-read
        # guard below is one attribute load, not a machine lookup.
        self.trace = getattr(ctx.machine, "trace", None)

    # -- lookups --------------------------------------------------------------
    def _find_version(self, addr):
        """Value + version for *addr*: own buffer, then less-speculative
        buffers (nearest first), then committed memory.

        Wild addresses (computed from stale speculative data) read as
        zero instead of faulting — the hardware would likewise return
        garbage, and the thread is doomed to restart anyway.
        """
        my = self.ctx.spec
        if addr in my.store_buffer:
            return my.store_buffer[addr], my.iteration, "own"
        # Nearest less-speculative forwarder == the highest iteration
        # below ours holding the word: one pass over the (few) threads
        # instead of sorting them per load (this is the hottest TLS
        # memory path).
        my_iteration = my.iteration
        source = None
        source_iteration = -1
        for thread in self.runtime.threads:
            iteration = thread.iteration
            if iteration < my_iteration and iteration > source_iteration \
                    and addr in thread.store_buffer:
                source = thread
                source_iteration = iteration
        if source is not None:
            return source.store_buffer[addr], source_iteration, "forward"
        if addr <= 0 or addr & 3:
            return 0, -1, "memory"
        return self.machine.memory.words.get(addr, 0), -1, "memory"

    def load(self, addr):
        # The version search (== _find_version) is inlined here: this
        # is the hottest TLS memory path, executed once per speculative
        # load under both schedulers.
        ctx = self.ctx
        my = ctx.spec
        value = my.store_buffer.get(addr, _MISSING)
        own = value is not _MISSING
        if own:
            latency = 1
        else:
            my_iteration = my.iteration
            source = None
            source_iteration = -1
            for thread in self.runtime.threads:
                iteration = thread.iteration
                if iteration < my_iteration \
                        and iteration > source_iteration \
                        and addr in thread.store_buffer:
                    source = thread
                    source_iteration = iteration
            if source is not None:
                value = source.store_buffer[addr]
                latency = self.config.interprocessor_cycles
            elif addr <= 0 or addr & 3:
                value = 0
                latency = 1 if addr <= 0 else \
                    self.machine.hierarchy.load_latency(ctx.cpu_id, addr)
            else:
                value = self.machine.memory.words.get(addr, 0)
                latency = self.machine.hierarchy.load_latency(
                    ctx.cpu_id, addr)
        # Set the speculative-read tag.  Hydra's L1 tag bits cannot tell
        # *which* version a read consumed, so any later store by a
        # less-speculative thread to a tagged address violates — except
        # when the thread wrote the word itself before reading (the
        # store buffer renames it; True means "vulnerable").
        if addr not in my.read_versions:
            my.read_versions[addr] = not own
            if self.trace is not None:
                # Remember *which load* consumed the value so a later
                # violation can report the arc's sink PC (paper Fig. 10
                # wants arcs, not just counts).  Tracing-only: costs one
                # dict store per first-read of an address.
                my.read_sites[addr] = ctx.current_site
            line = addr >> CACHE_LINE_SHIFT
            my.read_lines.add(line)
            if (len(my.read_lines) > self.config.load_buffer_lines
                    and not self.runtime.is_head(my)):
                self.runtime.flag_overflow(my)
        return value, latency

    def lwnv(self, addr):
        """Non-violating load (paper's lwnv): sees speculative values but
        sets no read tag, so it can never cause a violation."""
        value, __, source = self._find_version(addr)
        if source == "own" or addr <= 0:
            latency = 1
        elif source == "forward":
            latency = self.config.interprocessor_cycles
        else:
            latency = self.machine.hierarchy.load_latency(
                self.ctx.cpu_id, addr)
        return value, latency

    def store(self, addr, value):
        my = self.ctx.spec
        my.store_buffer[addr] = value
        line = addr >> CACHE_LINE_SHIFT
        my.store_lines.add(line)
        if (len(my.store_lines) > self.config.store_buffer_lines
                and not self.runtime.is_head(my)):
            self.runtime.flag_overflow(my)
        self.runtime.notify_store(my, addr)
        return 1
