"""STL selection from TEST statistics (paper §3.1).

Once enough profiling data has been collected the estimated speedup for
each prospective STL is computed from average dependency arc
frequencies, thread sizes, critical arc lengths, overflow frequencies
and speculative overheads.  Only loops with

* average iterations per entry >> 1,
* speculative buffer overflow frequency << 1, and
* predicted speedup > 1.2

are recompiled into speculative threads, and within a loop nest only the
level with the best estimated execution time is chosen.
"""

from dataclasses import asdict, dataclass, field

from ..serialize import site_from_jsonable, site_to_jsonable


@dataclass
class Prediction:
    """Predicted TLS behaviour of one loop."""

    loop_id: int
    speedup: float
    interval: float            # predicted cycles between thread commits
    coverage_cycles: int       # serial cycles spent inside the loop
    avg_thread_cycles: float
    iterations_per_entry: float
    overflow_frequency: float
    arc_frequency: float
    benefit_cycles: float = 0.0

    def to_dict(self):
        return asdict(self)

    @staticmethod
    def from_dict(data):
        return Prediction(**data)


@dataclass
class SyncPlan:
    """Insert a thread synchronizing lock around this dependency."""

    store_site: object
    load_site: object
    arc_frequency: float
    avg_length: float
    #: set when the dependency is a carried local: (loop_id, slot)
    local_slot: object = None

    def to_dict(self):
        return {"store_site": site_to_jsonable(self.store_site),
                "load_site": site_to_jsonable(self.load_site),
                "arc_frequency": self.arc_frequency,
                "avg_length": self.avg_length,
                "local_slot": site_to_jsonable(self.local_slot)}

    @staticmethod
    def from_dict(data):
        local_slot = data["local_slot"]
        return SyncPlan(
            store_site=site_from_jsonable(data["store_site"]),
            load_site=site_from_jsonable(data["load_site"]),
            arc_frequency=data["arc_frequency"],
            avg_length=data["avg_length"],
            local_slot=(site_from_jsonable(local_slot)
                        if local_slot is not None else None))


@dataclass
class StlPlan:
    """Everything the recompiler needs for one selected loop."""

    loop_id: int
    meta: object               # LoopMeta
    prediction: Prediction
    sync: object = None        # SyncPlan or None
    multilevel_inner: bool = False
    multilevel_parent: int = None
    hoist: bool = False
    options: dict = field(default_factory=dict)
    #: set by the adapt controller when the plan was reverted to
    #: sequential execution (the plan then lives on only in the
    #: adaptation log's decision evidence)
    decommitted: bool = False
    #: the sync plan was synthesized *online* by lock escalation, not by
    #: the profile-time admission thresholds
    sync_escalated: bool = False

    def to_dict(self):
        return {
            "loop_id": self.loop_id,
            "meta": self.meta.to_dict(),
            "prediction": self.prediction.to_dict(),
            "sync": self.sync.to_dict() if self.sync else None,
            "multilevel_inner": self.multilevel_inner,
            "multilevel_parent": self.multilevel_parent,
            "hoist": self.hoist,
            "options": dict(self.options),
            "decommitted": self.decommitted,
            "sync_escalated": self.sync_escalated,
        }

    @staticmethod
    def from_dict(data, loop_table=None):
        """Rebuild a plan; when *loop_table* (``{loop_id: LoopMeta}``) is
        given the plan shares the table's LoopMeta instance instead of
        deserializing a private copy (mirrors the live object graph)."""
        from ..jit.annotate import LoopMeta
        meta = None
        if loop_table is not None:
            meta = loop_table.get(data["loop_id"])
        if meta is None:
            meta = LoopMeta.from_dict(data["meta"])
        return StlPlan(
            loop_id=data["loop_id"],
            meta=meta,
            prediction=Prediction.from_dict(data["prediction"]),
            sync=(SyncPlan.from_dict(data["sync"])
                  if data["sync"] else None),
            multilevel_inner=data["multilevel_inner"],
            multilevel_parent=data["multilevel_parent"],
            hoist=data["hoist"],
            options=dict(data["options"]),
            # tolerate dicts from pre-adaptation schemas
            decommitted=data.get("decommitted", False),
            sync_escalated=data.get("sync_escalated", False))


class Selector:
    """Applies the paper's selection heuristics to profiled statistics."""

    def __init__(self, config, loop_table, ignore_allocator_arcs=True):
        self.config = config
        self.loop_table = loop_table
        self._dynamic_nesting = frozenset()
        #: when the parallel allocator (§5.2) is enabled, dependencies
        #: through allocator metadata vanish at TLS time, so they should
        #: not be protected with a synchronizing lock.
        self.ignore_allocator_arcs = ignore_allocator_arcs

    # -- prediction ---------------------------------------------------------
    def predict(self, stats):
        """Estimate TLS performance from accumulated LoopStats.

        The model schedules average iterations ideally (as TEST does):
        thread commits are limited by CPU bandwidth, by the critical
        dependency arc, and by overflow stalls; per-entry startup and
        shutdown overheads are amortized over iterations/entry.
        """
        config = self.config
        overheads = config.overheads
        threads = stats.threads
        if threads == 0:
            return Prediction(stats.loop_id, 0.0, 0.0, 0, 0.0, 0.0, 1.0, 0.0)
        avg_thread = stats.avg_thread_cycles
        ipe = stats.iterations_per_entry

        interval_cpu = (avg_thread + overheads.eoi) / config.num_cpus
        interval_dep = stats.arc_frequency * stats.avg_critical_constraint
        interval = max(interval_cpu, interval_dep, 1.0)
        # Overflowing threads stall until they become the head thread:
        # they forfeit the overlap with (num_cpus - 1) peers.
        interval += (stats.overflow_frequency * avg_thread
                     * (config.num_cpus - 1) / config.num_cpus)
        per_entry = (overheads.startup + overheads.shutdown) / max(ipe, 1.0)
        parallel_per_iter = interval + per_entry
        speedup = avg_thread / parallel_per_iter if parallel_per_iter else 0.0
        return Prediction(
            loop_id=stats.loop_id,
            speedup=speedup,
            interval=interval,
            coverage_cycles=stats.coverage_cycles,
            avg_thread_cycles=avg_thread,
            iterations_per_entry=ipe,
            overflow_frequency=stats.overflow_frequency,
            arc_frequency=stats.arc_frequency,
        )

    def eligible(self, stats, prediction):
        """The paper's three admission heuristics."""
        config = self.config
        if stats.threads == 0:
            return False
        if prediction.iterations_per_entry < config.min_iterations_per_entry:
            return False
        if prediction.overflow_frequency > config.max_overflow_frequency:
            return False
        return prediction.speedup > config.min_predicted_speedup

    # -- selection across loop nests --------------------------------------------
    def select(self, all_stats, dynamic_nesting=None, banned=()):
        """Pick the best non-overlapping set of STLs.

        Returns {loop_id: StlPlan}.  Only one loop level in a nest can
        speculate at a time, so ancestors/descendants conflict; the
        greedy choice maximizes predicted benefit (cycles saved).
        *dynamic_nesting* — (outer, inner) pairs observed by TEST — adds
        conflicts static structure cannot see (nesting through calls).
        *banned* loop ids are excluded outright — the adapt controller
        passes its decommitted set here so re-selection can promote the
        candidates those loops were shadowing.
        """
        self._dynamic_nesting = frozenset(dynamic_nesting or ())
        banned = frozenset(banned)
        predictions = {}
        for loop_id, stats in all_stats.items():
            if loop_id in banned:
                continue
            meta = self.loop_table.get(loop_id)
            if meta is None or not meta.candidate:
                continue
            prediction = self.predict(stats)
            prediction.benefit_cycles = prediction.coverage_cycles * (
                1.0 - 1.0 / prediction.speedup) if prediction.speedup > 1 \
                else 0.0
            predictions[loop_id] = (stats, prediction)

        chosen = {}
        order = sorted(predictions,
                       key=lambda lid: -predictions[lid][1].benefit_cycles)
        for loop_id in order:
            stats, prediction = predictions[loop_id]
            if not self.eligible(stats, prediction):
                continue
            if self._conflicts(loop_id, chosen):
                continue
            meta = self.loop_table[loop_id]
            plan = StlPlan(loop_id=loop_id, meta=meta, prediction=prediction)
            plan.sync = self.synthesize_sync(stats, prediction)
            chosen[loop_id] = plan

        self._plan_multilevel(all_stats, predictions, chosen)
        self._plan_hoisting(chosen)
        return chosen

    def _ancestors(self, loop_id):
        meta = self.loop_table.get(loop_id)
        while meta is not None and meta.parent_id is not None:
            yield meta.parent_id
            meta = self.loop_table.get(meta.parent_id)

    def _conflicts(self, loop_id, chosen):
        if any(ancestor in chosen for ancestor in self._ancestors(loop_id)):
            return True
        for other in chosen:
            if loop_id in self._ancestors_set(other):
                return True
            if (other, loop_id) in self._dynamic_nesting \
                    or (loop_id, other) in self._dynamic_nesting:
                return True
        return False

    def _ancestors_set(self, loop_id):
        return set(self._ancestors(loop_id))

    # -- optimization planning ------------------------------------------------------
    def synthesize_sync(self, stats, prediction, force=False):
        """Thread synchronizing lock (paper §4.2.4): protect a frequent
        short dependency instead of violating on it.

        With ``force=False`` (profile-time planning) the paper's
        admission thresholds apply: the arc must be frequent, short
        relative to the thread, and longer than the natural thread
        stagger.  With ``force=True`` (online lock escalation by the
        adapt controller) those thresholds are bypassed — observed
        violations already proved that forwarding does not resolve the
        dependence — but the allocator-arc filter still applies because
        allocator metadata arcs vanish at TLS time regardless.
        """
        dominant = stats.dominant_arc()
        if dominant is None:
            return None
        (store_site, load_site), arc = dominant
        if self.ignore_allocator_arcs and arc.allocator_fraction > 0.5:
            return None
        config = self.config
        frequency = arc.count / stats.threads if stats.threads else 0.0
        if not force:
            if frequency <= config.sync_lock_arc_frequency:
                return None
            if arc.avg_store_offset >= (config.sync_lock_arc_ratio
                                        * prediction.avg_thread_cycles):
                return None
            # Stores that land within one natural thread stagger resolve
            # by forwarding alone — threads start about one CPU-bound
            # commit interval apart, so the producer's store lands
            # before the consumer (whose communicated loads are at
            # thread start) reads.  A lock there only adds overhead.
            natural_stagger = ((prediction.avg_thread_cycles
                                + self.config.overheads.eoi)
                               / self.config.num_cpus)
            if arc.avg_store_offset <= natural_stagger * 0.5:
                return None
        local_slot = None
        if isinstance(load_site, tuple) and load_site \
                and load_site[0] == "local":
            local_slot = (load_site[1], load_site[2])
        return SyncPlan(store_site=store_site, load_site=load_site,
                        arc_frequency=frequency, avg_length=arc.avg_length,
                        local_slot=local_slot)

    def _plan_multilevel(self, all_stats, predictions, chosen):
        """Multilevel STL decompositions (paper §4.2.6): a selected outer
        loop switches to a rarely-entered inner loop when reached."""
        for loop_id, (stats, prediction) in predictions.items():
            meta = self.loop_table.get(loop_id)
            if meta is None or meta.parent_id not in chosen:
                continue
            parent_stats = all_stats.get(meta.parent_id)
            if parent_stats is None or parent_stats.threads == 0:
                continue
            entry_ratio = (stats.profiled_entries + stats.unprofiled_entries
                           ) / max(parent_stats.threads, 1)
            if entry_ratio >= self.config.multilevel_entry_ratio \
                    or entry_ratio <= 0:
                continue
            if prediction.speedup <= self.config.min_predicted_speedup:
                continue
            plan = StlPlan(loop_id=loop_id, meta=meta, prediction=prediction,
                           multilevel_inner=True,
                           multilevel_parent=meta.parent_id)
            plan.sync = self.synthesize_sync(stats, prediction)
            chosen[loop_id] = plan

    def _plan_hoisting(self, chosen):
        """Hoisted startup/shutdown (paper §4.2.7): loops entered many
        times (low iterations/entry) amortize slave wakeup."""
        for plan in chosen.values():
            if plan.multilevel_inner:
                continue
            if plan.meta.parent_id is not None and \
                    plan.prediction.iterations_per_entry < 64:
                plan.hoist = True
