"""TEST hardware profiler model: comparator banks, statistics, selector."""

from .profiler import ComparatorBank, TestProfiler
from .selector import Prediction, Selector, StlPlan, SyncPlan
from .stats import ArcStats, LoopStats

__all__ = ["TestProfiler", "ComparatorBank", "LoopStats", "ArcStats",
           "Selector", "StlPlan", "SyncPlan", "Prediction"]
