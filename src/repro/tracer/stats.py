"""Accumulated TEST statistics per prospective STL (paper §3.1).

One :class:`LoopStats` aggregates everything the comparator banks learn
about a loop across all its profiled entries; the selector turns these
into speedup predictions.
"""

from ..serialize import site_from_jsonable, site_to_jsonable


class ArcStats:
    """Statistics for one (store site -> load site) dependency arc."""

    __slots__ = ("count", "sum_constraint", "sum_length", "min_distance",
                 "allocator_hits", "sum_store_offset")

    def __init__(self):
        self.count = 0
        self.sum_constraint = 0.0
        self.sum_length = 0.0
        self.sum_store_offset = 0.0
        self.min_distance = None
        #: arcs through allocator metadata (free lists / bump pointers):
        #: they disappear when the parallel allocator is enabled (§5.2)
        self.allocator_hits = 0

    def record(self, constraint, length, distance, allocator=False,
               store_offset=0.0):
        self.count += 1
        self.sum_constraint += constraint
        self.sum_length += length
        self.sum_store_offset += store_offset
        if allocator:
            self.allocator_hits += 1
        if self.min_distance is None or distance < self.min_distance:
            self.min_distance = distance

    @property
    def allocator_fraction(self):
        return self.allocator_hits / self.count if self.count else 0.0

    def to_dict(self):
        return {name: getattr(self, name) for name in self.__slots__}

    @staticmethod
    def from_dict(data):
        arc = ArcStats()
        for name in ArcStats.__slots__:
            setattr(arc, name, data[name])
        return arc

    @property
    def avg_constraint(self):
        return self.sum_constraint / self.count if self.count else 0.0

    @property
    def avg_length(self):
        return self.sum_length / self.count if self.count else 0.0

    @property
    def avg_store_offset(self):
        """How deep into the producer thread the store happens.  The
        recompiled consumer reads communicated locals at thread start,
        so this — not the load-site arc length — is what decides
        whether forwarding resolves the dependency naturally."""
        return self.sum_store_offset / self.count if self.count else 0.0


class LoopStats:
    """Everything TEST accumulated about one prospective STL."""

    __slots__ = ("loop_id", "entries", "profiled_entries", "threads",
                 "total_thread_cycles", "overflow_threads", "arc_threads",
                 "sum_critical_constraint", "sum_load_lines",
                 "sum_store_lines", "max_load_lines", "max_store_lines",
                 "arcs", "unprofiled_entries", "total_iterations")

    def __init__(self, loop_id):
        self.loop_id = loop_id
        self.entries = 0                  # loop activations seen
        self.profiled_entries = 0         # activations that got a bank
        self.unprofiled_entries = 0
        self.threads = 0                  # profiled iterations
        self.total_iterations = 0         # iterations incl. unprofiled
        self.total_thread_cycles = 0
        self.overflow_threads = 0
        self.arc_threads = 0              # threads with a limiting arc
        self.sum_critical_constraint = 0.0
        self.sum_load_lines = 0
        self.sum_store_lines = 0
        self.max_load_lines = 0
        self.max_store_lines = 0
        self.arcs = {}                    # (store_site, load_site) -> ArcStats

    # -- derived quantities ------------------------------------------------
    @property
    def avg_thread_cycles(self):
        return (self.total_thread_cycles / self.threads
                if self.threads else 0.0)

    @property
    def iterations_per_entry(self):
        return (self.threads / self.profiled_entries
                if self.profiled_entries else 0.0)

    @property
    def overflow_frequency(self):
        return (self.overflow_threads / self.threads
                if self.threads else 0.0)

    @property
    def arc_frequency(self):
        return self.arc_threads / self.threads if self.threads else 0.0

    @property
    def avg_critical_constraint(self):
        return (self.sum_critical_constraint / self.arc_threads
                if self.arc_threads else 0.0)

    @property
    def avg_load_lines(self):
        return self.sum_load_lines / self.threads if self.threads else 0.0

    @property
    def avg_store_lines(self):
        return self.sum_store_lines / self.threads if self.threads else 0.0

    @property
    def coverage_cycles(self):
        return self.total_thread_cycles

    def arc_for(self, store_site, load_site):
        key = (store_site, load_site)
        arc = self.arcs.get(key)
        if arc is None:
            arc = self.arcs[key] = ArcStats()
        return arc

    def dominant_arc(self):
        """The (key, ArcStats) with the highest count, or None."""
        if not self.arcs:
            return None
        key = max(self.arcs, key=lambda k: self.arcs[k].count)
        return key, self.arcs[key]

    def __repr__(self):
        return ("<LoopStats %d threads=%d avg=%.0fcy arcs=%.2f ovf=%.2f>"
                % (self.loop_id, self.threads, self.avg_thread_cycles,
                   self.arc_frequency, self.overflow_frequency))

    def to_dict(self):
        """Lossless JSON-safe dict.  Arc keys are (store, load) site
        tuples; JSON has no tuple keys, so arcs are emitted as a list of
        ``[store_site, load_site, arc]`` triples (sites tuple->list
        converted recursively)."""
        data = {name: getattr(self, name) for name in self.__slots__
                if name != "arcs"}
        data["arcs"] = [
            [site_to_jsonable(store), site_to_jsonable(load),
             arc.to_dict()]
            for (store, load), arc in self.arcs.items()]
        return data

    @staticmethod
    def from_dict(data):
        stats = LoopStats(data["loop_id"])
        for name in LoopStats.__slots__:
            if name != "arcs":
                setattr(stats, name, data[name])
        stats.arcs = {
            (site_from_jsonable(store), site_from_jsonable(load)):
                ArcStats.from_dict(arc)
            for store, load, arc in data["arcs"]}
        return stats
