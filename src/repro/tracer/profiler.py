"""TEST: Tracer for Extracting Speculative Threads (paper §3, [9]).

A software model of the TEST hardware: timestamp tables held in the
(otherwise idle) speculative store buffers, and an array of comparator
banks that analyze the event stream of a *sequential annotated* run.

Events arrive from the Hydra machine:

* ``on_sloop/on_eoi/on_eloop`` — loop entry / thread boundary / exit,
* ``on_load/on_store`` — every memory access (heap, statics, allocator),
* ``on_lwl/on_swl`` — annotated loop-carried local variable accesses.

Two analyses run per bank exactly as §3.1 describes: the *load
dependency analysis* (compare prior store timestamps against thread
start timestamps, track the critical arc) and the *speculative state
overflow analysis* (count new cache lines / store-buffer entries per
thread against the hardware limits).
"""

from ..hydra.config import ALLOCATOR_BASE, CACHE_LINE_SHIFT, HEAP_BASE
from .stats import LoopStats


def _site_key(site):
    """Stable identity for a load/store instruction across compiles."""
    if site is None:
        return None
    frame_name, instr = site
    return (frame_name, instr.line, int(instr.op), instr.imm)


class ComparatorBank:
    """Tracks statistics for one active loop instance (paper Fig. 2)."""

    __slots__ = ("instance", "starts", "thread_start", "entry_ts",
                 "load_lines", "store_lines", "critical", "critical_arc",
                 "thread_index", "history")

    def __init__(self, instance, now, history):
        self.instance = instance
        self.history = history
        self.starts = []            # previous thread start timestamps
        self.thread_start = now
        self.entry_ts = now
        self.thread_index = 0
        self._reset_thread()

    def _reset_thread(self):
        self.load_lines = set()
        self.store_lines = set()
        self.critical = 0.0
        self.critical_arc = None    # (store_site, load_site, length, dist)

    def boundary(self, now):
        """End the current thread at time *now*; returns per-thread facts."""
        facts = (now - self.thread_start, len(self.load_lines),
                 len(self.store_lines), self.critical, self.critical_arc)
        self.starts.append(self.thread_start)
        if len(self.starts) > self.history:
            self.starts.pop(0)
        self.thread_start = now
        self.thread_index += 1
        self._reset_thread()
        return facts

    def arc_distance(self, store_ts):
        """How many thread boundaries back the store happened (>=1), or
        None if it predates the bank's history ring."""
        if store_ts >= self.thread_start:
            return 0                # intra-thread
        distance = 0
        for start in reversed(self.starts):
            distance += 1
            if store_ts >= start:
                return distance
        return None

    def producer_start(self, distance):
        return self.starts[-distance]


class ActiveLoop:
    """One dynamic activation of a prospective STL."""

    __slots__ = ("loop_id", "instance_id", "bank")

    def __init__(self, loop_id, instance_id, bank):
        self.loop_id = loop_id
        self.instance_id = instance_id
        self.bank = bank


class TestProfiler:
    """The profiler attached to a Machine during the annotated run."""

    #: not a pytest test class, despite the paper's naming of TEST
    __test__ = False

    def __init__(self, config, loop_table=None, trace=None):
        self.config = config
        self.loop_table = loop_table or {}
        #: optional repro.trace.TraceCollector — records profile-phase
        #: loop activations and comparator-bank pressure on the "TEST
        #: profile" track of the exported Chrome trace
        self.trace = trace
        self.stats = {}               # loop_id -> LoopStats
        self.active = []              # stack of ActiveLoop
        self.banks_in_use = 0
        self.store_ts = {}            # word addr -> (ts, site_key)
        self.line_ts = {}             # line -> ts
        self.local_ts = {}            # (instance_id, slot) -> (ts, site_key)
        self._next_instance = 1
        self.events = 0
        self.bank_steals = 0
        self.missed_allocations = 0
        #: (outer loop_id, inner loop_id) pairs observed at runtime —
        #: includes nesting through method calls, which static loop
        #: structure cannot see.
        self.dynamic_nesting = set()
        self.max_dynamic_depth = 0

    # -- bookkeeping ------------------------------------------------------
    def stats_for(self, loop_id):
        stats = self.stats.get(loop_id)
        if stats is None:
            stats = self.stats[loop_id] = LoopStats(loop_id)
        return stats

    def _allocate_bank(self, instance, now):
        if self.banks_in_use < self.config.comparator_banks:
            self.banks_in_use += 1
            return ComparatorBank(instance, now, self.config.bank_history)
        # Bank-stealing policy (paper §6.1): outer loops predicted to
        # consistently overflow release their banks to inner loops.
        for active in self.active:
            if active.bank is None:
                continue
            stats = self.stats_for(active.loop_id)
            if stats.threads >= 3 and stats.overflow_frequency > 0.9:
                bank = active.bank
                active.bank = None
                self.bank_steals += 1
                if self.trace is not None:
                    self.trace.bank(now, active.loop_id, "steal")
                return ComparatorBank(instance, now, self.config.bank_history)
        self.missed_allocations += 1
        if self.trace is not None:
            self.trace.bank(now, instance.loop_id, "missed")
        return None

    # -- loop events ----------------------------------------------------------
    def on_sloop(self, loop_id, nslots, now):
        self.events += 1
        instance_id = self._next_instance
        self._next_instance += 1
        for outer in self.active:
            self.dynamic_nesting.add((outer.loop_id, loop_id))
        if len(self.active) + 1 > self.max_dynamic_depth:
            self.max_dynamic_depth = len(self.active) + 1
        active = ActiveLoop(loop_id, instance_id, None)
        active.bank = self._allocate_bank(active, now)
        self.active.append(active)
        if self.trace is not None:
            self.trace.profile_loop(now, loop_id, "enter")
        stats = self.stats_for(loop_id)
        stats.entries += 1
        if active.bank is not None:
            stats.profiled_entries += 1
        else:
            stats.unprofiled_entries += 1

    def on_eoi(self, loop_id, now):
        self.events += 1
        active = self._find_active(loop_id)
        if active is None:
            return
        stats = self.stats_for(loop_id)
        stats.total_iterations += 1
        if active.bank is None:
            return
        self._finish_thread(stats, active.bank, now)

    def on_eloop(self, loop_id, now):
        self.events += 1
        active = self._find_active(loop_id)
        if active is None:
            return
        # Count the final (possibly partial) thread.
        if active.bank is not None:
            stats = self.stats_for(loop_id)
            stats.total_iterations += 1
            self._finish_thread(stats, active.bank, now)
            self.banks_in_use -= 1
        if self.trace is not None:
            self.trace.profile_loop(now, loop_id, "exit")
        self.active.remove(active)

    def _finish_thread(self, stats, bank, now):
        size, loads, stores, critical, critical_arc = bank.boundary(now)
        stats.threads += 1
        stats.total_thread_cycles += size
        stats.sum_load_lines += loads
        stats.sum_store_lines += stores
        stats.max_load_lines = max(stats.max_load_lines, loads)
        stats.max_store_lines = max(stats.max_store_lines, stores)
        if (loads > self.config.load_buffer_lines
                or stores > self.config.store_buffer_lines):
            stats.overflow_threads += 1
        if critical > 0.0:
            stats.arc_threads += 1
            stats.sum_critical_constraint += critical
            if critical_arc is not None:
                (store_site, load_site, length, distance,
                 is_allocator, store_offset) = critical_arc
                stats.arc_for(store_site, load_site).record(
                    critical, length, distance, allocator=is_allocator,
                    store_offset=store_offset)

    def _find_active(self, loop_id):
        for active in reversed(self.active):
            if active.loop_id == loop_id:
                return active
        return None

    # -- memory events -----------------------------------------------------------
    def on_load(self, addr, now, site):
        self.events += 1
        if not self.active:
            return
        entry = self.store_ts.get(addr)
        line = addr >> CACHE_LINE_SHIFT
        line_time = self.line_ts.get(line)
        for active in self.active:
            bank = active.bank
            if bank is None:
                continue
            if line_time is None or line_time < bank.thread_start:
                bank.load_lines.add(line)
            if entry is not None:
                self._check_dependency(bank, entry, now, _site_key(site),
                                       addr=addr)
        self.line_ts[line] = now

    def on_store(self, addr, now, site):
        self.events += 1
        if self.active:
            line = addr >> CACHE_LINE_SHIFT
            line_time = self.line_ts.get(line)
            for active in self.active:
                bank = active.bank
                if bank is None:
                    continue
                if line_time is None or line_time < bank.thread_start:
                    bank.store_lines.add(line)
            self.line_ts[line] = now
        self.store_ts[addr] = (now, _site_key(site))

    def _check_dependency(self, bank, entry, now, load_site_key,
                          addr=None):
        store_ts, store_site = entry
        if store_ts < bank.entry_ts:
            return                       # not carried by this loop
        distance = bank.arc_distance(store_ts)
        if distance is None or distance == 0:
            return                       # too old / intra-thread
        producer_start = bank.producer_start(distance)
        d_store = store_ts - producer_start
        d_load = now - bank.thread_start
        constraint = (d_store - d_load
                      + self.config.interprocessor_cycles) / distance
        if constraint > bank.critical:
            is_allocator = (addr is not None
                            and ALLOCATOR_BASE <= addr < HEAP_BASE)
            bank.critical = constraint
            bank.critical_arc = (store_site, load_site_key,
                                 d_store - d_load, distance, is_allocator,
                                 d_store)

    # -- local variable events --------------------------------------------------
    # Carried locals are identified by (loop, slot), which the STL
    # recompiler can map straight back to the communicated variable.
    def on_swl(self, loop_id, slot, now, site):
        self.events += 1
        active = self._find_active(loop_id)
        if active is None:
            return
        key = ("local", loop_id, slot)
        self.local_ts[(active.instance_id, slot)] = (now, key)

    def on_lwl(self, loop_id, slot, now, site):
        self.events += 1
        active = self._find_active(loop_id)
        if active is None or active.bank is None:
            return
        entry = self.local_ts.get((active.instance_id, slot))
        if entry is not None:
            self._check_dependency(active.bank, entry, now,
                                   ("local", loop_id, slot))
