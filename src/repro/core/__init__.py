"""Jrpm core: the dynamic parallelization pipeline."""

from .pipeline import Jrpm, JrpmReport, RunMeasurement, VmOptions, run_jrpm

__all__ = ["Jrpm", "JrpmReport", "RunMeasurement", "VmOptions", "run_jrpm"]
