"""The Jrpm pipeline (paper Figure 1).

1. Compile bytecodes natively with annotation instructions.
2. Run the annotated program sequentially while TEST collects
   statistics on prospective thread decompositions.
3. Post-process the statistics and choose the decompositions with the
   best predicted speedups.
4. Recompile the selected loops into speculative threads.
5. Run the native TLS code.

:class:`Jrpm` drives all five steps and packages every measurement the
benchmark harness needs into a :class:`JrpmReport`.
"""

import warnings
from dataclasses import dataclass, field

from ..serialize import REPORT_SCHEMA_VERSION, check_schema_version
from ..hydra.config import HydraConfig
from ..hydra.machine import Machine
from ..jit.compiler import (annotation_count, compile_annotated,
                            compile_program)
from ..jit.stl import StlOptions, recompile_with_stls
from ..minijava import compile_source
from ..tls.runtime import TlsRuntime
from ..tracer.profiler import TestProfiler
from ..tracer.selector import Selector


def outputs_equal(a, b, tolerance=1e-6):
    """Elementwise output comparison; floats approximately (reductions
    are re-associated across CPUs), everything else exactly."""
    if len(a) != len(b):
        return False
    for left, right in zip(a, b):
        if isinstance(left, float) or isinstance(right, float):
            scale = max(abs(left), abs(right), 1.0)
            if abs(left - right) > tolerance * scale:
                return False
        elif left != right:
            return False
    return True


@dataclass
class VmOptions:
    """VM-level modifications from paper §5 (Table 3 columns t, u)."""

    parallel_allocator: bool = True       # §5.2 private free lists
    speculation_aware_locks: bool = True  # §5.3 non-serializing locks

    def to_dict(self):
        return {"parallel_allocator": self.parallel_allocator,
                "speculation_aware_locks": self.speculation_aware_locks}

    @staticmethod
    def from_dict(data):
        return VmOptions(**data)


@dataclass
class RunMeasurement:
    """One simulated run of the program."""

    cycles: float = 0.0
    instructions: int = 0
    gc_cycles: float = 0.0
    output: list = field(default_factory=list)
    return_value: object = None
    guest_exception: object = None

    @staticmethod
    def from_result(result):
        return RunMeasurement(
            cycles=result.cycles,
            instructions=result.instructions,
            gc_cycles=result.gc_cycles,
            output=result.output,
            return_value=result.return_value,
            guest_exception=result.guest_exception,
        )

    def to_dict(self):
        """JSON-safe dict (guest exceptions are stored by repr)."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "gc_cycles": self.gc_cycles,
            "output": list(self.output),
            "return_value": self.return_value,
            "guest_exception": (None if self.guest_exception is None
                                else repr(self.guest_exception)),
        }

    @staticmethod
    def from_dict(data):
        return RunMeasurement(
            cycles=data["cycles"],
            instructions=data["instructions"],
            gc_cycles=data["gc_cycles"],
            output=list(data["output"]),
            return_value=data["return_value"],
            guest_exception=data["guest_exception"],
        )


class JrpmReport:
    """Everything measured across the pipeline for one benchmark run."""

    def __init__(self, name="program"):
        self.name = name
        self.config = None
        # runs
        self.sequential = None           # RunMeasurement (plain native)
        self.profiling = None            # RunMeasurement (annotated)
        self.tls = None                  # RunMeasurement (speculative)
        # pipeline artifacts
        self.loop_table = {}
        self.loop_stats = {}
        self.plans = {}
        self.predicted_tls_cycles = 0.0
        self.annotations = 0
        self.compile_cycles = 0
        self.recompile_cycles = 0
        self.breakdown = None            # TlsStateBreakdown
        self.stl_run_stats = {}
        self.profiler = None
        self.dynamic_nesting = set()
        self.max_dynamic_depth = 0
        # observability (repro.trace): the aggregate counters survive
        # serialization; the live collector (event ring) is transient,
        # like `profiler`.
        self.trace_aggregates = None     # TraceAggregates or None
        self.trace = None                # live TraceCollector or None
        # adaptive recompilation (repro.adapt): the epoch/decision log
        # produced by Jrpm.run_adaptive(); None on one-shot runs
        self.adaptation = None           # AdaptationLog or None
        # static dependence analysis (repro.analysis): per-loop
        # classification + profiler cross-check; None unless the run
        # was made with RunOptions.analysis / Jrpm(analysis=True)
        self.analysis = None             # AnalysisReport or None
        # persistent profile DB (repro.profdb): how the TEST statistics
        # behind this report were obtained — "cold" (profiled live),
        # "warm" (replayed from a stored consensus) or "confirmed"
        # (profiled live and reproduced the stored consensus plan)
        self.profile_provenance = "cold"

    # -- headline numbers ----------------------------------------------------
    @property
    def profiling_slowdown(self):
        if not self.sequential or not self.sequential.cycles:
            return 0.0
        return self.profiling.cycles / self.sequential.cycles

    @property
    def tls_speedup(self):
        """Speedup of the speculative run over sequential (Fig. 8)."""
        if not self.tls or not self.tls.cycles:
            return 1.0
        return self.sequential.cycles / self.tls.cycles

    @property
    def predicted_speedup(self):
        if not self.predicted_tls_cycles:
            return 1.0
        return self.sequential.cycles / self.predicted_tls_cycles

    @property
    def serial_fraction(self):
        """Fraction of sequential execution not covered by any candidate
        STL (Table 3 column i)."""
        if not self.sequential or not self.sequential.cycles:
            return 1.0
        covered = 0.0
        for loop_id, stats in self.loop_stats.items():
            meta = self.loop_table.get(loop_id)
            if meta is None or not meta.candidate:
                continue
            if self._has_candidate_ancestor(loop_id):
                continue
            covered += stats.coverage_cycles
        covered = min(covered, self.profiling.cycles)
        return max(0.0, 1.0 - covered / self.profiling.cycles)

    def _has_candidate_ancestor(self, loop_id):
        meta = self.loop_table.get(loop_id)
        while meta is not None and meta.parent_id is not None:
            parent = self.loop_table.get(meta.parent_id)
            if parent is not None and parent.candidate \
                    and meta.parent_id in self.loop_stats:
                return True
            meta = parent
        # Dynamic (cross-method) nesting counts too.
        for outer, inner in self.dynamic_nesting:
            if inner == loop_id and outer in self.loop_stats:
                outer_meta = self.loop_table.get(outer)
                if outer_meta is not None and outer_meta.candidate:
                    return True
        return False

    @property
    def profile_fraction(self):
        """Fraction of the run executed under profiling before TEST has
        enough data to recompile (§3.1).

        The comparator banks profile every active loop concurrently, so
        the iteration budget accumulates across all selected loops: a
        program whose outermost loop runs only a few large iterations
        still supplies thousands of inner-loop samples per unit time.
        """
        if not self.plans:
            return 1.0
        target = self.config.profile_iteration_target if self.config else 100
        total_threads = sum(stats.threads
                            for stats in self.loop_stats.values())
        if total_threads == 0:
            return 1.0
        return min(1.0, target / total_threads)

    @property
    def total_cycles_with_overheads(self):
        """End-to-end cycles including compile, profiling, selection,
        recompilation and GC (Fig. 9 model)."""
        fraction = self.profile_fraction
        total = self.compile_cycles
        total += fraction * self.profiling.cycles
        if self.plans:
            total += self.recompile_cycles
            total += (1.0 - fraction) * self.tls.cycles
        return total

    @property
    def total_speedup(self):
        total = self.total_cycles_with_overheads
        if not total:
            return 1.0
        return self.sequential.cycles / total

    def phase_cycles(self):
        """Cycle breakdown for the Fig. 9 stacked bars."""
        fraction = self.profile_fraction
        tls_cycles = (1.0 - fraction) * self.tls.cycles if self.plans \
            else 0.0
        profiling_extra = fraction * max(
            0.0, self.profiling.cycles - self.sequential.cycles)
        application = (fraction * self.sequential.cycles + tls_cycles
                       - (self.tls.gc_cycles if self.plans else 0.0)
                       - self.sequential.gc_cycles * fraction)
        return {
            "application": max(0.0, application),
            "gc": (self.sequential.gc_cycles * fraction
                   + (self.tls.gc_cycles if self.plans else 0.0)),
            "compile": self.compile_cycles,
            "profiling": profiling_extra,
            "recompile": self.recompile_cycles if self.plans else 0.0,
        }

    def outputs_match(self, tolerance=1e-6):
        """Check sequential vs TLS output equality (floats approximately:
        reductions are re-associated across CPUs)."""
        return outputs_equal(self.sequential.output, self.tls.output,
                             tolerance)

    # -- serialization -------------------------------------------------------
    #: the report dict layout version — aliased from
    #: :data:`repro.serialize.REPORT_SCHEMA_VERSION`, the single source
    #: of truth shared with the cache key and the service wire protocol
    SCHEMA_VERSION = REPORT_SCHEMA_VERSION

    def to_dict(self):
        """Lossless JSON-safe dict of every measurement in the report.

        The only attributes not serialized are :attr:`profiler` — the
        live :class:`TestProfiler` with its comparator-bank hardware
        state — and :attr:`trace` — the live event ring — whose measured
        results are already captured in ``loop_stats`` /
        ``dynamic_nesting`` / ``max_dynamic_depth`` /
        ``trace_aggregates``.  Round-trips are exact:
        ``report.to_dict() ==
        JrpmReport.from_dict(report.to_dict()).to_dict()``.
        """
        from ..serialize import set_to_pairs
        return {
            "schema": self.SCHEMA_VERSION,
            "name": self.name,
            "config": self.config.to_dict() if self.config else None,
            "sequential": (self.sequential.to_dict()
                           if self.sequential else None),
            "profiling": (self.profiling.to_dict()
                          if self.profiling else None),
            "tls": self.tls.to_dict() if self.tls else None,
            "tls_is_sequential": self.tls is self.sequential,
            "loop_table": {str(loop_id): meta.to_dict()
                           for loop_id, meta in self.loop_table.items()},
            "loop_stats": {str(loop_id): stats.to_dict()
                           for loop_id, stats in self.loop_stats.items()},
            "plans": {str(loop_id): plan.to_dict()
                      for loop_id, plan in self.plans.items()},
            "predicted_tls_cycles": self.predicted_tls_cycles,
            "annotations": self.annotations,
            "compile_cycles": self.compile_cycles,
            "recompile_cycles": self.recompile_cycles,
            "breakdown": self.breakdown.to_dict() if self.breakdown
                         else None,
            "stl_run_stats": {str(loop_id): stats.to_dict()
                              for loop_id, stats
                              in self.stl_run_stats.items()},
            "dynamic_nesting": set_to_pairs(self.dynamic_nesting),
            "max_dynamic_depth": self.max_dynamic_depth,
            "trace_aggregates": (self.trace_aggregates.to_dict()
                                 if self.trace_aggregates else None),
            "adaptation": (self.adaptation.to_dict()
                           if self.adaptation else None),
            "analysis": (self.analysis.to_dict()
                         if self.analysis else None),
            "profile_provenance": self.profile_provenance,
        }

    @staticmethod
    def from_dict(data):
        """Rebuild a report from :meth:`to_dict` output (or its JSON).

        Payloads declaring a *future* schema version are rejected with
        :class:`~repro.serialize.SchemaVersionError` instead of being
        half-loaded (older versions load fine via ``.get`` defaults).
        """
        check_schema_version("JrpmReport", data.get("schema"),
                             REPORT_SCHEMA_VERSION)
        from ..hydra.config import HydraConfig
        from ..jit.annotate import LoopMeta
        from ..serialize import pairs_to_set
        from ..tls.stats import StlRunStats, TlsStateBreakdown
        from ..tracer.selector import StlPlan
        from ..tracer.stats import LoopStats
        report = JrpmReport(data["name"])
        if data["config"] is not None:
            report.config = HydraConfig.from_dict(data["config"])
        if data["sequential"] is not None:
            report.sequential = RunMeasurement.from_dict(data["sequential"])
        if data["profiling"] is not None:
            report.profiling = RunMeasurement.from_dict(data["profiling"])
        if data.get("tls_is_sequential"):
            report.tls = report.sequential
        elif data["tls"] is not None:
            report.tls = RunMeasurement.from_dict(data["tls"])
        report.loop_table = {int(k): LoopMeta.from_dict(v)
                             for k, v in data["loop_table"].items()}
        report.loop_stats = {int(k): LoopStats.from_dict(v)
                             for k, v in data["loop_stats"].items()}
        report.plans = {int(k): StlPlan.from_dict(v, report.loop_table)
                        for k, v in data["plans"].items()}
        report.predicted_tls_cycles = data["predicted_tls_cycles"]
        report.annotations = data["annotations"]
        report.compile_cycles = data["compile_cycles"]
        report.recompile_cycles = data["recompile_cycles"]
        if data["breakdown"] is not None:
            report.breakdown = TlsStateBreakdown.from_dict(
                data["breakdown"])
        report.stl_run_stats = {int(k): StlRunStats.from_dict(v)
                                for k, v in data["stl_run_stats"].items()}
        report.dynamic_nesting = pairs_to_set(data["dynamic_nesting"])
        report.max_dynamic_depth = data["max_dynamic_depth"]
        trace_aggregates = data.get("trace_aggregates")
        if trace_aggregates is not None:
            from ..trace import TraceAggregates
            report.trace_aggregates = TraceAggregates.from_dict(
                trace_aggregates)
        adaptation = data.get("adaptation")
        if adaptation is not None:
            from ..adapt.log import AdaptationLog
            report.adaptation = AdaptationLog.from_dict(adaptation)
        analysis = data.get("analysis")
        if analysis is not None:
            from ..analysis import AnalysisReport
            report.analysis = AnalysisReport.from_dict(analysis)
        report.profile_provenance = data.get("profile_provenance", "cold")
        return report


@dataclass
class BaselineArtifact:
    """Artifact of :meth:`Jrpm.compile_baseline` — the plain native
    compile plus its sequential reference run."""

    compiled: object                 # CompiledProgram (plain native)
    measurement: RunMeasurement
    compile_cycles: int


@dataclass
class ProfileArtifact:
    """Artifact of :meth:`Jrpm.profile` — steps 1-2 of the pipeline."""

    annotated: object                # CompiledProgram (with annotations)
    profiler: object                 # TestProfiler after the run
    measurement: RunMeasurement
    annotations: int
    analysis: object = None          # AnalysisReport or None

    @property
    def loop_table(self):
        return self.annotated.loop_table

    @property
    def stats(self):
        return self.profiler.stats


@dataclass
class TlsArtifact:
    """Artifact of :meth:`Jrpm.execute_tls` — step 5 of the pipeline
    (or the sequential fallback when nothing was selected)."""

    measurement: RunMeasurement
    breakdown: object                # TlsStateBreakdown
    stl_stats: dict
    recompile_cycles: int


class Jrpm:
    """The complete Java runtime parallelizing machine.

    The five paper steps are exposed as explicit staged methods —
    :meth:`compile_baseline`, :meth:`profile`, :meth:`select`,
    :meth:`recompile`, :meth:`execute_tls` — each returning its
    artifact, so callers (the CLI profiler, the parallel suite runner,
    ablation sweeps) can reuse individual phases.  :meth:`run` is a
    thin facade chaining all five into a :class:`JrpmReport`.
    """

    def __init__(self, config=None, stl_options=None, vm_options=None,
                 trace=None, options=None, analysis=False, profdb=None,
                 warm_start=None):
        """``options`` (a :class:`repro.service.RunOptions`) is the
        preferred single knob; the per-object kwargs remain for callers
        that build the pieces themselves and override the corresponding
        ``options`` projection when both are given."""
        if options is not None:
            config = config or options.hydra_config()
            stl_options = stl_options or options.stl_options()
            vm_options = vm_options or options.vm_options()
            if trace is None and options.trace:
                trace = True
            analysis = analysis or options.analysis
            if profdb is None and options.profile_db:
                profdb = options.profile_db
            if warm_start is None and options.warm_start:
                warm_start = options.warm_start
        self.config = config or HydraConfig()
        self.stl_options = stl_options or StlOptions()
        self.vm_options = vm_options or VmOptions()
        #: static dependence analysis (repro.analysis): when true,
        #: :meth:`profile` analyzes the bytecode first, prunes
        #: statically-hopeless STL candidates before the tracer runs
        #: them, and the assembled report carries an ``AnalysisReport``
        #: cross-checked against the observed TEST arcs.
        self.analysis = bool(analysis)
        #: observability (repro.trace): ``trace`` may be ``None`` (off,
        #: the default), ``True`` (collector with default options), a
        #: :class:`~repro.trace.TraceOptions`, or a ready-made
        #: :class:`~repro.trace.TraceCollector`.
        self.trace = self._normalize_trace(trace)
        #: persistent profile DB (repro.profdb): a
        #: :class:`~repro.profdb.ProfileDb`, a path string, or ``None``
        #: (no persistence).  ``warm_start`` governs how stored
        #: consensus profiles are used: ``"auto"`` (skip TEST profiling
        #: when a confident consensus exists), ``"force"`` (skip
        #: whenever an entry exists, confidence aside) or ``"off"``
        #: (always profile; still records).
        self.profdb = self._normalize_profdb(profdb)
        self.warm_start = warm_start or "auto"

    @staticmethod
    def _normalize_profdb(profdb):
        if not profdb:
            return None
        if isinstance(profdb, str):
            from ..profdb import ProfileDb
            return ProfileDb(profdb)
        return profdb

    @staticmethod
    def _normalize_trace(trace):
        if trace is None or trace is False:
            return None
        from ..trace import TraceCollector, TraceOptions
        if trace is True:
            return TraceCollector()
        if isinstance(trace, TraceOptions):
            return TraceCollector(trace)
        return trace

    # -- staged pipeline -----------------------------------------------------
    def compile_baseline(self, source_or_program, args=()):
        """Step 0: plain native compile + sequential reference run."""
        program = self._program_of(source_or_program)
        plain = compile_program(program, self.config)
        machine = Machine(plain, self.config)
        measurement = RunMeasurement.from_result(machine.run(*args))
        return BaselineArtifact(compiled=plain, measurement=measurement,
                                compile_cycles=plain.compile_cycles)

    def profile(self, source_or_program, args=()):
        """Steps 1-2: annotated compile + sequential run under TEST.

        With :attr:`analysis` on, step 1 is preceded by the static
        dependence pass: loops whose carried must-dependences make
        speedup statically impossible are demoted to non-candidates
        (``reject_reason`` prefixed ``static:``) so TEST never spends
        comparator banks on them.
        """
        program = self._program_of(source_or_program)
        analysis_report = None
        prune = None
        if self.analysis:
            from ..analysis import analyze_program
            analysis_report = analyze_program(
                program, threshold=self.config.min_predicted_speedup)
            prune = analysis_report.prune_set()
        annotated = compile_annotated(program, self.config, prune=prune)
        if self.trace is not None:
            self.trace.set_phase("profile")
        profiler = TestProfiler(self.config, annotated.loop_table,
                                trace=self.trace)
        machine = Machine(annotated, self.config, profiler=profiler)
        measurement = RunMeasurement.from_result(machine.run(*args))
        return ProfileArtifact(annotated=annotated, profiler=profiler,
                               measurement=measurement,
                               annotations=annotation_count(annotated),
                               analysis=analysis_report)

    def make_selector(self, loop_table):
        """The §3.1 selector configured for this Jrpm instance."""
        return Selector(
            self.config, loop_table,
            ignore_allocator_arcs=self.vm_options.parallel_allocator)

    def select(self, profile_artifact):
        """Step 3: choose thread decompositions from TEST statistics."""
        profiler = profile_artifact.profiler
        selector = self.make_selector(profile_artifact.loop_table)
        return selector.select(profiler.stats, profiler.dynamic_nesting)

    def recompile(self, source_or_program, plans):
        """Step 4: recompile selected loops into STLs.

        Returns the recompiled program, or ``None`` when nothing was
        selected.
        """
        if not plans:
            return None
        program = self._program_of(source_or_program)
        return recompile_with_stls(program, self.config, plans,
                                   self.stl_options)

    def execute_tls(self, recompiled, plans, args=(), fallback=None):
        """Step 5: run the speculative code on the Hydra simulator.

        ``fallback`` is the baseline :class:`RunMeasurement` reused
        verbatim when no decomposition was selected (``plans`` empty).
        """
        if not plans or recompiled is None:
            from ..tls.stats import TlsStateBreakdown
            if fallback is None:
                raise ValueError("execute_tls with no plans requires the "
                                 "baseline measurement as fallback")
            breakdown = TlsStateBreakdown()
            breakdown.serial = fallback.cycles
            return TlsArtifact(measurement=fallback, breakdown=breakdown,
                               stl_stats={}, recompile_cycles=0)
        if self.trace is not None:
            self.trace.set_phase("tls")
        machine = Machine(
            recompiled, self.config,
            parallel_allocator=self.vm_options.parallel_allocator,
            speculation_aware_locks=self.vm_options.speculation_aware_locks,
            trace=self.trace)
        runtime = TlsRuntime(machine)
        measurement = RunMeasurement.from_result(machine.run(*args))
        if self.trace is not None:
            self.trace.finish(machine.hierarchy)
        breakdown = runtime.breakdown
        breakdown.serial = max(
            0.0, measurement.cycles - self._stl_wall_cycles(runtime))
        return TlsArtifact(measurement=measurement, breakdown=breakdown,
                           stl_stats=runtime.stl_stats,
                           recompile_cycles=recompiled.compile_cycles)

    def assemble_report(self, name, baseline, profile_artifact, plans,
                        tls_artifact):
        """Package the stage artifacts into a :class:`JrpmReport`."""
        report = JrpmReport(name)
        report.config = self.config
        report.sequential = baseline.measurement
        report.compile_cycles = baseline.compile_cycles
        report.profiling = profile_artifact.measurement
        report.loop_table = profile_artifact.loop_table
        report.loop_stats = profile_artifact.profiler.stats
        report.annotations = profile_artifact.annotations
        report.profiler = profile_artifact.profiler
        report.dynamic_nesting = profile_artifact.profiler.dynamic_nesting
        report.max_dynamic_depth = profile_artifact.profiler.max_dynamic_depth
        report.plans = plans
        report.predicted_tls_cycles = self._predict_total(report, plans)
        report.tls = tls_artifact.measurement
        report.breakdown = tls_artifact.breakdown
        report.stl_run_stats = tls_artifact.stl_stats
        report.recompile_cycles = tls_artifact.recompile_cycles
        if profile_artifact.analysis is not None:
            report.analysis = profile_artifact.analysis
            report.analysis.cross_check(report.loop_table,
                                        report.loop_stats)
            if self.trace is not None:
                for loop in report.analysis.loops:
                    agreement = loop.agreement or {}
                    self.trace.analysis(
                        0.0, agreement.get("loop_id"), loop.method,
                        loop.ordinal, loop.classification, loop.pruned)
        if self.trace is not None:
            report.trace = self.trace
            report.trace_aggregates = self.trace.finish()
        return report

    def analyze(self, source_or_program, args=()):
        """Static dependence analysis cross-checked against a TEST run.

        Unlike :meth:`profile` with :attr:`analysis` on, nothing is
        pruned here — every loop is profiled so the analyzer's
        predicted arcs can be diffed against what TEST actually
        observed (the ``jrpm analyze`` verb).  Returns ``(analysis,
        profile_artifact)`` where ``analysis`` is the cross-checked
        :class:`~repro.analysis.AnalysisReport`.
        """
        from ..analysis import analyze_program
        program = self._program_of(source_or_program)
        analysis = analyze_program(
            program, threshold=self.config.min_predicted_speedup)
        pruning = self.analysis
        self.analysis = False
        try:
            profile_artifact = self.profile(program, args)
        finally:
            self.analysis = pruning
        analysis.cross_check(profile_artifact.loop_table,
                             profile_artifact.profiler.stats)
        profile_artifact.analysis = analysis
        return analysis, profile_artifact

    # -- facade --------------------------------------------------------------
    def run(self, source_or_program, name="program", args=()):
        """Run the full five-step pipeline; returns a JrpmReport.

        With a :attr:`profdb` attached, a confident stored consensus
        for this exact (program, args, options) input lets the run warm
        start — the baseline and TEST executions are replayed from the
        DB and only the TLS run happens for real (plan-equivalent by
        construction; see :mod:`repro.profdb.warmstart`).  Cold runs
        are recorded back into the DB.  Analysis runs always profile
        live (the cross-check needs real TEST arcs).
        """
        program = self._program_of(source_or_program)
        if (self.profdb is not None and self.warm_start != "off"
                and not self.analysis):
            from ..profdb.warmstart import warm_report
            report = warm_report(self, program, name, args)
            if report is not None:
                return report
        baseline = self.compile_baseline(program, args)
        profile_artifact = self.profile(program, args)
        plans = self.select(profile_artifact)
        recompiled = self.recompile(program, plans)
        tls_artifact = self.execute_tls(recompiled, plans, args,
                                        fallback=baseline.measurement)
        report = self.assemble_report(name, baseline, profile_artifact,
                                      plans, tls_artifact)
        self._record_cold(program, report, args)
        return report

    def _record_cold(self, program, report, args):
        """Fold a cold run into the attached profile DB (if any)."""
        if self.profdb is None:
            return
        report.profile_provenance = self.profdb.record(
            program, report, args, self.config, self.stl_options,
            self.vm_options)
        if self.trace is not None:
            self.trace.profdb(0.0, report.profile_provenance,
                              report.name)

    def run_adaptive(self, source_or_program, name="program", args=(),
                     policy=None, epochs=4, stop_on_converged=True,
                     verify=False, adapt_epochs=None):
        """Run the pipeline under the epoch-based feedback controller.

        Unlike :meth:`run` (one-shot: the TEST profile is trusted
        forever), the returned report's ``adaptation`` attribute is an
        :class:`~repro.adapt.log.AdaptationLog` recording every epoch,
        decommit, lock escalation and promotion the
        :class:`~repro.adapt.controller.AdaptController` performed.
        ``policy`` may be an :class:`~repro.adapt.policy.AdaptPolicy`
        instance, a registered policy name, or ``None`` (threshold
        defaults).
        """
        from ..adapt import AdaptController, make_policy
        if adapt_epochs is not None:
            warnings.warn(
                "Jrpm.run_adaptive(adapt_epochs=...) is deprecated; "
                "use epochs= (or RunOptions.epochs)",
                DeprecationWarning, stacklevel=2)
            epochs = adapt_epochs
        if isinstance(policy, str):
            policy = make_policy(policy)
        controller = AdaptController(self, policy=policy, epochs=epochs,
                                     stop_on_converged=stop_on_converged,
                                     verify=verify)
        program = self._program_of(source_or_program)
        report = controller.run(program, name=name, args=args)
        # Adaptive runs always profile live (the controller owns the
        # epoch loop), but their hard-won decommit/escalation outcomes
        # are written back so future warm starts begin corrected.
        self._record_cold(program, report, args)
        return report

    @staticmethod
    def _stl_wall_cycles(runtime):
        """Approximate master wall-cycles spent inside STL regions: the
        committed/violated CPU time divided by the CPU count plus the
        serial handler overheads."""
        breakdown = runtime.breakdown
        num_cpus = runtime.config.num_cpus
        return (breakdown.run_used + breakdown.wait_used
                + breakdown.run_violated + breakdown.wait_violated
                ) / num_cpus + breakdown.overhead / num_cpus

    def _predict_total(self, report, plans):
        """TEST's predicted whole-program TLS time (Fig. 8 'Predicted').

        Coverage was measured on the annotated run, which is slower than
        plain native code; rescale it to the sequential baseline.
        """
        predicted = report.sequential.cycles
        scale = 1.0
        if report.profiling.cycles:
            scale = report.sequential.cycles / report.profiling.cycles
        for plan in plans.values():
            if plan.multilevel_inner:
                continue    # counted inside the parent's coverage
            prediction = plan.prediction
            if prediction.speedup > 1.0:
                saved = scale * prediction.coverage_cycles * (
                    1.0 - 1.0 / prediction.speedup)
                predicted -= saved
        return max(predicted, report.sequential.cycles * 0.05)

    @staticmethod
    def _program_of(source_or_program):
        if isinstance(source_or_program, str):
            return compile_source(source_or_program)
        return source_or_program


def run_jrpm(source, name="program", config=None, **kwargs):
    """Convenience one-shot pipeline run."""
    return Jrpm(config=config, **kwargs).run(source, name=name)
