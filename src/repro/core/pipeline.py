"""The Jrpm pipeline (paper Figure 1).

1. Compile bytecodes natively with annotation instructions.
2. Run the annotated program sequentially while TEST collects
   statistics on prospective thread decompositions.
3. Post-process the statistics and choose the decompositions with the
   best predicted speedups.
4. Recompile the selected loops into speculative threads.
5. Run the native TLS code.

:class:`Jrpm` drives all five steps and packages every measurement the
benchmark harness needs into a :class:`JrpmReport`.
"""

from dataclasses import dataclass, field

from ..hydra.config import HydraConfig
from ..hydra.machine import Machine
from ..jit.compiler import (annotation_count, compile_annotated,
                            compile_program)
from ..jit.stl import StlOptions, recompile_with_stls
from ..minijava import compile_source
from ..tls.runtime import TlsRuntime
from ..tracer.profiler import TestProfiler
from ..tracer.selector import Selector


@dataclass
class VmOptions:
    """VM-level modifications from paper §5 (Table 3 columns t, u)."""

    parallel_allocator: bool = True       # §5.2 private free lists
    speculation_aware_locks: bool = True  # §5.3 non-serializing locks


@dataclass
class RunMeasurement:
    """One simulated run of the program."""

    cycles: float = 0.0
    instructions: int = 0
    gc_cycles: float = 0.0
    output: list = field(default_factory=list)
    return_value: object = None
    guest_exception: object = None

    @staticmethod
    def from_result(result):
        return RunMeasurement(
            cycles=result.cycles,
            instructions=result.instructions,
            gc_cycles=result.gc_cycles,
            output=result.output,
            return_value=result.return_value,
            guest_exception=result.guest_exception,
        )


class JrpmReport:
    """Everything measured across the pipeline for one benchmark run."""

    def __init__(self, name="program"):
        self.name = name
        self.config = None
        # runs
        self.sequential = None           # RunMeasurement (plain native)
        self.profiling = None            # RunMeasurement (annotated)
        self.tls = None                  # RunMeasurement (speculative)
        # pipeline artifacts
        self.loop_table = {}
        self.loop_stats = {}
        self.plans = {}
        self.predicted_tls_cycles = 0.0
        self.annotations = 0
        self.compile_cycles = 0
        self.recompile_cycles = 0
        self.breakdown = None            # TlsStateBreakdown
        self.stl_run_stats = {}
        self.profiler = None
        self.dynamic_nesting = set()
        self.max_dynamic_depth = 0

    # -- headline numbers ----------------------------------------------------
    @property
    def profiling_slowdown(self):
        if not self.sequential or not self.sequential.cycles:
            return 0.0
        return self.profiling.cycles / self.sequential.cycles

    @property
    def tls_speedup(self):
        """Speedup of the speculative run over sequential (Fig. 8)."""
        if not self.tls or not self.tls.cycles:
            return 1.0
        return self.sequential.cycles / self.tls.cycles

    @property
    def predicted_speedup(self):
        if not self.predicted_tls_cycles:
            return 1.0
        return self.sequential.cycles / self.predicted_tls_cycles

    @property
    def serial_fraction(self):
        """Fraction of sequential execution not covered by any candidate
        STL (Table 3 column i)."""
        if not self.sequential or not self.sequential.cycles:
            return 1.0
        covered = 0.0
        for loop_id, stats in self.loop_stats.items():
            meta = self.loop_table.get(loop_id)
            if meta is None or not meta.candidate:
                continue
            if self._has_candidate_ancestor(loop_id):
                continue
            covered += stats.coverage_cycles
        covered = min(covered, self.profiling.cycles)
        return max(0.0, 1.0 - covered / self.profiling.cycles)

    def _has_candidate_ancestor(self, loop_id):
        meta = self.loop_table.get(loop_id)
        while meta is not None and meta.parent_id is not None:
            parent = self.loop_table.get(meta.parent_id)
            if parent is not None and parent.candidate \
                    and meta.parent_id in self.loop_stats:
                return True
            meta = parent
        # Dynamic (cross-method) nesting counts too.
        for outer, inner in self.dynamic_nesting:
            if inner == loop_id and outer in self.loop_stats:
                outer_meta = self.loop_table.get(outer)
                if outer_meta is not None and outer_meta.candidate:
                    return True
        return False

    @property
    def profile_fraction(self):
        """Fraction of the run executed under profiling before TEST has
        enough data to recompile (§3.1).

        The comparator banks profile every active loop concurrently, so
        the iteration budget accumulates across all selected loops: a
        program whose outermost loop runs only a few large iterations
        still supplies thousands of inner-loop samples per unit time.
        """
        if not self.plans:
            return 1.0
        target = self.config.profile_iteration_target if self.config else 100
        total_threads = sum(stats.threads
                            for stats in self.loop_stats.values())
        if total_threads == 0:
            return 1.0
        return min(1.0, target / total_threads)

    @property
    def total_cycles_with_overheads(self):
        """End-to-end cycles including compile, profiling, selection,
        recompilation and GC (Fig. 9 model)."""
        fraction = self.profile_fraction
        total = self.compile_cycles
        total += fraction * self.profiling.cycles
        if self.plans:
            total += self.recompile_cycles
            total += (1.0 - fraction) * self.tls.cycles
        return total

    @property
    def total_speedup(self):
        total = self.total_cycles_with_overheads
        if not total:
            return 1.0
        return self.sequential.cycles / total

    def phase_cycles(self):
        """Cycle breakdown for the Fig. 9 stacked bars."""
        fraction = self.profile_fraction
        tls_cycles = (1.0 - fraction) * self.tls.cycles if self.plans \
            else 0.0
        profiling_extra = fraction * max(
            0.0, self.profiling.cycles - self.sequential.cycles)
        application = (fraction * self.sequential.cycles + tls_cycles
                       - (self.tls.gc_cycles if self.plans else 0.0)
                       - self.sequential.gc_cycles * fraction)
        return {
            "application": max(0.0, application),
            "gc": (self.sequential.gc_cycles * fraction
                   + (self.tls.gc_cycles if self.plans else 0.0)),
            "compile": self.compile_cycles,
            "profiling": profiling_extra,
            "recompile": self.recompile_cycles if self.plans else 0.0,
        }

    def outputs_match(self, tolerance=1e-6):
        """Check sequential vs TLS output equality (floats approximately:
        reductions are re-associated across CPUs)."""
        a = self.sequential.output
        b = self.tls.output
        if len(a) != len(b):
            return False
        for left, right in zip(a, b):
            if isinstance(left, float) or isinstance(right, float):
                scale = max(abs(left), abs(right), 1.0)
                if abs(left - right) > tolerance * scale:
                    return False
            elif left != right:
                return False
        return True


class Jrpm:
    """The complete Java runtime parallelizing machine."""

    def __init__(self, config=None, stl_options=None, vm_options=None):
        self.config = config or HydraConfig()
        self.stl_options = stl_options or StlOptions()
        self.vm_options = vm_options or VmOptions()

    # -- pipeline ------------------------------------------------------------
    def run(self, source_or_program, name="program", args=()):
        """Run the full five-step pipeline; returns a JrpmReport."""
        program = self._program_of(source_or_program)
        report = JrpmReport(name)
        report.config = self.config

        # Baseline: plain native code, sequential.
        plain = compile_program(program, self.config)
        machine = Machine(plain, self.config)
        report.sequential = RunMeasurement.from_result(machine.run(*args))
        report.compile_cycles = plain.compile_cycles

        # Steps 1-2: annotated run under TEST.
        annotated = compile_annotated(program, self.config)
        profiler = TestProfiler(self.config, annotated.loop_table)
        machine = Machine(annotated, self.config, profiler=profiler)
        report.profiling = RunMeasurement.from_result(machine.run(*args))
        report.loop_table = annotated.loop_table
        report.loop_stats = profiler.stats
        report.annotations = annotation_count(annotated)
        report.profiler = profiler
        report.dynamic_nesting = profiler.dynamic_nesting
        report.max_dynamic_depth = profiler.max_dynamic_depth

        # Step 3: choose decompositions.
        selector = Selector(
            self.config, annotated.loop_table,
            ignore_allocator_arcs=self.vm_options.parallel_allocator)
        plans = selector.select(profiler.stats, profiler.dynamic_nesting)
        report.plans = plans
        report.predicted_tls_cycles = self._predict_total(report, plans)

        # Steps 4-5: recompile + speculative run.
        if plans:
            tls_compiled = recompile_with_stls(program, self.config, plans,
                                               self.stl_options)
            report.recompile_cycles = tls_compiled.compile_cycles
            machine = Machine(
                tls_compiled, self.config,
                parallel_allocator=self.vm_options.parallel_allocator,
                speculation_aware_locks=(
                    self.vm_options.speculation_aware_locks))
            runtime = TlsRuntime(machine)
            report.tls = RunMeasurement.from_result(machine.run(*args))
            report.breakdown = runtime.breakdown
            report.breakdown.serial = max(
                0.0, report.tls.cycles
                - self._stl_wall_cycles(runtime))
            report.stl_run_stats = runtime.stl_stats
        else:
            report.tls = report.sequential
            from ..tls.stats import TlsStateBreakdown
            report.breakdown = TlsStateBreakdown()
            report.breakdown.serial = report.sequential.cycles
        return report

    @staticmethod
    def _stl_wall_cycles(runtime):
        """Approximate master wall-cycles spent inside STL regions: the
        committed/violated CPU time divided by the CPU count plus the
        serial handler overheads."""
        breakdown = runtime.breakdown
        num_cpus = runtime.config.num_cpus
        return (breakdown.run_used + breakdown.wait_used
                + breakdown.run_violated + breakdown.wait_violated
                ) / num_cpus + breakdown.overhead / num_cpus

    def _predict_total(self, report, plans):
        """TEST's predicted whole-program TLS time (Fig. 8 'Predicted').

        Coverage was measured on the annotated run, which is slower than
        plain native code; rescale it to the sequential baseline.
        """
        predicted = report.sequential.cycles
        scale = 1.0
        if report.profiling.cycles:
            scale = report.sequential.cycles / report.profiling.cycles
        for plan in plans.values():
            if plan.multilevel_inner:
                continue    # counted inside the parent's coverage
            prediction = plan.prediction
            if prediction.speedup > 1.0:
                saved = scale * prediction.coverage_cycles * (
                    1.0 - 1.0 / prediction.speedup)
                predicted -= saved
        return max(predicted, report.sequential.cycles * 0.05)

    @staticmethod
    def _program_of(source_or_program):
        if isinstance(source_or_program, str):
            return compile_source(source_or_program)
        return source_or_program


def run_jrpm(source, name="program", config=None, **kwargs):
    """Convenience one-shot pipeline run."""
    return Jrpm(config=config, **kwargs).run(source, name=name)
