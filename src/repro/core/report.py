"""Human-readable rendering of a :class:`JrpmReport`."""

from ..workloads.registry import CATEGORY_SPEEDUP_BANDS


def format_report(report, verbose=False):
    """Render one pipeline report as text (used by the CLI/examples)."""
    lines = []
    out = lines.append
    out("=== Jrpm report: %s ===" % report.name)
    out("")
    out("sequential run:      %12.0f cycles   (%d instructions)"
        % (report.sequential.cycles, report.sequential.instructions))
    out("profiled run:        %12.0f cycles   (TEST slowdown %+.1f%%)"
        % (report.profiling.cycles,
           (report.profiling_slowdown - 1.0) * 100.0))
    out("speculative run:     %12.0f cycles" % report.tls.cycles)
    out("")
    out("prospective STLs:    %6d loops" % len(report.loop_table))
    out("selected STLs:       %6d" % len(report.plans))
    out("predicted speedup:   %8.2fx" % report.predicted_speedup)
    out("actual TLS speedup:  %8.2fx on %d CPUs"
        % (report.tls_speedup, report.config.num_cpus))
    if verbose or report.profile_provenance != "cold":
        out("profile provenance:  %8s%s"
            % (report.profile_provenance,
               "   (TEST statistics replayed from the profile DB)"
               if report.profile_provenance == "warm" else ""))
    out("total speedup:       %8.2fx (compile + profile + recompile + GC)"
        % report.total_speedup)
    out("outputs match:       %8s" % report.outputs_match())
    breakdown = report.breakdown
    out("")
    out("speculative execution: %d commits, %d violations, %d squashes, "
        "%d overflow stalls, %d lock waits"
        % (breakdown.commits, breakdown.violations, breakdown.squashes,
           breakdown.overflow_stalls, breakdown.lock_waits))
    fractions = breakdown.fractions()
    out("state breakdown:     " + "  ".join(
        "%s %.1f%%" % (name, fractions[key] * 100.0)
        for key, name in (("serial", "serial"), ("run_used", "run-used"),
                          ("wait_used", "wait-used"),
                          ("overhead", "overhead"),
                          ("run_violated", "run-vio"),
                          ("wait_violated", "wait-vio"))))
    if verbose and report.plans:
        out("")
        out("selected decompositions:")
        for plan in sorted(report.plans.values(),
                           key=lambda p: -p.prediction.coverage_cycles):
            meta = plan.meta
            extras = []
            if plan.sync:
                extras.append("sync lock")
            if plan.multilevel_inner:
                extras.append("multilevel inner of loop %d"
                              % plan.multilevel_parent)
            if plan.hoist:
                extras.append("hoisted handlers")
            out("  loop %d  %s line %s  depth %d  predicted %.2fx%s"
                % (plan.loop_id, meta.method_name, meta.line, meta.depth,
                   plan.prediction.speedup,
                   ("  [%s]" % ", ".join(extras)) if extras else ""))
            kinds = ", ".join(
                "r%d=%s" % (reg, info.kind)
                for reg, info in sorted(meta.carried_kinds.items()))
            if kinds:
                out("      carried locals: %s" % kinds)
    if verbose and report.stl_run_stats:
        out("")
        out("speculative run (per STL):")
        out("  %-5s %7s %8s %9s %8s %9s %11s" % (
            "loop", "entries", "threads", "avg cyc", "restarts",
            "hwm load", "hwm store"))
        load_limit = report.config.load_buffer_lines
        store_limit = report.config.store_buffer_lines
        for loop_id in sorted(report.stl_run_stats):
            stats = report.stl_run_stats[loop_id]
            load_mark = "%d/%d%s" % (stats.max_load_lines, load_limit,
                                     "!" if stats.max_load_lines
                                     > load_limit else "")
            store_mark = "%d/%d%s" % (stats.max_store_lines, store_limit,
                                      "!" if stats.max_store_lines
                                      > store_limit else "")
            out("  %-5d %7d %8d %9.1f %8d %9s %11s"
                % (loop_id, stats.entries, stats.threads_committed,
                   stats.avg_thread_cycles, stats.restarts,
                   load_mark, store_mark))
        out("  (hwm = speculative-buffer high-water mark in cache "
            "lines, vs the hardware limit; '!' = overflowed)")
    adaptation = getattr(report, "adaptation", None)
    if adaptation is not None:
        out("")
        for line in adaptation.summary_lines(verbose=verbose):
            out(line)
    analysis = getattr(report, "analysis", None)
    if analysis is not None:
        out("")
        for line in format_analysis(analysis,
                                    verbose=verbose).splitlines():
            out(line)
    trace_aggregates = getattr(report, "trace_aggregates", None)
    if verbose and trace_aggregates is not None:
        out("")
        for line in trace_aggregates.summary_lines():
            out(line)
    if verbose and report.loop_stats:
        out("")
        out("TEST profile (per prospective STL):")
        out("  %-5s %-6s %8s %9s %8s %7s" % (
            "loop", "line", "threads", "avg cyc", "arcfreq", "ovf"))
        for loop_id in sorted(report.loop_stats):
            stats = report.loop_stats[loop_id]
            meta = report.loop_table.get(loop_id)
            out("  %-5d %-6s %8d %9.1f %8.2f %7.2f"
                % (loop_id, meta.line if meta else "?", stats.threads,
                   stats.avg_thread_cycles, stats.arc_frequency,
                   stats.overflow_frequency))
    return "\n".join(lines)


def format_analysis(analysis, verbose=False):
    """Render an :class:`~repro.analysis.AnalysisReport` as a per-loop
    table: lattice classification, carried-local kinds, predicted arcs
    and (when a TEST profile was cross-checked) profiler agreement."""
    lines = []
    out = lines.append
    counts = analysis.counts()
    out("static dependence analysis (%d methods, %d loops; "
        "absent %d / may %d / must %d; %d pruned, threshold %.2fx):"
        % (analysis.methods_analyzed, len(analysis.loops),
           counts["absent"], counts["may"], counts["must"],
           len(analysis.pruned()), analysis.threshold))
    out("  %-24s %-6s %-7s %-8s %-18s %s" % (
        "loop", "line", "class", "bound", "agreement", "notes"))
    for loop in analysis.loops:
        label = "%s#%d" % (loop.method, loop.ordinal)
        bound = ("%.2fx" % loop.speedup_bound
                 if loop.speedup_bound is not None else "-")
        agreement = loop.agreement
        if agreement is None:
            agree_text = "-"
        else:
            benign = (len(agreement.get("allocator", ()))
                      + len(agreement.get("privatized", ())))
            agree_text = "+%d/?%d/~%d/!%d" % (
                len(agreement["confirmed"]),
                len(agreement["unobserved"]), benign,
                len(agreement["missed"]))
        notes = []
        if loop.pruned:
            notes.append("PRUNED")
        if loop.has_calls:
            notes.append("calls")
        kinds = {}
        for reg in loop.carried:
            kinds[reg.kind] = kinds.get(reg.kind, 0) + 1
        notes.extend("%d %s" % (count, kind)
                     for kind, count in sorted(kinds.items()))
        out("  %-24s %-6s %-7s %-8s %-18s %s" % (
            label, loop.line, loop.classification, bound, agree_text,
            ", ".join(notes)))
        if verbose:
            for dep in loop.deps:
                distance = ("d=%s" % dep.distance
                            if dep.distance is not None else "")
                out("      %-6s %-7s %-14s line %s->%s %-5s %s" % (
                    dep.kind, dep.classification, dep.target,
                    dep.store_line, dep.load_line, distance,
                    dep.reason))
    if any(loop.agreement is not None for loop in analysis.loops):
        out("  (agreement: +confirmed / ?predicted-but-unobserved "
            "(TEST records only critical arcs) /")
        out("   ~benign-observed (allocator metadata or privatized "
            "locals) / !observed-but-missed)")
    return "\n".join(lines)


def format_suite_summary(reports):
    """Summarize a {name: report} sweep by paper category."""
    from ..workloads import lookup
    lines = []
    by_category = {}
    for name, report in reports.items():
        try:
            category = lookup(name).category
        except KeyError:
            category = "other"
        by_category.setdefault(category, []).append((name, report))
    for category, entries in by_category.items():
        lines.append("-- %s --" % category)
        speedups = []
        for name, report in sorted(entries):
            lines.append("  %-14s %6.2fx  (predicted %5.2fx, "
                         "profiling %+5.1f%%)"
                         % (name, report.tls_speedup,
                            report.predicted_speedup,
                            (report.profiling_slowdown - 1) * 100))
            speedups.append(report.tls_speedup)
        product = 1.0
        for s in speedups:
            product *= s
        geomean = product ** (1.0 / len(speedups)) if speedups else 0.0
        band = CATEGORY_SPEEDUP_BANDS.get(category)
        band_text = ("   paper band %.1f-%.1fx" % band) if band else ""
        lines.append("  geomean: %.2fx%s" % (geomean, band_text))
    return "\n".join(lines)
