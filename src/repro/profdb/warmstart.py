"""Warm-start execution from a stored consensus profile.

A cold run pays three sequential executions (plain baseline, annotated
TEST run, speculative TLS run); a warm start pays only the last.  The
simulator is fully deterministic — same source, args and options always
produce the same cycle counts, loop ids and TEST statistics — so when
the profile DB holds a confident consensus for the exact (program,
args, options) input, the stored baseline/TEST measurements and merged
per-loop statistics *are* what profiling would re-derive, and the
pipeline can skip straight to selection.

The rejoin step is deliberately paranoid: every stored loop must match
the freshly annotated loop table on loop id, method, ordinal and line,
or the whole warm start is abandoned in favour of a cold run.  Warm
runs write back only usage counters and speculative-buffer high-water
marks (:meth:`~repro.profdb.db.ProfileDb.record_warm`), never merged
statistics, so a warm run can never perturb the consensus it was
derived from — warm run N+1 equals warm run 1 equals cold.
"""

from ..jit.compiler import compile_annotated
from ..tracer.stats import LoopStats
from .records import PROVENANCE_WARM, site_key, split_site_key


class StoredProfiler:
    """A :class:`~repro.tracer.profiler.TestProfiler` stand-in rebuilt
    from stored consensus statistics — exposes exactly the three
    attributes ``Jrpm.assemble_report`` reads off a profiler."""

    def __init__(self, stats, dynamic_nesting, max_dynamic_depth):
        #: {loop_id: LoopStats} reconstructed in discovery order
        self.stats = stats
        #: set of (outer_id, inner_id) dynamic nesting pairs
        self.dynamic_nesting = dynamic_nesting
        self.max_dynamic_depth = max_dynamic_depth


def rejoin_stats(entry, loop_table):
    """Rebind a stored :class:`~repro.profdb.records.InputProfile` to a
    freshly annotated loop table.

    Returns ``(stats, dynamic_nesting, max_dynamic_depth)`` with
    ``stats`` as ``{loop_id: LoopStats}`` in the stored discovery order
    (the selector breaks benefit ties by dict insertion order, so order
    fidelity is part of plan equivalence) — or ``None`` if any stored
    loop fails to match its fresh counterpart exactly.
    """
    stats = {}
    for key, loop in entry.loops.items():
        meta = loop_table.get(loop.loop_id)
        if meta is None:
            return None
        method_name, ordinal = split_site_key(key)
        if (meta.method_name != method_name or meta.ordinal != ordinal
                or meta.line != loop.line):
            return None
        stats[loop.loop_id] = LoopStats.from_dict(loop.stats)
    nesting = {tuple(pair) for pair in entry.nesting}
    return stats, nesting, entry.max_dynamic_depth


def warm_report(jrpm, program, name, args):
    """Attempt a warm-started pipeline run; ``None`` means run cold.

    Skips the baseline and TEST executions by replaying the stored
    measurements, feeds the stored statistics into the live selector
    (with adapt write-back applied: decommitted sites are banned,
    escalated sites get forced synchronization), then executes TLS for
    real and assembles a normal :class:`~repro.core.pipeline.JrpmReport`
    with ``profile_provenance == "warm"``.
    """
    from ..core.pipeline import (BaselineArtifact, ProfileArtifact,
                                 RunMeasurement)
    db = jrpm.profdb
    entry = db.warm_entry(program, name, args, jrpm.config,
                          jrpm.stl_options, jrpm.vm_options,
                          force=jrpm.warm_start == "force")
    if entry is None:
        return None
    annotated = compile_annotated(program, jrpm.config)
    joined = rejoin_stats(entry, annotated.loop_table)
    if joined is None:
        return None
    stats, nesting, max_depth = joined
    selector = jrpm.make_selector(annotated.loop_table)
    banned = tuple(loop.loop_id for loop in entry.loops.values()
                   if loop.decommits > 0)
    plans = selector.select(stats, nesting, banned=banned)
    for loop_id, plan in plans.items():
        meta = annotated.loop_table[loop_id]
        stored = entry.loops.get(site_key(meta.method_name, meta.ordinal))
        if stored is not None and stored.escalations > 0 \
                and plan.sync is None:
            sync = selector.synthesize_sync(stats[loop_id],
                                            plan.prediction, force=True)
            if sync is not None:
                plan.sync = sync
                plan.sync_escalated = True
    recompiled = jrpm.recompile(program, plans)
    sequential = RunMeasurement.from_dict(entry.sequential)
    baseline = BaselineArtifact(compiled=None, measurement=sequential,
                                compile_cycles=entry.compile_cycles)
    profile_artifact = ProfileArtifact(
        annotated=annotated,
        profiler=StoredProfiler(stats, nesting, max_depth),
        measurement=RunMeasurement.from_dict(entry.profiling),
        annotations=entry.annotations)
    tls_artifact = jrpm.execute_tls(recompiled, plans, args,
                                    fallback=sequential)
    report = jrpm.assemble_report(name, baseline, profile_artifact,
                                  plans, tls_artifact)
    report.profile_provenance = PROVENANCE_WARM
    db.record_warm(program, report, args, jrpm.config, jrpm.stl_options,
                   jrpm.vm_options)
    if jrpm.trace is not None:
        jrpm.trace.profdb(0.0, "warm", name)
    return report
