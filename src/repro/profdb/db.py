"""The on-disk profile database shared by concurrent writers.

One JSON file holds every :class:`~repro.profdb.records.ProgramProfile`.
The concurrency story mirrors ``runner/cache.py`` and adds a lock:

* **writers** take an exclusive ``fcntl.flock`` on a ``.lock`` sidecar
  around the whole read-merge-write cycle, then publish atomically
  (tempfile + ``os.replace``), so two processes recording at once never
  interleave partial writes or lose each other's merge;
* **readers** never lock: ``os.replace`` guarantees any snapshot they
  open is a complete past state, and a corrupt, truncated or
  newer-schema file simply reads as empty (a warm-start miss, never an
  error);
* **GC** bounds the file: least-recently-updated programs and inputs
  are evicted beyond configurable caps on every write.

Keying: programs are keyed by their *shape* (the workload name plus
the qualified method names), so edits to a method land in the same
entry and the per-method structural fingerprints stored there can
invalidate exactly the stale loops, while distinct workloads that
share method names stay apart.  Inputs within a program are keyed by the exact
program fingerprint plus guest argv plus the run-options fingerprint,
so a stored measurement is only replayed for the byte-equivalent
configuration that produced it.
"""

import contextlib
import hashlib
import json
import os
import tempfile
import time

try:
    import fcntl
except ImportError:          # non-POSIX: single-process use still works
    fcntl = None

from ..analysis.fingerprint import method_fingerprints, program_fingerprint
from ..log import get_logger
from ..metrics import get_registry
from ..runner.cache import options_fingerprint
from .merge import DEFAULT_DECAY, MIN_CONFIDENCE, merge_input_profile
from .records import (InputProfile, LoopProfile, PROFDB_SCHEMA_VERSION,
                      PROVENANCE_COLD, PROVENANCE_CONFIRMED,
                      ProgramProfile, site_key)

#: GC caps: at most this many program entries, and inputs per program.
DEFAULT_MAX_PROGRAMS = 64
DEFAULT_MAX_INPUTS = 8

_log = get_logger("profdb")


def _profdb_counter(name, help_text, amount=1, **labels):
    """One increment against the global metrics registry."""
    if amount:
        family = get_registry().counter(name, help_text,
                                        labels=tuple(sorted(labels)))
        (family.labels(**labels) if labels else family).inc(amount)


def default_profdb_path():
    """``$JRPM_PROFDB_PATH`` if set, else the shared cache location
    ``benchmarks/.cache/profdb.json`` under the current directory."""
    env = os.environ.get("JRPM_PROFDB_PATH")
    if env:
        return env
    return os.path.join("benchmarks", ".cache", "profdb.json")


class ProfileDb:
    """Persistent, file-locked, size-bounded profile repository."""

    def __init__(self, path=None, decay=DEFAULT_DECAY,
                 min_confidence=MIN_CONFIDENCE,
                 max_programs=DEFAULT_MAX_PROGRAMS,
                 max_inputs=DEFAULT_MAX_INPUTS):
        self.path = path or default_profdb_path()
        self.decay = decay
        self.min_confidence = min_confidence
        self.max_programs = max_programs
        self.max_inputs = max_inputs

    # ------------------------------------------------------------- keys

    @staticmethod
    def program_key(program, name):
        """Shape key: SHA-256 over the workload name and the
        deterministic method-name list.

        Deliberately *structural*, not content-addressed: editing a
        method keeps the program in the same entry (so the per-method
        fingerprint check can invalidate just the affected loops), and
        input-size variants share one consensus.  The workload name
        disambiguates distinct programs that happen to declare the
        same method names (every MiniJava workload has a
        ``Main.main``) — without it, two such programs would share an
        entry and invalidate each other's inputs on every record.
        """
        digest = hashlib.sha256()
        digest.update(name.encode())
        digest.update(b"\n")
        for method in program.all_methods():
            digest.update(method.qualified_name.encode())
            digest.update(b";")
        return digest.hexdigest()

    @staticmethod
    def input_key(program, args, config, stl_options, vm_options):
        """Input key: exact program fingerprint + argv + options."""
        digest = hashlib.sha256()
        digest.update(program_fingerprint(
            program, include_constants=True).encode())
        digest.update(json.dumps(list(args)).encode())
        digest.update(options_fingerprint(
            config, stl_options, vm_options).encode())
        return digest.hexdigest()

    # -------------------------------------------------------------- i/o

    @contextlib.contextmanager
    def _lock(self):
        """Exclusive advisory lock for the read-merge-write cycle."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        if fcntl is None:
            yield
            return
        with open(self.path + ".lock", "a") as handle:
            fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle.fileno(), fcntl.LOCK_UN)

    def _load(self):
        """Read the whole store → ``{program_key: ProgramProfile}``.

        Missing, truncated, corrupt or newer-schema files all read as
        empty — same degrade-to-miss contract as ``ReportCache.get``.
        """
        try:
            with open(self.path, "r") as handle:
                payload = json.load(handle)
            if not isinstance(payload, dict):
                return {}
            schema = payload.get("schema")
            if not isinstance(schema, int) or schema > PROFDB_SCHEMA_VERSION:
                return {}
            return {key: ProgramProfile.from_dict(entry)
                    for key, entry in payload["programs"].items()}
        except FileNotFoundError:
            return {}
        except (OSError, ValueError, KeyError, TypeError):
            return {}

    def _store(self, programs):
        """Atomically publish the whole store (tempfile + replace)."""
        directory = os.path.dirname(os.path.abspath(self.path))
        os.makedirs(directory, exist_ok=True)
        payload = {"schema": PROFDB_SCHEMA_VERSION,
                   "programs": {key: entry.to_dict()
                                for key, entry in programs.items()}}
        fd, tmp_path = tempfile.mkstemp(dir=directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as handle:
                json.dump(payload, handle)
            os.replace(tmp_path, self.path)
        except BaseException:
            try:
                os.unlink(tmp_path)
            except OSError:
                pass
            raise

    # ----------------------------------------------------------- record

    def _input_from_report(self, report, args, config, stl_options,
                           vm_options, now):
        """Build a fresh :class:`InputProfile` snapshot of one cold run."""
        from ..tracer.selector import Selector
        selector = Selector(
            report.config, report.loop_table,
            ignore_allocator_arcs=vm_options.parallel_allocator)
        decommits, escalations = {}, {}
        if report.adaptation is not None:
            for decision in report.adaptation.applied_decisions():
                if decision.action == "decommit":
                    decommits[decision.loop_id] = \
                        decommits.get(decision.loop_id, 0) + 1
                elif decision.action == "lock_escalate":
                    escalations[decision.loop_id] = \
                        escalations.get(decision.loop_id, 0) + 1
        loops = {}
        for loop_id, stats in report.loop_stats.items():
            meta = report.loop_table[loop_id]
            plan = report.plans.get(loop_id)
            if plan is not None and plan.prediction is not None:
                prediction = plan.prediction.to_dict()
            else:
                prediction = selector.predict(stats).to_dict()
            run_stats = report.stl_run_stats.get(loop_id)
            loops[site_key(meta.method_name, meta.ordinal)] = LoopProfile(
                loop_id=loop_id, line=meta.line, stats=stats.to_dict(),
                prediction=prediction, selected=plan is not None,
                max_load_lines=run_stats.max_load_lines if run_stats else 0,
                max_store_lines=run_stats.max_store_lines if run_stats else 0,
                decommits=decommits.get(loop_id, 0),
                escalations=escalations.get(loop_id, 0))
        plan_sites = sorted(
            site_key(report.loop_table[loop_id].method_name,
                     report.loop_table[loop_id].ordinal)
            for loop_id in report.plans)
        return InputProfile(
            runs=1, warm_runs=0, weight=1.0, drift=0.0, updated=now,
            args=list(args),
            options=options_fingerprint(config, stl_options, vm_options),
            sequential=report.sequential.to_dict(),
            profiling=report.profiling.to_dict(),
            compile_cycles=report.compile_cycles,
            annotations=report.annotations, loops=loops,
            nesting=sorted([list(pair)
                            for pair in report.dynamic_nesting or ()]),
            max_dynamic_depth=report.max_dynamic_depth,
            plan_sites=plan_sites, tls_cycles=report.tls.cycles)

    def _invalidate_stale(self, entry, fresh_methods):
        """Drop loop entries whose method's structural fingerprint
        changed; inputs that lost loops also lose their evidence weight
        (their old statistics no longer describe the current code)."""
        stale = {name for name, fingerprint in entry.methods.items()
                 if fresh_methods.get(name) != fingerprint}
        if not stale:
            entry.methods = fresh_methods
            return 0
        dropped = 0
        for input_entry in entry.inputs.values():
            keep = {}
            for key, loop in input_entry.loops.items():
                method_name, _, _ = key.rpartition("#")
                if method_name in stale:
                    dropped += 1
                else:
                    keep[key] = loop
            if len(keep) != len(input_entry.loops):
                input_entry.loops = keep
                input_entry.weight = 0.0
        entry.methods = fresh_methods
        _profdb_counter("jrpm_profdb_invalidated_loops",
                        "Loop entries dropped on stale method "
                        "fingerprints", amount=dropped)
        if dropped:
            _log.info("invalidated %d stale loop entries for %s",
                      dropped, entry.name)
        return dropped

    def record(self, program, report, args, config, stl_options,
               vm_options):
        """Fold one cold run into the consensus; returns provenance.

        ``"confirmed"`` when a confident consensus already existed for
        this input and the fresh run selected exactly the stored plan
        sites — i.e. full profiling re-derived what the DB already
        knew; ``"cold"`` otherwise.
        """
        now = time.time()
        fresh = self._input_from_report(report, args, config,
                                        stl_options, vm_options, now)
        program_key = self.program_key(program, report.name)
        input_key = self.input_key(program, args, config, stl_options,
                                   vm_options)
        fresh_methods = method_fingerprints(program)
        with self._lock():
            data = self._load()
            entry = data.get(program_key)
            if entry is None:
                entry = ProgramProfile(name=report.name)
                data[program_key] = entry
            self._invalidate_stale(entry, fresh_methods)
            previous = entry.inputs.get(input_key)
            provenance = PROVENANCE_COLD
            if (previous is not None
                    and previous.confidence >= self.min_confidence
                    and sorted(previous.plan_sites) == fresh.plan_sites):
                provenance = PROVENANCE_CONFIRMED
            if previous is None:
                entry.inputs[input_key] = fresh
            else:
                merge_input_profile(previous, fresh, decay=self.decay)
            entry.name = report.name
            entry.runs += 1
            entry.updated = now
            self._gc_data(data)
            self._store(data)
        _profdb_counter("jrpm_profdb_records",
                        "Cold-run folds into the consensus DB",
                        provenance=provenance)
        _profdb_counter("jrpm_profdb_merges",
                        "Consensus merges (existing input re-observed)",
                        amount=1 if previous is not None else 0)
        return provenance

    def record_warm(self, program, report, args, config, stl_options,
                    vm_options):
        """Book-keep a warm-start hit: bump counters and speculative
        buffer high-water marks only — the merged statistics are left
        untouched so warm runs never perturb the consensus they were
        derived from."""
        now = time.time()
        program_key = self.program_key(program, report.name)
        input_key = self.input_key(program, args, config, stl_options,
                                   vm_options)
        with self._lock():
            data = self._load()
            entry = data.get(program_key)
            if entry is None:
                return
            input_entry = entry.inputs.get(input_key)
            if input_entry is None:
                return
            input_entry.warm_runs += 1
            input_entry.updated = now
            for loop in input_entry.loops.values():
                run_stats = report.stl_run_stats.get(loop.loop_id)
                if run_stats is not None:
                    loop.max_load_lines = max(loop.max_load_lines,
                                              run_stats.max_load_lines)
                    loop.max_store_lines = max(loop.max_store_lines,
                                               run_stats.max_store_lines)
            entry.updated = now
            self._store(data)
        _profdb_counter("jrpm_profdb_warm_runs",
                        "Warm-start hits booked against the DB")

    # ------------------------------------------------------------ query

    def warm_entry(self, program, name, args, config, stl_options,
                   vm_options, force=False):
        """The stored :class:`InputProfile` usable for a warm start, or
        ``None`` (unknown program/input, stale method fingerprints, or
        consensus below the confidence gate unless *force*)."""
        data = self._load()
        entry = data.get(self.program_key(program, name))
        if entry is None:
            return None
        if entry.methods != method_fingerprints(program):
            return None
        input_entry = entry.inputs.get(
            self.input_key(program, args, config, stl_options,
                           vm_options))
        if (input_entry is None or input_entry.sequential is None
                or input_entry.profiling is None):
            return None
        if not force and input_entry.confidence < self.min_confidence:
            return None
        return input_entry

    # --------------------------------------------------------- maintain

    def _gc_data(self, data):
        """Evict least-recently-updated entries beyond the caps."""
        evicted = 0
        for entry in data.values():
            while len(entry.inputs) > self.max_inputs:
                oldest = min(entry.inputs,
                             key=lambda key: entry.inputs[key].updated)
                del entry.inputs[oldest]
                evicted += 1
        while len(data) > self.max_programs:
            oldest = min(data, key=lambda key: data[key].updated)
            del data[oldest]
            evicted += 1
        _profdb_counter("jrpm_profdb_gc_evictions",
                        "Entries evicted by the LRU size caps",
                        amount=evicted)
        return evicted

    def gc(self, max_programs=None, max_inputs=None):
        """Run eviction now (optionally with tighter caps); returns the
        number of evicted entries."""
        if max_programs is not None:
            self.max_programs = max_programs
        if max_inputs is not None:
            self.max_inputs = max_inputs
        with self._lock():
            data = self._load()
            evicted = self._gc_data(data)
            self._store(data)
        return evicted

    def export(self):
        """The full store as a validated, JSON-able payload."""
        data = self._load()
        return {"schema": PROFDB_SCHEMA_VERSION,
                "programs": {key: entry.to_dict()
                             for key, entry in data.items()}}

    def stats_dict(self):
        """Summary counters for ``jrpm profdb stats`` and the daemon."""
        data = self._load()
        inputs = [entry for program in data.values()
                  for entry in program.inputs.values()]
        try:
            size_bytes = os.path.getsize(self.path)
        except OSError:
            size_bytes = 0
        return {
            "path": self.path,
            "schema": PROFDB_SCHEMA_VERSION,
            "size_bytes": size_bytes,
            "programs": len(data),
            "inputs": len(inputs),
            "loops": sum(len(entry.loops) for entry in inputs),
            "runs": sum(program.runs for program in data.values()),
            "warm_runs": sum(entry.warm_runs for entry in inputs),
            "confident_inputs": sum(
                1 for entry in inputs
                if entry.confidence >= self.min_confidence),
            "per_program": sorted(
                ({"name": program.name, "runs": program.runs,
                  "inputs": len(program.inputs),
                  "updated": program.updated}
                 for program in data.values()),
                key=lambda row: row["name"]),
        }
