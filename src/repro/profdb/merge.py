"""Weighted aggregation of stored profiles into a consensus.

Every cold run contributes one observation with weight 1; previously
accumulated evidence is first multiplied by :data:`DEFAULT_DECAY`, so a
profile that stops being refreshed gradually loses influence (staleness
decay) and a change in behaviour is adopted within a few runs instead
of being averaged away forever.

Two properties matter for warm-start plan equivalence and are enforced
by tests:

* **fixed point** — merging two equal values returns the *original*
  value object untouched (``merge_value`` short-circuits on equality
  before doing float arithmetic), so re-recording the run the simulator
  deterministically reproduces never drifts a stored statistic across
  an eligibility threshold;
* **losslessness** — merged ``LoopStats`` payloads remain valid inputs
  to ``LoopStats.from_dict`` (all slots preserved, arcs keyed by their
  (store site, load site) pair).

The confidence score gates warm starts: evidence weight pushes it
toward 1, observed run-to-run drift in the sequential cycle count pulls
it toward 0.  A single recorded run scores ``1/2`` — above
:data:`MIN_CONFIDENCE`, so the second run of a workload already warm
starts.
"""

import json

#: multiplier applied to accumulated evidence weight before each merge
DEFAULT_DECAY = 0.9

#: minimum consensus confidence for an ``auto`` warm start
MIN_CONFIDENCE = 0.4


def confidence(weight, drift):
    """Confidence in ``[0, 1)`` from evidence *weight* and *drift*.

    ``weight / (weight + 1)`` rises from 0 (no evidence) through 0.5
    (one run) toward 1; the ``1 / (1 + 4 * drift)`` factor discounts
    consensus built on runs that disagreed with each other.
    """
    if weight <= 0.0:
        return 0.0
    return (weight / (weight + 1.0)) / (1.0 + 4.0 * drift)


def update_drift(old_drift, old_cycles, new_cycles):
    """Exponential moving average of relative cycle-count disagreement."""
    relative = abs(new_cycles - old_cycles) / max(abs(old_cycles), 1.0)
    return 0.5 * old_drift + 0.5 * relative


def merge_value(old, new, w_old, w_new):
    """Weighted mean of two scalars, short-circuiting on equality.

    The equality short-circuit is load-bearing: merging identical runs
    must be a fixed point, and ``(3 * w + 3) / (w + 1)`` is not always
    exactly ``3`` in floats.  Non-numeric values (and booleans) take
    the new side.
    """
    if old == new:
        return old
    if isinstance(old, bool) or not isinstance(old, (int, float)):
        return new
    if isinstance(new, bool) or not isinstance(new, (int, float)):
        return new
    if w_old <= 0.0:
        return new
    return (old * w_old + new * w_new) / (w_old + w_new)


def _merge_arc(old, new, w_old, w_new):
    """Merge two serialized ``ArcStats`` payloads field by field."""
    merged = {}
    for key in set(old) | set(new):
        if key == "min_distance":
            distances = [value for value in (old.get(key), new.get(key))
                         if value is not None]
            merged[key] = min(distances) if distances else None
        else:
            merged[key] = merge_value(old.get(key, 0), new.get(key, 0),
                                      w_old, w_new)
    return merged


def merge_stats_dict(old, new, w_old, w_new):
    """Merge two ``LoopStats.to_dict()`` payloads.

    Scalar slots take the weighted mean (with the fixed-point
    short-circuit); the ``max_*_lines`` high-water marks take the max;
    dependence arcs are keyed by their (store site, load site) pair —
    shared arcs merge field-wise, one-sided arcs are kept as observed.
    """
    merged = {}
    for key in new:
        if key == "arcs":
            continue
        if key == "loop_id":
            merged[key] = new[key]
        elif key in ("max_load_lines", "max_store_lines"):
            merged[key] = max(old.get(key, 0), new[key])
        else:
            merged[key] = merge_value(old.get(key, 0), new[key],
                                      w_old, w_new)
    old_arcs = {json.dumps(arc[:2]): arc for arc in old.get("arcs", ())}
    merged_arcs = []
    for arc in new.get("arcs", ()):
        key = json.dumps(arc[:2])
        previous = old_arcs.pop(key, None)
        if previous is None:
            merged_arcs.append(arc)
        else:
            merged_arcs.append(arc[:2] + [_merge_arc(previous[2], arc[2],
                                                     w_old, w_new)])
    merged_arcs.extend(old_arcs.values())
    merged["arcs"] = merged_arcs
    return merged


def merge_measurement(old, new, w_old, w_new):
    """Merge two ``RunMeasurement.to_dict()`` payloads.

    Cycle and instruction counts take the weighted mean; the program
    output, return value and guest exception are behavioural facts, not
    statistics, and always take the new observation.
    """
    merged = dict(new)
    for key in ("cycles", "instructions", "gc_cycles"):
        merged[key] = merge_value(old.get(key, 0), new.get(key, 0),
                                  w_old, w_new)
    return merged


def merge_input_profile(old, fresh, decay=DEFAULT_DECAY):
    """Fold a fresh cold-run :class:`~repro.profdb.records.InputProfile`
    into the stored consensus *old*, in place, and return it.

    The fresh run always enters with weight 1; the stored evidence is
    first decayed.  Loop entries follow the fresh run's discovery order
    (so a warm start rebuilds the selector's input in the same dict
    order a cold run would produce); adaptation outcome counters
    accumulate across runs rather than being averaged.
    """
    w_old = old.weight * decay
    w_new = 1.0
    if old.sequential is not None and fresh.sequential is not None:
        old.drift = update_drift(old.drift, old.sequential["cycles"],
                                 fresh.sequential["cycles"])
    merged_loops = {}
    for key, loop in fresh.loops.items():
        previous = old.loops.get(key)
        if previous is not None:
            loop.stats = merge_stats_dict(previous.stats, loop.stats,
                                          w_old, w_new)
            loop.max_load_lines = max(previous.max_load_lines,
                                      loop.max_load_lines)
            loop.max_store_lines = max(previous.max_store_lines,
                                       loop.max_store_lines)
            loop.decommits += previous.decommits
            loop.escalations += previous.escalations
        merged_loops[key] = loop
    old.loops = merged_loops
    if old.sequential is not None:
        fresh.sequential = merge_measurement(old.sequential,
                                             fresh.sequential,
                                             w_old, w_new)
    if old.profiling is not None and fresh.profiling is not None:
        fresh.profiling = merge_measurement(old.profiling,
                                            fresh.profiling,
                                            w_old, w_new)
    old.sequential = fresh.sequential
    old.profiling = fresh.profiling
    old.compile_cycles = fresh.compile_cycles
    old.annotations = fresh.annotations
    old.nesting = fresh.nesting
    old.max_dynamic_depth = fresh.max_dynamic_depth
    old.plan_sites = fresh.plan_sites
    old.tls_cycles = fresh.tls_cycles
    old.args = fresh.args
    old.options = fresh.options
    old.weight = w_old + w_new
    old.runs += 1
    old.updated = fresh.updated
    return old
