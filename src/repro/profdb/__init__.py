"""Persistent profile-and-decision repository (the profile DB).

Jrpm pays a full annotated sequential execution (the TEST profile)
before any loop can be selected, and the reproduction re-paid that cost
on every cold run: the service's artifact store only memoizes
*identical* requests, and the adapt controller's decommit/escalation
outcomes died with the process.  This package persists what profiling
learned:

* :mod:`repro.profdb.records` — typed per-(program, input, loop site)
  entries carrying dependence-arc statistics, thread sizes, speculative
  buffer high-water marks, the selector's Prediction and adaptation
  outcomes, with lossless round-trips and a ``validate_profdb_dict``
  schema gate;
* :mod:`repro.profdb.merge` — weighted statistical aggregation of
  profiles from repeated runs into a confidence-scored consensus, with
  staleness decay;
* :mod:`repro.profdb.db` — :class:`ProfileDb`, the file-locked,
  corrupt-tolerant, size-bounded JSON store shared by concurrent
  writers (CLI runs and the ``jrpm serve`` daemon);
* :mod:`repro.profdb.warmstart` — the warm-start path: when a
  confident consensus exists, ``Jrpm.run`` skips the sequential
  baseline *and* the TEST profiling run entirely and feeds the stored
  statistics straight into the selector.  The simulator is
  deterministic, so a warm run is plan-equivalent to a cold one (the
  ``slow`` differential sweep in ``tests/test_profdb_sweep.py`` proves
  it over all 26 registry workloads).

See ``docs/profdb.md`` for the record model and the amortization
numbers.
"""

from .db import ProfileDb, default_profdb_path
from .merge import (DEFAULT_DECAY, MIN_CONFIDENCE, confidence,
                    merge_measurement, merge_stats_dict, merge_value)
from .records import (InputProfile, LoopProfile, PROFDB_SCHEMA_VERSION,
                      PROVENANCE_COLD, PROVENANCE_CONFIRMED,
                      PROVENANCE_WARM, PROVENANCES, ProgramProfile,
                      site_key, split_site_key, validate_profdb_dict)
from .warmstart import StoredProfiler, rejoin_stats, warm_report

__all__ = ["ProfileDb", "default_profdb_path",
           "PROFDB_SCHEMA_VERSION", "PROVENANCES", "PROVENANCE_COLD",
           "PROVENANCE_WARM", "PROVENANCE_CONFIRMED",
           "LoopProfile", "InputProfile", "ProgramProfile",
           "site_key", "split_site_key", "validate_profdb_dict",
           "DEFAULT_DECAY", "MIN_CONFIDENCE", "confidence",
           "merge_value", "merge_stats_dict", "merge_measurement",
           "StoredProfiler", "rejoin_stats", "warm_report"]
