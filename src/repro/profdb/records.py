"""Typed records for the persistent profile repository.

Three nested layers, mirroring how profiles are keyed:

* :class:`ProgramProfile` — one entry per *program shape* (the set of
  qualified method names), carrying the per-method structural
  fingerprints used for staleness invalidation and a dict of inputs;
* :class:`InputProfile` — one consensus profile per (exact program
  fingerprint, args, options fingerprint) triple: the stored sequential
  and TEST measurements, annotation count, dynamic nesting, the merged
  per-loop statistics, the selected plan sites and the merge bookkeeping
  (weight, drift, confidence);
* :class:`LoopProfile` — one entry per loop site: the merged
  :class:`~repro.tracer.stats.LoopStats` payload (dependence arcs,
  thread sizes, speculative buffer footprints), the selector's
  :class:`~repro.tracer.selector.Prediction`, TLS-run buffer high-water
  marks, and accumulated adaptation outcomes (decommit / escalation
  counts written back from :class:`~repro.adapt.log.AdaptationLog`).

All three round-trip losslessly through ``to_dict``/``from_dict`` and a
whole database payload is gated by :func:`validate_profdb_dict`, in the
same style as ``repro.adapt.log.validate_log_dict`` and friends.
"""

#: Bump when the stored payload shape changes.  Readers treat any file
#: with a *newer* schema as empty rather than guessing at its layout.
PROFDB_SCHEMA_VERSION = 1

#: Report provenance values (``JrpmReport.profile_provenance``).
PROVENANCE_COLD = "cold"          # full TEST profiling ran
PROVENANCE_WARM = "warm"          # profiling skipped, stats from the DB
PROVENANCE_CONFIRMED = "confirmed"  # full profiling ran AND reproduced
                                    # the stored consensus plan
PROVENANCES = (PROVENANCE_COLD, PROVENANCE_WARM, PROVENANCE_CONFIRMED)


def site_key(method_name, ordinal):
    """Stable string key for a loop site: ``"Method.name#ordinal"``.

    Loop ids are deterministic for one compile but are not meaningful
    across program edits; (method, ordinal) survives as long as the
    method's structural fingerprint does.
    """
    return "%s#%d" % (method_name, ordinal)


def split_site_key(key):
    """Inverse of :func:`site_key` → ``(method_name, ordinal)``."""
    method_name, _, ordinal = key.rpartition("#")
    return method_name, int(ordinal)


class LoopProfile:
    """Consensus profile of one loop site within one input."""

    __slots__ = ("loop_id", "line", "stats", "prediction", "selected",
                 "max_load_lines", "max_store_lines", "decommits",
                 "escalations")

    def __init__(self, loop_id, line, stats, prediction=None,
                 selected=False, max_load_lines=0, max_store_lines=0,
                 decommits=0, escalations=0):
        #: loop id from the deterministic annotating compile
        self.loop_id = loop_id
        #: source line of the loop header
        self.line = line
        #: merged ``LoopStats.to_dict()`` payload (arcs and all)
        self.stats = stats
        #: ``Prediction.to_dict()`` payload or None if never predicted
        self.prediction = prediction
        #: True if the selector picked this loop on the last cold run
        self.selected = selected
        #: speculative-buffer high-water marks from real TLS runs
        self.max_load_lines = max_load_lines
        self.max_store_lines = max_store_lines
        #: adaptation outcomes written back from ``AdaptationLog``
        self.decommits = decommits
        self.escalations = escalations

    def to_dict(self):
        """Lossless JSON-able payload."""
        return {slot: getattr(self, slot) for slot in self.__slots__}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(**{slot: data[slot] for slot in cls.__slots__})


class InputProfile:
    """Consensus profile for one (program, args, options) input."""

    __slots__ = ("runs", "warm_runs", "weight", "drift", "updated",
                 "args", "options", "sequential", "profiling",
                 "compile_cycles", "annotations", "loops", "nesting",
                 "max_dynamic_depth", "plan_sites", "tls_cycles")

    def __init__(self, runs=0, warm_runs=0, weight=0.0, drift=0.0,
                 updated=0.0, args=(), options="", sequential=None,
                 profiling=None, compile_cycles=0, annotations=0,
                 loops=None, nesting=(), max_dynamic_depth=1,
                 plan_sites=(), tls_cycles=0.0):
        #: cold runs merged into this consensus / warm-start hits served
        self.runs = runs
        self.warm_runs = warm_runs
        #: decayed evidence weight and run-to-run relative drift
        self.weight = weight
        self.drift = drift
        #: unix timestamp of the last write (GC eviction order)
        self.updated = updated
        #: guest argv and options fingerprint this input was keyed by
        self.args = list(args)
        self.options = options
        #: stored ``RunMeasurement.to_dict()`` payloads
        self.sequential = sequential
        self.profiling = profiling
        self.compile_cycles = compile_cycles
        self.annotations = annotations
        #: {site_key: LoopProfile}, in profiler discovery order
        self.loops = {} if loops is None else loops
        #: dynamic nesting pairs as [outer_loop_id, inner_loop_id]
        self.nesting = [list(pair) for pair in nesting]
        self.max_dynamic_depth = max_dynamic_depth
        #: site keys of the loops the selector picked (sorted)
        self.plan_sites = list(plan_sites)
        #: TLS cycles of the last cold run (amortization reporting)
        self.tls_cycles = tls_cycles

    @property
    def confidence(self):
        """Confidence score in [0, 1): grows with merged evidence,
        shrinks with observed run-to-run drift."""
        from .merge import confidence
        return confidence(self.weight, self.drift)

    def to_dict(self):
        """Lossless JSON-able payload."""
        data = {slot: getattr(self, slot) for slot in self.__slots__
                if slot != "loops"}
        data["loops"] = {key: loop.to_dict()
                         for key, loop in self.loops.items()}
        return data

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        kwargs = {slot: data[slot] for slot in cls.__slots__
                  if slot != "loops"}
        kwargs["loops"] = {key: LoopProfile.from_dict(loop)
                           for key, loop in data["loops"].items()}
        return cls(**kwargs)


class ProgramProfile:
    """All stored knowledge about one program shape."""

    __slots__ = ("name", "runs", "updated", "methods", "inputs")

    def __init__(self, name="program", runs=0, updated=0.0,
                 methods=None, inputs=None):
        #: last name the program was run under (informational)
        self.name = name
        #: total cold runs recorded against this program
        self.runs = runs
        self.updated = updated
        #: {qualified_name: structural method fingerprint} — the
        #: staleness map; a mismatch invalidates that method's loops
        self.methods = {} if methods is None else methods
        #: {input_key: InputProfile}
        self.inputs = {} if inputs is None else inputs

    def to_dict(self):
        """Lossless JSON-able payload."""
        return {"name": self.name, "runs": self.runs,
                "updated": self.updated, "methods": dict(self.methods),
                "inputs": {key: entry.to_dict()
                           for key, entry in self.inputs.items()}}

    @classmethod
    def from_dict(cls, data):
        """Inverse of :meth:`to_dict`."""
        return cls(name=data["name"], runs=data["runs"],
                   updated=data["updated"], methods=dict(data["methods"]),
                   inputs={key: InputProfile.from_dict(entry)
                           for key, entry in data["inputs"].items()})


def _check_number(problems, data, key, where, optional=False):
    """Append a problem string unless ``data[key]`` is a plain number."""
    if key not in data:
        if not optional:
            problems.append("%s: missing %r" % (where, key))
        return
    value = data[key]
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        problems.append("%s: %r is not a number (%r)" % (where, key, value))


def _check_loop(problems, data, where):
    """Validate one serialized :class:`LoopProfile`."""
    if not isinstance(data, dict):
        problems.append("%s: not an object" % where)
        return
    for key in ("loop_id", "line", "max_load_lines", "max_store_lines",
                "decommits", "escalations"):
        _check_number(problems, data, key, where)
    stats = data.get("stats")
    if not isinstance(stats, dict):
        problems.append("%s: 'stats' is not an object" % where)
    else:
        for key in ("loop_id", "entries", "threads", "total_thread_cycles"):
            _check_number(problems, stats, key, where + ".stats")
        if not isinstance(stats.get("arcs"), list):
            problems.append("%s.stats: 'arcs' is not a list" % where)
    prediction = data.get("prediction")
    if prediction is not None and not isinstance(prediction, dict):
        problems.append("%s: 'prediction' is neither null nor an object"
                        % where)


def _check_input(problems, data, where):
    """Validate one serialized :class:`InputProfile`."""
    if not isinstance(data, dict):
        problems.append("%s: not an object" % where)
        return
    for key in ("runs", "warm_runs", "weight", "drift", "updated",
                "compile_cycles", "annotations", "max_dynamic_depth",
                "tls_cycles"):
        _check_number(problems, data, key, where)
    if not isinstance(data.get("args"), list):
        problems.append("%s: 'args' is not a list" % where)
    if not isinstance(data.get("options"), str):
        problems.append("%s: 'options' is not a string" % where)
    for key in ("sequential", "profiling"):
        measurement = data.get(key)
        if measurement is None:
            problems.append("%s: missing %r measurement" % (where, key))
        elif not isinstance(measurement, dict):
            problems.append("%s: %r is not an object" % (where, key))
        else:
            _check_number(problems, measurement, "cycles",
                          "%s.%s" % (where, key))
    if not isinstance(data.get("nesting"), list):
        problems.append("%s: 'nesting' is not a list" % where)
    if not isinstance(data.get("plan_sites"), list):
        problems.append("%s: 'plan_sites' is not a list" % where)
    loops = data.get("loops")
    if not isinstance(loops, dict):
        problems.append("%s: 'loops' is not an object" % where)
        return
    for key, loop in loops.items():
        _check_loop(problems, loop, "%s.loops[%s]" % (where, key))


def validate_profdb_dict(data):
    """Validate a whole serialized profile database.

    Returns a list of human-readable problem strings; an empty list
    means the payload is well-formed.  Shape-only (like the trace,
    adapt-log and analysis validators): values are checked for type,
    not plausibility.
    """
    problems = []
    if not isinstance(data, dict):
        return ["top level: not an object"]
    schema = data.get("schema")
    if not isinstance(schema, int):
        problems.append("top level: 'schema' is not an integer")
    elif schema > PROFDB_SCHEMA_VERSION:
        problems.append("top level: schema %d is newer than supported %d"
                        % (schema, PROFDB_SCHEMA_VERSION))
    programs = data.get("programs")
    if not isinstance(programs, dict):
        problems.append("top level: 'programs' is not an object")
        return problems
    for program_key, program in programs.items():
        where = "programs[%s]" % program_key[:12]
        if not isinstance(program, dict):
            problems.append("%s: not an object" % where)
            continue
        if not isinstance(program.get("name"), str):
            problems.append("%s: 'name' is not a string" % where)
        for key in ("runs", "updated"):
            _check_number(problems, program, key, where)
        methods = program.get("methods")
        if not isinstance(methods, dict):
            problems.append("%s: 'methods' is not an object" % where)
        else:
            for name, fingerprint in methods.items():
                if not isinstance(fingerprint, str):
                    problems.append("%s.methods[%s]: fingerprint is not "
                                    "a string" % (where, name))
        inputs = program.get("inputs")
        if not isinstance(inputs, dict):
            problems.append("%s: 'inputs' is not an object" % where)
            continue
        for input_key, entry in inputs.items():
            _check_input(problems, entry,
                         "%s.inputs[%s]" % (where, input_key[:12]))
    return problems
