"""Predecoded dispatch tables for the Hydra IR machine.

:func:`dispatch_table` turns one code unit (a
:class:`~repro.jit.compiler.CompiledMethod` or a TLS thread-code unit)
into a list indexed by pc whose entries are handler closures
``handler(ctx, frame) -> signal-or-None``.  Three handler species:

* **block functions** — ``exec``-generated Python functions covering a
  maximal straight-line run of *batchable* instructions (pure
  register/ALU work: no memory access, no signals, no runtime
  services).  One dispatch executes the whole run and, when the run
  ends in a branch, the branch is absorbed ("fused") into the same
  function — the hot ``ADDI+BLT`` / ``SLT+BNEZ`` inductor idioms the
  codegen emits constantly execute without re-entering the dispatch
  loop.  Adjacent integer-compare + ``BEQZ/BNEZ`` pairs additionally
  fuse into a single Python comparison.
* **specialised singletons** — hand-written closures for the hot
  non-batchable ops (``LW/SW/LWNV``, ``CALL``, ``RET``, ``INTRIN`` and
  the TEST annotation ops) with operands pre-bound, so the per-step
  work is exactly the semantic action plus cycle accounting.
* **legacy fallback** — everything rare (ALLOC, CALLV, locks, TLS
  pseudo-ops, …) delegates to ``CpuContext.step_legacy``, the original
  ``if/elif`` interpreter, which stays the single source of truth for
  those semantics.

Cycle exactness
---------------
Every handler reproduces the legacy ``step()`` observable effects
bit-for-bit: ``frame.pc`` and ``ctx.instret`` are incremented *before*
the instruction's effect (so a raising instruction is counted, exactly
as the legacy dispatcher counts it), per-op cycle costs come from the
same cost model, ``ctx.time``/``ctx.compute_cycles`` for a raising
instruction's *predecessors* are flushed before the raise, and
``ctx.current_site`` / profiler hook arguments are bound to
content-identical ``(unit_name, instr)`` tuples.

Two table granularities exist per code unit:

* :func:`dispatch_table` — fully batched blocks.  Used wherever a
  single simulated CPU runs alone (``Machine.run``'s sequential loop),
  where executing a straight-line run atomically cannot change any
  observable: memory accesses and signals are always step boundaries,
  so they occur at identical clock values either way.
* :func:`step_table` — single-instruction handlers (same specialised
  closures, no multi-instruction blocks, no compare+branch fusion).
  Used by the TLS event loop, whose smallest-clock scheduler
  interleaves CPUs *between individual instructions*: a batched block
  would let one thread's clock overrun a concurrent violating store
  and inflate its squashed-work accounting.  Stepwise tables keep the
  interleaving — and therefore every violation/restart cycle count —
  bit-identical to the legacy engine while still replacing the
  if/elif chain with one table index + pre-bound closure call.
"""

import math

from ..bytecode.instructions import f2i, i32, idiv, irem, u32
from ..errors import (ArithmeticException, ArrayIndexException,
                      NullPointerException)
from ..jit.ir import BRANCH_IR_OPS, IROp

#: Ops a block function may contain: pure register/ALU work with no
#: memory traffic, no signals, no runtime services and no profiler
#: hooks.  Raising ops (DIV/REM/NULLCHK/BOUNDCHK) are included — their
#: raise paths flush pc/instret/time before raising (see module doc).
BATCHABLE_IR_OPS = frozenset({
    IROp.LI, IROp.MOV, IROp.ADD, IROp.ADDI, IROp.SUB, IROp.MUL, IROp.DIV,
    IROp.REM, IROp.NEG, IROp.AND, IROp.OR, IROp.XOR, IROp.SHL, IROp.SHR,
    IROp.USHR, IROp.SLLI, IROp.FADD, IROp.FSUB, IROp.FMUL, IROp.FDIV,
    IROp.FNEG, IROp.FREM, IROp.SEQ, IROp.SNE, IROp.SLT, IROp.SLE,
    IROp.SGT, IROp.SGE, IROp.FCMP, IROp.I2F, IROp.F2I, IROp.NULLCHK,
    IROp.BOUNDCHK,
})

#: Per-op cycle costs diverging from the default 1 (mirror of the
#: legacy ``step()`` cost model — keep in sync).
_COSTS = {
    IROp.MUL: 2, IROp.FMUL: 3,
    IROp.DIV: 12, IROp.REM: 12, IROp.FDIV: 12, IROp.FREM: 12,
}

_ANNOTATION_OPS = frozenset({IROp.SLOOP, IROp.EOI, IROp.ELOOP,
                             IROp.LWL, IROp.SWL})

#: Ops the event-driven TLS scheduler may execute during *run-ahead*
#: (see ``repro.tls.runtime``): instructions whose effects are confined
#: to the executing CPU's architectural state (registers, frame stack,
#: clock, instret, its own pending-output list) and are deterministic
#: given that state.  Everything else — memory traffic, locks, TLS
#: pseudo-ops, allocation, annotation/profiler hooks, TRAP — is a
#: *scheduler event*: it can observe or mutate cross-CPU state, so it
#: must execute in global smallest-clock order.  Branches and fused
#: blocks are local; CALL/RET only touch the private frame stack;
#: INTRIN either computes a pure function or appends to the thread's
#: private output buffer (both replayable on truncation).
TLS_LOCAL_IR_OPS = (BATCHABLE_IR_OPS | BRANCH_IR_OPS
                    | frozenset({IROp.CALL, IROp.RET, IROp.INTRIN}))

_INT_CMP_PY = {IROp.SEQ: "==", IROp.SNE: "!=", IROp.SLT: "<",
               IROp.SLE: "<=", IROp.SGT: ">", IROp.SGE: ">="}

_COND_BR_PY = {IROp.BEQ: "regs[%(a)d] == regs[%(b)d]",
               IROp.BNE: "regs[%(a)d] != regs[%(b)d]",
               IROp.BLT: "regs[%(a)d] < regs[%(b)d]",
               IROp.BGE: "regs[%(a)d] >= regs[%(b)d]",
               IROp.BGT: "regs[%(a)d] > regs[%(b)d]",
               IROp.BLE: "regs[%(a)d] <= regs[%(b)d]",
               IROp.BEQZ: "regs[%(a)d] == 0",
               IROp.BNEZ: "regs[%(a)d] != 0"}


# ---------------------------------------------------------------------------
# public entry point
# ---------------------------------------------------------------------------

def dispatch_table(unit):
    """Predecoded handler table for *unit*, cached on the unit.

    *unit* is anything with ``code`` (finalized IR list) and ``name``;
    an optional ``warm_entries`` attribute lists extra block-leader pcs
    (TLS thread code re-enters at ``StlDescriptor.warm_entry`` on every
    commit, so that pc must start a block of its own).
    """
    table = getattr(unit, "_dispatch", None)
    if table is None:
        table = build_table(unit.code, unit.name,
                            getattr(unit, "warm_entries", ()))
        try:
            unit._dispatch = table
        except (AttributeError, TypeError):
            pass                        # uncacheable unit: rebuild per frame
    return table


def step_table(unit):
    """Single-instruction handler table for *unit*, cached on the unit.

    Same handlers as :func:`dispatch_table` but with every pc its own
    block: the TLS event loop's smallest-clock scheduler needs
    per-instruction clock granularity (see module docstring).
    """
    table = getattr(unit, "_dispatch_step", None)
    if table is None:
        table = build_table(unit.code, unit.name, stepwise=True)
        try:
            unit._dispatch_step = table
        except (AttributeError, TypeError):
            pass
    return table


def tls_event_map(unit):
    """Per-pc event map for the event-driven TLS scheduler, cached on
    the unit: ``map[pc]`` is 0 when ``code[pc]`` is *local* (in
    :data:`TLS_LOCAL_IR_OPS` — safe to execute during run-ahead), 1
    when it is a *scheduler event* (the CPU must park and yield to the
    global event loop before executing it), and 2 for ``STL_RUN``
    specifically (an event the scheduler must never dispatch through a
    handler: it transitions the thread to the multilevel-switch state
    instead)."""
    events = getattr(unit, "_tls_events", None)
    if events is None:
        local = TLS_LOCAL_IR_OPS
        stl_run = IROp.STL_RUN
        events = [0 if instr.op in local else (2 if instr.op is stl_run
                                               else 1)
                  for instr in unit.code]
        try:
            unit._tls_events = events
        except (AttributeError, TypeError):
            pass                        # uncacheable unit: rebuild per use
    return events


def tls_cost_map(unit, call_overhead_cycles):
    """Per-pc upper bound on the cycle cost of a *single local
    dispatch* at that pc, cached on the unit.  The event scheduler uses
    it to run a CPU ahead without segment snapshots while every
    dispatch provably completes below the runner-up CPU's position
    (see ``repro.tls.runtime``).

    Bounds are conservative: a batchable pc is costed to the end of its
    maximal batchable run plus one cycle for a fused branch, even
    though the built block may stop earlier at an interior leader.
    Event pcs keep cost 0 — the scheduler checks the event map first
    and never dispatches them from the run-ahead window.  The CALL
    overhead is config-dependent; a unit only ever executes on one
    machine, so folding the caller's value into the cache is safe."""
    costs = getattr(unit, "_tls_costs", None)
    if costs is None:
        from ..vm import intrinsics
        code = unit.code
        n = len(code)
        costs = [0] * n
        run = 0
        for pc in range(n - 1, -1, -1):
            instr = code[pc]
            op = instr.op
            if op in BATCHABLE_IR_OPS:
                run += _COSTS.get(op, 1)
                costs[pc] = run + 1     # +1: possible fused branch
                continue
            run = 0
            if op in BRANCH_IR_OPS:
                costs[pc] = 1
            elif op is IROp.CALL:
                costs[pc] = call_overhead_cycles + len(instr.args or ())
            elif op is IROp.RET:
                costs[pc] = 2
            elif op is IROp.INTRIN:
                costs[pc] = intrinsics.lookup(instr.aux).cycles
        try:
            unit._tls_costs = costs
        except (AttributeError, TypeError):
            pass
    return costs


def build_table(code, unit_name, extra_leaders=(), stepwise=False):
    """Predecode *code* into a pc-indexed list of handler closures."""
    n = len(code)
    if stepwise:
        leaders = set(range(n))
    else:
        leaders = {0}
        for pc, instr in enumerate(code):
            op = instr.op
            if op in BRANCH_IR_OPS:
                if isinstance(instr.target, int):
                    leaders.add(instr.target)
                leaders.add(pc + 1)
            elif op not in BATCHABLE_IR_OPS:
                leaders.add(pc + 1)
        for pc in extra_leaders:
            if pc is not None:
                leaders.add(pc)
        leaders = {pc for pc in leaders if 0 <= pc < n}

    consts = []
    sources = []
    block_names = {}
    for pc in sorted(leaders):
        op = code[pc].op
        if op in BATCHABLE_IR_OPS or op in BRANCH_IR_OPS:
            name, lines = _gen_block(code, pc, leaders, consts)
            block_names[pc] = name
            sources.append("\n".join(lines))

    ns = {
        "i32": i32, "u32": u32, "idiv": idiv, "irem": irem, "f2i": f2i,
        "fmod": math.fmod,
        "ArithmeticException": ArithmeticException,
        "ArrayIndexException": ArrayIndexException,
        "NullPointerException": NullPointerException,
        "_NAN": float("nan"), "_INF": float("inf"),
        "_NINF": float("-inf"),
        "UNIT_NAME": unit_name,
    }
    for index, value in enumerate(consts):
        ns["K%d" % index] = value
    if sources:
        exec(compile("\n\n".join(sources),
                     "<ir-engine:%s>" % unit_name, "exec"), ns)

    table = [None] * n
    for pc, instr in enumerate(code):
        name = block_names.get(pc)
        if name is not None:
            table[pc] = ns[name]
            continue
        op = instr.op
        if op == IROp.LW:
            table[pc] = _make_lw(instr, pc, unit_name)
        elif op == IROp.LWNV:
            table[pc] = _make_lwnv(instr, pc, unit_name)
        elif op == IROp.SW:
            table[pc] = _make_sw(instr, pc, unit_name)
        elif op == IROp.CALL:
            table[pc] = _make_call(instr, pc)
        elif op == IROp.RET:
            table[pc] = _make_ret(instr, pc)
        elif op == IROp.INTRIN:
            table[pc] = _make_intrin(instr, pc)
        elif op in _ANNOTATION_OPS:
            table[pc] = _make_annotation(instr, pc)
        else:
            # Rare runtime-service / TLS ops, plus the (normally
            # unreachable) interiors of batched blocks: delegate to the
            # legacy if/elif dispatcher, the source of truth.
            table[pc] = _legacy
    return table


def _legacy(ctx, frame):
    return ctx.step_legacy()


# ---------------------------------------------------------------------------
# block (superinstruction) code generation
# ---------------------------------------------------------------------------

def _block_span(code, start, leaders):
    """Consecutive batchable pcs from *start*, plus an absorbed branch
    pc (or None).  A leader interior to the scan ends the block before
    it — some other block jumps there, so it needs its own entry."""
    pcs = []
    i = start
    n = len(code)
    while i < n:
        if i > start and i in leaders:
            return pcs, None
        op = code[i].op
        if op in BRANCH_IR_OPS:
            return pcs, i
        if op not in BATCHABLE_IR_OPS:
            return pcs, None
        pcs.append(i)
        i += 1
    return pcs, None


def _const(value, consts):
    """Inline ints; pool floats (repr can't express nan/inf exactly)."""
    if type(value) is int:
        return repr(value)
    consts.append(value)
    return "K%d" % (len(consts) - 1)


def _wrap(expr):
    """Inline Java 32-bit signed wrap of *expr* — the call-free form of
    :func:`~repro.bytecode.instructions.i32`: for any int ``x``,
    ``(x + 2**31) % 2**32 - 2**31`` equals ``i32(x)``.  Saves one
    Python call per ALU op inside generated blocks (the hottest
    generated code in both the sequential and event-driven TLS paths).
    ``&`` binds looser than ``+``, so no inner parens are needed."""
    return "(%s + 0x80000000 & 0xFFFFFFFF) - 0x80000000" % expr


def _gen_block(code, start, leaders, consts):
    """Generate one block function's source.  Returns (name, lines)."""
    pcs, branch_pc = _block_span(code, start, leaders)
    name = "_b%d" % start
    lines = ["def %s(ctx, frame):" % name,
             "    regs = frame.regs"]
    temp = [0]

    def fresh():
        temp[0] += 1
        return "_t%d" % temp[0]

    cost_done = 0                       # cycles of fully-executed instrs
    for pc in pcs:
        instr = code[pc]
        op = instr.op
        d, a, b = instr.dst, instr.a, instr.b
        if op == IROp.LI:
            lines.append("    regs[%d] = %s" % (d, _const(instr.imm,
                                                          consts)))
        elif op == IROp.MOV:
            lines.append("    regs[%d] = regs[%d]" % (d, a))
        elif op == IROp.ADD:
            lines.append("    regs[%d] = %s"
                         % (d, _wrap("regs[%d] + regs[%d]" % (a, b))))
        elif op == IROp.ADDI:
            # The +0x80000000 bias of the wrap folds into the constant.
            lines.append("    regs[%d] = (regs[%d] + %d & 0xFFFFFFFF)"
                         " - 0x80000000"
                         % (d, a, instr.imm + 0x80000000))
        elif op == IROp.SUB:
            lines.append("    regs[%d] = %s"
                         % (d, _wrap("regs[%d] - regs[%d]" % (a, b))))
        elif op == IROp.MUL:
            lines.append("    regs[%d] = %s"
                         % (d, _wrap("regs[%d] * regs[%d]" % (a, b))))
        elif op in (IROp.DIV, IROp.REM):
            t = fresh()
            fn, msg = (("idiv", "/ by zero") if op == IROp.DIV
                       else ("irem", "% by zero"))
            lines.append("    %s = regs[%d]" % (t, b))
            lines.append("    if %s == 0:" % t)
            lines.extend(_raise_flush(start, pc, cost_done))
            lines.append("        raise ArithmeticException(%r)" % msg)
            lines.append("    regs[%d] = %s(regs[%d], %s)"
                         % (d, fn, a, t))
        elif op == IROp.NEG:
            lines.append("    regs[%d] = %s"
                         % (d, _wrap("-regs[%d]" % a)))
        elif op == IROp.AND:
            # &, | and ^ of two in-range i32 values are closed under
            # two's-complement sign extension — no wrap needed.
            lines.append("    regs[%d] = regs[%d] & regs[%d]"
                         % (d, a, b))
        elif op == IROp.OR:
            lines.append("    regs[%d] = regs[%d] | regs[%d]"
                         % (d, a, b))
        elif op == IROp.XOR:
            lines.append("    regs[%d] = regs[%d] ^ regs[%d]"
                         % (d, a, b))
        elif op == IROp.SHL:
            lines.append("    regs[%d] = %s"
                         % (d, _wrap("(regs[%d] << (regs[%d] & 31))"
                                     % (a, b))))
        elif op == IROp.SHR:
            # Arithmetic right shift of an in-range value stays in
            # range — no wrap needed.
            lines.append("    regs[%d] = regs[%d] >> (regs[%d] & 31)"
                         % (d, a, b))
        elif op == IROp.USHR:
            lines.append(
                "    regs[%d] = %s"
                % (d, _wrap("((regs[%d] & 0xFFFFFFFF) >> (regs[%d] & 31))"
                            % (a, b))))
        elif op == IROp.SLLI:
            lines.append("    regs[%d] = %s"
                         % (d, _wrap("(regs[%d] << %d)"
                                     % (a, instr.imm & 31))))
        elif op == IROp.FADD:
            lines.append("    regs[%d] = regs[%d] + regs[%d]" % (d, a, b))
        elif op == IROp.FSUB:
            lines.append("    regs[%d] = regs[%d] - regs[%d]" % (d, a, b))
        elif op == IROp.FMUL:
            lines.append("    regs[%d] = regs[%d] * regs[%d]" % (d, a, b))
        elif op == IROp.FDIV:
            td, tn = fresh(), fresh()
            lines.append("    %s = regs[%d]" % (td, b))
            lines.append("    %s = regs[%d]" % (tn, a))
            lines.append("    if %s == 0.0:" % td)
            lines.append("        regs[%d] = (_NAN if %s == 0.0 else"
                         " (_INF if %s > 0.0 else _NINF))" % (d, tn, tn))
            lines.append("    else:")
            lines.append("        regs[%d] = %s / %s" % (d, tn, td))
        elif op == IROp.FNEG:
            lines.append("    regs[%d] = -regs[%d]" % (d, a))
        elif op == IROp.FREM:
            t = fresh()
            lines.append("    %s = regs[%d]" % (t, b))
            lines.append("    regs[%d] = (fmod(regs[%d], %s)"
                         " if %s != 0.0 else _NAN)" % (d, a, t, t))
        elif op in _INT_CMP_PY:
            lines.append("    regs[%d] = int(regs[%d] %s regs[%d])"
                         % (d, a, _INT_CMP_PY[op], b))
        elif op == IROp.FCMP:
            ta, tb = fresh(), fresh()
            lines.append("    %s = regs[%d]" % (ta, a))
            lines.append("    %s = regs[%d]" % (tb, b))
            lines.append("    if %s != %s or %s != %s:"
                         % (ta, ta, tb, tb))
            lines.append("        regs[%d] = -1" % d)
            lines.append("    else:")
            lines.append("        regs[%d] = (%s > %s) - (%s < %s)"
                         % (d, ta, tb, ta, tb))
        elif op == IROp.I2F:
            lines.append("    regs[%d] = float(regs[%d])" % (d, a))
        elif op == IROp.F2I:
            lines.append("    regs[%d] = f2i(regs[%d])" % (d, a))
        elif op == IROp.NULLCHK:
            lines.append("    if regs[%d] == 0:" % a)
            lines.extend(_raise_flush(start, pc, cost_done))
            lines.append("        raise NullPointerException(UNIT_NAME)")
        elif op == IROp.BOUNDCHK:
            ti, tn = fresh(), fresh()
            lines.append("    %s = regs[%d]" % (ti, a))
            lines.append("    %s = regs[%d]" % (tn, b))
            lines.append("    if %s < 0 or %s >= %s:" % (ti, ti, tn))
            lines.extend(_raise_flush(start, pc, cost_done))
            lines.append("        raise ArrayIndexException("
                         "'index %%d, length %%d' %% (%s, %s))" % (ti, tn))
        else:                            # pragma: no cover - guarded above
            raise AssertionError("non-batchable op in block: %s" % op)
        cost_done += _COSTS.get(op, 1)

    if branch_pc is None:
        count = len(pcs)
        end_pc = start + count
        lines.append("    frame.pc = %d" % end_pc)
        lines.append("    ctx.instret += %d" % count)
        lines.append("    ctx.time += %d" % cost_done)
        lines.append("    ctx.compute_cycles += %d" % cost_done)
        lines.append("    return None")
        return name, lines

    # Absorb the terminating branch (cost 1, like every branch).
    branch = code[branch_pc]
    count = branch_pc - start + 1
    total = cost_done + 1
    lines.append("    ctx.instret += %d" % count)
    lines.append("    ctx.time += %d" % total)
    lines.append("    ctx.compute_cycles += %d" % total)
    if branch.op == IROp.J:
        lines.append("    frame.pc = %d" % branch.target)
    else:
        cond = _branch_condition(code, branch_pc, pcs)
        lines.append("    if %s:" % cond)
        lines.append("        frame.pc = %d" % branch.target)
        lines.append("    else:")
        lines.append("        frame.pc = %d" % (branch_pc + 1))
    lines.append("    return None")
    return name, lines


def _raise_flush(start, pc, cost_done):
    """Flush lines (8-space indent) before a raise at *pc*: the legacy
    dispatcher increments pc/instret before executing, so the raising
    instruction is counted, while its cycle cost is not yet added."""
    out = ["        frame.pc = %d" % (pc + 1),
           "        ctx.instret += %d" % (pc - start + 1)]
    if cost_done:
        out.append("        ctx.time += %d" % cost_done)
        out.append("        ctx.compute_cycles += %d" % cost_done)
    return out


def _branch_condition(code, branch_pc, pcs):
    """Python condition for a conditional branch; fuses an adjacent
    integer-compare + BEQZ/BNEZ pair into one comparison when the
    compare's operands are untouched by its own destination write."""
    branch = code[branch_pc]
    op = branch.op
    if op in (IROp.BEQZ, IROp.BNEZ) and pcs and pcs[-1] == branch_pc - 1:
        cmp_instr = code[branch_pc - 1]
        if (cmp_instr.op in _INT_CMP_PY
                and cmp_instr.dst == branch.a
                and cmp_instr.dst != cmp_instr.a
                and cmp_instr.dst != cmp_instr.b):
            expr = "regs[%d] %s regs[%d]" % (
                cmp_instr.a, _INT_CMP_PY[cmp_instr.op], cmp_instr.b)
            if op == IROp.BNEZ:
                return expr
            return "not (%s)" % expr
    return _COND_BR_PY[op] % {"a": branch.a, "b": branch.b}


# ---------------------------------------------------------------------------
# specialised singleton handlers
# ---------------------------------------------------------------------------

def _make_lw(instr, pc, unit_name):
    dst, a, imm = instr.dst, instr.a, instr.imm
    site = (unit_name, instr)
    next_pc = pc + 1
    if a is None:
        def lw_abs(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            ctx.current_site = site
            value, latency = ctx.mem.load(imm)
            frame.regs[dst] = value
            ctx.time += latency
            ctx.compute_cycles += latency
            return None
        return lw_abs

    def lw(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        ctx.current_site = site
        regs = frame.regs
        value, latency = ctx.mem.load(regs[a] + imm)
        regs[dst] = value
        ctx.time += latency
        ctx.compute_cycles += latency
        return None
    return lw


def _make_lwnv(instr, pc, unit_name):
    dst, a, imm = instr.dst, instr.a, instr.imm
    site = (unit_name, instr)
    next_pc = pc + 1
    if a is None:
        def lwnv_abs(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            ctx.current_site = site
            value, latency = ctx.mem.lwnv(imm)
            frame.regs[dst] = value
            ctx.time += latency
            ctx.compute_cycles += latency
            return None
        return lwnv_abs

    def lwnv(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        ctx.current_site = site
        regs = frame.regs
        value, latency = ctx.mem.lwnv(regs[a] + imm)
        regs[dst] = value
        ctx.time += latency
        ctx.compute_cycles += latency
        return None
    return lwnv


def _make_sw(instr, pc, unit_name):
    src, b, imm = instr.a, instr.b, instr.imm
    site = (unit_name, instr)
    next_pc = pc + 1
    if b is None:
        def sw_abs(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            ctx.current_site = site
            cost = ctx.mem.store(imm, frame.regs[src])
            ctx.time += cost
            ctx.compute_cycles += cost
            return None
        return sw_abs

    def sw(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        ctx.current_site = site
        regs = frame.regs
        cost = ctx.mem.store(regs[b] + imm, regs[src])
        ctx.time += cost
        ctx.compute_cycles += cost
        return None
    return sw


def _make_call(instr, pc):
    from ..hydra.machine import Frame
    aux = instr.aux
    arg_regs = tuple(instr.args or ())
    dst = instr.dst
    nargs = len(arg_regs)
    next_pc = pc + 1

    def call(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        regs = frame.regs
        machine = ctx.machine
        compiled = machine.compiled.resolve(*aux)
        args = [regs[reg] for reg in arg_regs]
        ctx.frames.append(Frame(compiled, args, dst))
        cost = machine.config.call_overhead_cycles + nargs
        ctx.time += cost
        ctx.compute_cycles += cost
        return None
    return call


def _make_ret(instr, pc):
    a = instr.a
    next_pc = pc + 1

    def ret(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        value = frame.regs[a] if a is not None else None
        frames = ctx.frames
        popped = frames.pop()
        if not frames:
            ctx.status = "done"
            ctx.return_value = value
            ctx.time += 1
            ctx.compute_cycles += 1
            return "done"                      # SIG_DONE
        if popped.ret_reg is not None and value is not None:
            frames[-1].regs[popped.ret_reg] = value
        ctx.time += 2
        ctx.compute_cycles += 2
        return None
    return ret


def _make_intrin(instr, pc):
    from ..vm import intrinsics
    intrinsic = intrinsics.lookup(instr.aux)
    fn = intrinsic.fn
    is_output = intrinsic.is_output
    cycles = intrinsic.cycles
    arg_regs = tuple(instr.args or ())
    dst = instr.dst
    next_pc = pc + 1

    def intrin(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        regs = frame.regs
        args = [regs[reg] for reg in arg_regs]
        if is_output:
            buffer = ctx.output_buffer
            if buffer is not None:
                buffer.append(args[0])
            else:
                ctx.machine.output.append(args[0])
        else:
            result = fn(*args)
            if dst is not None:
                regs[dst] = result
        ctx.time += cycles
        ctx.compute_cycles += cycles
        return None
    return intrin


def _make_annotation(instr, pc):
    """TEST annotation ops (Table 2): profiler hook + 1 cycle.  The
    hook sees ``ctx.time`` *before* the cycle is charged, exactly like
    the legacy arms."""
    op = instr.op
    aux = instr.aux
    imm = instr.imm
    next_pc = pc + 1

    if op == IROp.SLOOP:
        def sloop(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            profiler = ctx.machine.profiler
            if profiler is not None:
                profiler.on_sloop(aux, imm, ctx.time)
            ctx.time += 1
            ctx.compute_cycles += 1
            return None
        return sloop
    if op == IROp.EOI:
        def eoi(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            profiler = ctx.machine.profiler
            if profiler is not None:
                profiler.on_eoi(aux, ctx.time)
            ctx.time += 1
            ctx.compute_cycles += 1
            return None
        return eoi
    if op == IROp.ELOOP:
        def eloop(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            profiler = ctx.machine.profiler
            if profiler is not None:
                profiler.on_eloop(aux, ctx.time)
            ctx.time += 1
            ctx.compute_cycles += 1
            return None
        return eloop
    if op == IROp.LWL:
        def lwl(ctx, frame):
            frame.pc = next_pc
            ctx.instret += 1
            profiler = ctx.machine.profiler
            if profiler is not None:
                profiler.on_lwl(aux, imm, ctx.time, instr)
            ctx.time += 1
            ctx.compute_cycles += 1
            return None
        return lwl

    def swl(ctx, frame):
        frame.pc = next_pc
        ctx.instret += 1
        profiler = ctx.machine.profiler
        if profiler is not None:
            profiler.on_swl(aux, imm, ctx.time, instr)
        ctx.time += 1
        ctx.compute_cycles += 1
        return None
    return swl
