"""Predecoded dispatch tables for the reference bytecode interpreter.

Same design as :mod:`repro.engine.ir_engine`, adapted to a stack
machine: each :class:`~repro.bytecode.module.Method` predecodes into a
pc-indexed table of ``handler(interp, frame) -> _CONT | (value,)``
closures.  Straight-line runs of stack/ALU opcodes become one
``exec``-generated block function that simulates the operand stack
*virtually*: pops that consume a value pushed inside the same block
never touch ``frame.stack`` at all, so the codegen's hottest idioms —
``LOAD + LOAD + IADD``, ``ICONST + IADD``, compare+branch — fuse into
single Python expressions (the classic superinstruction win).  Opcodes
with heap/object/call effects stay one-per-dispatch as specialised
closures mirroring the legacy ``Interpreter._execute`` arms exactly
(including exception messages).

Observable-behaviour exactness: printed output, return values,
exception type/message and the ``instructions`` counter are identical
to the legacy loop.  The only intentional divergence is *when* the
instruction-budget VMError fires: blocks check the budget once per
block rather than once per instruction, so a run that exceeds the
budget may overrun by at most one straight-line block before raising.
"""

from ..errors import (ArithmeticException, ArrayIndexException,
                      NullPointerException, VMError)
from ..vm import intrinsics
from ..bytecode.instructions import f2i, i32, idiv, irem, u32
from ..bytecode.opcodes import BRANCH_OPS, Op

#: continue-dispatch sentinel (method returns are ``(value,)`` 1-tuples
#: so that ``return None`` from a guest method is representable).
_CONT = object()

#: Opcodes a block may contain: pure stack/local/ALU work.
BATCHABLE_BC_OPS = frozenset({
    Op.NOP, Op.POP, Op.DUP, Op.DUP_X1, Op.SWAP,
    Op.ICONST, Op.FCONST, Op.ACONST_NULL,
    Op.LOAD, Op.STORE, Op.IINC,
    Op.IADD, Op.ISUB, Op.IMUL, Op.IDIV, Op.IREM, Op.INEG,
    Op.IAND, Op.IOR, Op.IXOR, Op.ISHL, Op.ISHR, Op.IUSHR,
    Op.FADD, Op.FSUB, Op.FMUL, Op.FDIV, Op.FNEG, Op.FREM,
    Op.I2F, Op.F2I, Op.FCMP,
})

_BIN_INT = {Op.IADD: "+", Op.ISUB: "-", Op.IMUL: "*",
            Op.IAND: "&", Op.IOR: "|", Op.IXOR: "^"}
_SHIFTS = {Op.ISHL: "<<", Op.ISHR: ">>"}
_BIN_FLOAT = {Op.FADD: "+", Op.FSUB: "-", Op.FMUL: "*"}

_IF_ZERO = {Op.IFEQ: "%s == 0", Op.IFNE: "%s != 0", Op.IFLT: "%s < 0",
            Op.IFGE: "%s >= 0", Op.IFGT: "%s > 0", Op.IFLE: "%s <= 0"}
_IF_ICMP = {Op.IF_ICMPEQ: "%s == %s", Op.IF_ICMPNE: "%s != %s",
            Op.IF_ICMPLT: "%s < %s", Op.IF_ICMPGE: "%s >= %s",
            Op.IF_ICMPGT: "%s > %s", Op.IF_ICMPLE: "%s <= %s"}
_IF_REF = {Op.IF_ACMPEQ: ("%s is %s", 2), Op.IF_ACMPNE: ("%s is not %s", 2),
           Op.IFNULL: ("%s is None", 1), Op.IFNONNULL: ("%s is not None", 1)}


def execute_bytecode(interp, frame):
    """Drive *frame* to completion on the predecoded table; returns the
    method's return value (fast-path replacement for
    ``Interpreter._execute``)."""
    method = frame.method
    table = getattr(method, "_fast_table", None)
    if table is None:
        table = bytecode_table(method)
    while True:
        result = table[frame.pc](interp, frame)
        if result is not _CONT:
            return result[0]


def bytecode_table(method):
    """Predecode *method* into a handler table, cached on the method."""
    table = build_bc_table(method.code, method.qualified_name)
    try:
        method._fast_table = table
    except (AttributeError, TypeError):
        pass
    return table


def build_bc_table(code, method_name):
    n = len(code)
    leaders = {0}
    for pc, instr in enumerate(code):
        op = instr.op
        if op in BRANCH_OPS:
            if isinstance(instr.arg, int):
                leaders.add(instr.arg)
            leaders.add(pc + 1)
        elif op not in BATCHABLE_BC_OPS:
            leaders.add(pc + 1)
    leaders = {pc for pc in leaders if 0 <= pc < n}

    consts = []
    sources = []
    block_names = {}
    for pc in sorted(leaders):
        op = code[pc].op
        if op in BATCHABLE_BC_OPS or op in BRANCH_OPS:
            name, lines = _gen_block(code, pc, leaders, consts)
            block_names[pc] = name
            sources.append("\n".join(lines))

    ns = {
        "i32": i32, "u32": u32, "idiv": idiv, "irem": irem, "f2i": f2i,
        "ArithmeticException": ArithmeticException,
        "VMError": VMError,
        "_CONT": _CONT,
        "_NAN": float("nan"),
    }
    # late imports avoid a cycle: interpreter imports this module
    from ..bytecode.interpreter import _float_div_by_zero, _java_frem
    ns["_fdz"] = _float_div_by_zero
    ns["_frem"] = _java_frem
    for index, value in enumerate(consts):
        ns["K%d" % index] = value
    if sources:
        exec(compile("\n\n".join(sources),
                     "<bc-engine:%s>" % method_name, "exec"), ns)

    table = [None] * n
    for pc, instr in enumerate(code):
        name = block_names.get(pc)
        if name is not None:
            table[pc] = ns[name]
        else:
            table[pc] = _make_singleton(instr, pc)
    return table


# ---------------------------------------------------------------------------
# block (superinstruction) code generation
# ---------------------------------------------------------------------------

def _block_span(code, start, leaders):
    pcs = []
    i = start
    n = len(code)
    while i < n:
        if i > start and i in leaders:
            return pcs, None
        op = code[i].op
        if op in BRANCH_OPS:
            return pcs, i
        if op not in BATCHABLE_BC_OPS:
            return pcs, None
        pcs.append(i)
        i += 1
    return pcs, None


def _gen_block(code, start, leaders, consts):
    pcs, branch_pc = _block_span(code, start, leaders)
    name = "_b%d" % start
    lines = ["def %s(interp, frame):" % name,
             "    stack = frame.stack",
             "    local_vars = frame.locals"]
    temp = [0]
    vstack = []                 # virtual stack: temp names / literals

    def fresh():
        temp[0] += 1
        return "_t%d" % temp[0]

    def const(value):
        if type(value) is int:
            return repr(value)
        if value is None:
            return "None"
        consts.append(value)
        return "K%d" % (len(consts) - 1)

    def vpop():
        if vstack:
            return vstack.pop()
        t = fresh()
        lines.append("    %s = stack.pop()" % t)
        return t

    def vpush(expr):
        vstack.append(expr)

    def assign(expr):
        t = fresh()
        lines.append("    %s = %s" % (t, expr))
        vpush(t)

    def vflush():
        if not vstack:
            return
        if len(vstack) == 1:
            lines.append("    stack.append(%s)" % vstack[0])
        else:
            lines.append("    stack.extend((%s))" % ", ".join(vstack))
        del vstack[:]

    def count_lines(count):
        return ["    frame.pc = %d" % end_pc_holder[0],
                "    interp.instructions += %d" % count,
                "    if interp.instructions > interp.max_instructions:",
                "        raise VMError('instruction budget exceeded')"]

    end_pc_holder = [None]

    for pc in pcs:
        instr = code[pc]
        op = instr.op
        arg = instr.arg
        if op == Op.NOP:
            pass
        elif op == Op.POP:
            if vstack:
                vstack.pop()
            else:
                lines.append("    stack.pop()")
        elif op == Op.DUP:
            a = vpop()
            vpush(a)
            vpush(a)
        elif op == Op.DUP_X1:
            a = vpop()
            b = vpop()
            vpush(a)
            vpush(b)
            vpush(a)
        elif op == Op.SWAP:
            a = vpop()
            b = vpop()
            vpush(a)
            vpush(b)
        elif op in (Op.ICONST, Op.FCONST):
            vpush(const(arg))
        elif op == Op.ACONST_NULL:
            vpush("None")
        elif op == Op.LOAD:
            assign("local_vars[%d]" % arg)
        elif op == Op.STORE:
            a = vpop()
            lines.append("    local_vars[%d] = %s" % (arg, a))
        elif op == Op.IINC:
            index, delta = arg
            lines.append("    local_vars[%d] = i32(local_vars[%d] + %d)"
                         % (index, index, delta))
        elif op in _BIN_INT:
            b = vpop()
            a = vpop()
            assign("i32(%s %s %s)" % (a, _BIN_INT[op], b))
        elif op in (Op.IDIV, Op.IREM):
            b = vpop()
            a = vpop()
            fn, msg = (("idiv", "/ by zero") if op == Op.IDIV
                       else ("irem", "% by zero"))
            lines.append("    if %s == 0:" % b)
            lines.append("        interp.instructions += %d"
                         % (pc - start + 1))
            lines.append("        raise ArithmeticException(%r)" % msg)
            assign("%s(%s, %s)" % (fn, a, b))
        elif op == Op.INEG:
            a = vpop()
            assign("i32(-%s)" % a)
        elif op in _SHIFTS:
            b = vpop()
            a = vpop()
            assign("i32(%s %s (%s & 31))" % (a, _SHIFTS[op], b))
        elif op == Op.IUSHR:
            b = vpop()
            a = vpop()
            assign("i32(u32(%s) >> (%s & 31))" % (a, b))
        elif op in _BIN_FLOAT:
            b = vpop()
            a = vpop()
            assign("%s %s %s" % (a, _BIN_FLOAT[op], b))
        elif op == Op.FDIV:
            b = vpop()
            a = vpop()
            assign("%s / %s if %s != 0.0 else _fdz(%s)" % (a, b, b, a))
        elif op == Op.FREM:
            b = vpop()
            a = vpop()
            assign("_frem(%s, %s) if %s != 0.0 else _NAN" % (a, b, b))
        elif op == Op.FNEG:
            a = vpop()
            assign("-%s" % a)
        elif op == Op.I2F:
            a = vpop()
            assign("float(%s)" % a)
        elif op == Op.F2I:
            a = vpop()
            assign("f2i(%s)" % a)
        elif op == Op.FCMP:
            b = vpop()
            a = vpop()
            assign("-1 if (%s != %s or %s != %s) else"
                   " (%s > %s) - (%s < %s)"
                   % (a, a, b, b, a, b, a, b))
        else:                            # pragma: no cover - guarded above
            raise AssertionError("non-batchable opcode in block: %s" % op)

    if branch_pc is None:
        count = len(pcs)
        end_pc_holder[0] = start + count
        vflush()
        lines.extend(count_lines(count))
        lines.append("    return _CONT")
        return name, lines

    branch = code[branch_pc]
    op = branch.op
    count = branch_pc - start + 1
    if op == Op.GOTO:
        vflush()
        end_pc_holder[0] = branch.arg
        lines.extend(count_lines(count))
        lines.append("    return _CONT")
        return name, lines

    if op in _IF_ZERO:
        a = vpop()
        cond = _IF_ZERO[op] % a
    elif op in _IF_ICMP:
        b = vpop()
        a = vpop()
        cond = _IF_ICMP[op] % (a, b)
    else:
        template, npop = _IF_REF[op]
        if npop == 2:
            b = vpop()
            a = vpop()
            cond = template % (a, b)
        else:
            a = vpop()
            cond = template % a
    vflush()
    lines.append("    interp.instructions += %d" % count)
    lines.append("    if interp.instructions > interp.max_instructions:")
    lines.append("        raise VMError('instruction budget exceeded')")
    lines.append("    if %s:" % cond)
    lines.append("        frame.pc = %d" % branch.arg)
    lines.append("    else:")
    lines.append("        frame.pc = %d" % (branch_pc + 1))
    lines.append("    return _CONT")
    return name, lines


# ---------------------------------------------------------------------------
# specialised singleton handlers
# ---------------------------------------------------------------------------

def _make_singleton(instr, pc):
    op = instr.op
    arg = instr.arg
    next_pc = pc + 1

    from ..bytecode.interpreter import GuestArray, GuestObject

    if op in (Op.NEWARRAY_I, Op.NEWARRAY_F, Op.NEWARRAY_A):
        kind = {Op.NEWARRAY_I: "int", Op.NEWARRAY_F: "float",
                Op.NEWARRAY_A: "ref"}[op]

        def newarray(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            stack[-1] = GuestArray(kind, stack[-1])
            return _CONT
        return newarray

    if op == Op.ARRAYLENGTH:
        def arraylength(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            array = stack.pop()
            if array is None:
                raise NullPointerException("arraylength")
            stack.append(len(array.data))
            return _CONT
        return arraylength

    if op in (Op.IALOAD, Op.FALOAD, Op.AALOAD):
        def aload(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            index = stack.pop()
            array = stack.pop()
            if array is None:
                raise NullPointerException("array load")
            data = array.data
            if index < 0 or index >= len(data):
                raise ArrayIndexException("index %d, length %d"
                                          % (index, len(data)))
            stack.append(data[index])
            return _CONT
        return aload

    if op in (Op.IASTORE, Op.FASTORE, Op.AASTORE):
        def astore(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            value = stack.pop()
            index = stack.pop()
            array = stack.pop()
            if array is None:
                raise NullPointerException("array store")
            data = array.data
            if index < 0 or index >= len(data):
                raise ArrayIndexException("index %d, length %d"
                                          % (index, len(data)))
            data[index] = value
            return _CONT
        return astore

    if op == Op.NEW:
        def new(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            frame.stack.append(GuestObject(interp.program.get_class(arg)))
            return _CONT
        return new

    if op == Op.GETFIELD:
        field_name = arg[1]
        npe_msg = "getfield %s" % (arg,)

        def getfield(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            obj = stack.pop()
            if obj is None:
                raise NullPointerException(npe_msg)
            stack.append(obj.fields[field_name])
            return _CONT
        return getfield

    if op == Op.PUTFIELD:
        field_name = arg[1]
        npe_msg = "putfield %s" % (arg,)

        def putfield(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            value = stack.pop()
            obj = stack.pop()
            if obj is None:
                raise NullPointerException(npe_msg)
            obj.fields[field_name] = value
            return _CONT
        return putfield

    if op == Op.GETSTATIC:
        def getstatic(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            key, field = interp._static_key(*arg)
            default = 0.0 if field.type.is_float() else (
                None if field.type.is_reference() else 0)
            frame.stack.append(interp.statics.get(key, default))
            return _CONT
        return getstatic

    if op == Op.PUTSTATIC:
        def putstatic(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            key, __ = interp._static_key(*arg)
            interp.statics[key] = frame.stack.pop()
            return _CONT
        return putstatic

    if op == Op.INVOKESTATIC:
        def invokestatic(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            callee = interp.program.resolve_method(*arg)
            nargs = len(callee.param_types)
            args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            result = interp.call(callee, args)
            if not callee.return_type.is_void():
                stack.append(result)
            return _CONT
        return invokestatic

    if op == Op.INVOKEVIRTUAL:
        npe_msg = "invoke %s" % (arg,)

        def invokevirtual(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            callee = interp.program.resolve_method(*arg)
            nargs = len(callee.param_types)
            args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            receiver = stack.pop()
            if receiver is None:
                raise NullPointerException(npe_msg)
            actual = receiver.cls.find_method(callee.name)
            result = interp.call(actual, [receiver] + args)
            if not callee.return_type.is_void():
                stack.append(result)
            return _CONT
        return invokevirtual

    if op == Op.RETURN:
        def ret_void(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            return (None,)
        return ret_void

    if op == Op.RETURN_VALUE:
        def ret_value(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            return (frame.stack.pop(),)
        return ret_value

    if op in (Op.MONITORENTER, Op.MONITOREXIT):
        def monitor(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            if frame.stack.pop() is None:
                raise NullPointerException("monitor")
            return _CONT
        return monitor

    if op == Op.INTRINSIC:
        name, nargs = arg
        intrinsic = intrinsics.lookup(name)
        fn = intrinsic.fn
        is_output = intrinsic.is_output
        has_result = intrinsic.has_result()

        def intrin(interp, frame):
            frame.pc = next_pc
            interp.instructions += 1
            if interp.instructions > interp.max_instructions:
                raise VMError("instruction budget exceeded")
            stack = frame.stack
            args = stack[len(stack) - nargs:]
            del stack[len(stack) - nargs:]
            if is_output:
                interp.output.append(args[0])
            else:
                result = fn(*args)
                if has_result:
                    stack.append(result)
            return _CONT
        return intrin

    def unhandled(interp, frame):
        frame.pc = next_pc
        interp.instructions += 1
        if interp.instructions > interp.max_instructions:
            raise VMError("instruction budget exceeded")
        raise VMError("unhandled opcode %s" % op)
    return unhandled
