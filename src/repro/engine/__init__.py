"""Predecoded threaded-dispatch execution engines.

Both simulators — the Hydra IR machine (:mod:`repro.hydra.machine`) and
the reference bytecode interpreter (:mod:`repro.bytecode.interpreter`)
— historically dispatched every simulated instruction through a giant
``if/elif`` chain.  This package replaces that per-step chain walk with
**predecoding**: at code-install time each code unit is compiled into a
per-instruction table of Python handler closures, straight-line runs of
non-memory, non-signal instructions are fused into single generated
"superinstruction" block functions, and the dispatch loop re-enters
only at branches, memory operations and signal points.

The engines are **cycle-exact**: instruction counts, per-instruction
cycle costs, cache hit/miss counters, TLS violation/restart behaviour
and trace/profiler events are bit-identical to the legacy dispatchers
(enforced by ``tests/test_engine_differential.py``).  The legacy path
stays available behind ``HydraConfig.fastpath = False`` /
``--no-fastpath`` for debugging and A/B benchmarking — see
``docs/performance.md``.
"""

from .bc_engine import bytecode_table, execute_bytecode
from .ir_engine import dispatch_table, step_table

__all__ = ["dispatch_table", "step_table", "bytecode_table",
           "execute_bytecode"]
