"""The paper's 26-benchmark suite as MiniJava programs."""

from .registry import (CATEGORY_SPEEDUP_BANDS, FLOATING, INTEGER,
                       MULTIMEDIA, SIZES, Workload, all_workloads,
                       by_category, lookup, names)

__all__ = ["Workload", "all_workloads", "by_category", "lookup", "names",
           "INTEGER", "FLOATING", "MULTIMEDIA", "SIZES",
           "CATEGORY_SPEEDUP_BANDS"]
