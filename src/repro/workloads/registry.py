"""Benchmark registry: the 26 programs of paper Table 3.

Each workload is an algorithmically-faithful MiniJava port of the paper
benchmark, scaled so behavioral simulation completes quickly.  The
``paper`` dict carries the reference observations from Table 3 /
Figure 8 that EXPERIMENTS.md compares against (speedup bands, which
optimizations mattered, qualitative notes).
"""

from dataclasses import dataclass, field

INTEGER = "integer"
FLOATING = "floating point"
MULTIMEDIA = "multimedia"

#: Paper headline speedup bands per category (§1, §6, §8).
CATEGORY_SPEEDUP_BANDS = {
    INTEGER: (1.5, 2.5),
    FLOATING: (3.0, 4.0),
    MULTIMEDIA: (2.0, 3.0),
}

#: Scale factors: workloads accept a size knob for data-set sensitivity
#: experiments (Table 3 column b).
SIZES = ("small", "default", "large")


@dataclass
class Workload:
    name: str
    category: str
    description: str
    source_fn: object                 # size -> MiniJava source text
    analyzable: bool = False          # Table 3 (a): static-compiler friendly
    data_set_sensitive: bool = False  # Table 3 (b)
    paper: dict = field(default_factory=dict)
    manual_variant_fn: object = None  # Table 4 manual transformation
    manual_notes: dict = field(default_factory=dict)

    def source(self, size="default"):
        if size not in SIZES:
            raise ValueError("unknown size %r" % size)
        return self.source_fn(size)

    def manual_source(self, size="default"):
        if self.manual_variant_fn is None:
            return None
        return self.manual_variant_fn(size)

    @property
    def has_manual_variant(self):
        return self.manual_variant_fn is not None

    def __repr__(self):
        return "<Workload %s (%s)>" % (self.name, self.category)


_REGISTRY = {}


def register(workload):
    if workload.name in _REGISTRY:
        raise ValueError("duplicate workload %s" % workload.name)
    _REGISTRY[workload.name] = workload
    return workload


def get(name):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError("unknown workload %r (have: %s)"
                       % (name, ", ".join(sorted(_REGISTRY))))


def all_workloads():
    # Import side-effect modules on first use.
    _ensure_loaded()
    return [
        _REGISTRY[name]
        for name in sorted(_REGISTRY,
                           key=lambda n: (_CATEGORY_ORDER[_REGISTRY[n]
                                          .category], n))
    ]


def by_category(category):
    _ensure_loaded()
    return [w for w in all_workloads() if w.category == category]


def names():
    _ensure_loaded()
    return [w.name for w in all_workloads()]


_CATEGORY_ORDER = {INTEGER: 0, FLOATING: 1, MULTIMEDIA: 2}
_loaded = False


def _ensure_loaded():
    global _loaded
    if _loaded:
        return
    from . import floating, integer, multimedia    # noqa: F401
    _loaded = True


def lookup(name):
    _ensure_loaded()
    return get(name)
